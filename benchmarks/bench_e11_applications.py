"""E11 — Composed applications (§12's "compile the primitives" claim).

The paper argues its primitives compose into higher-level systems
without re-introducing knowledge of n or f.  Two compositions are built
in this repo and measured here:

* interactive consistency = reliable reporting + parallel consensus;
* a replicated key-value store = total ordering + a state machine.

Plus the §11 dynamic approximate-agreement claim: the estimate range
halves per round, and joiner inputs can widen it before being absorbed.
"""

import statistics

from repro.adversary import AdaptiveStrategy, SilentStrategy
from repro.core.approx_agreement import ContinuousApproximateAgreement
from repro.core.interactive_consistency import InteractiveConsistency
from repro.core.replicated_store import ReplicatedKVStore
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SEEDS = range(8)


def ic_run(n: int, seed: int):
    f = (n - 1) // 3
    scenario = Scenario(
        correct=n - f,
        byzantine=f,
        protocol_factory=lambda nid, i: InteractiveConsistency(i),
        strategy_factory=(lambda nid, i: AdaptiveStrategy()) if f else None,
        seed=seed,
        rushing=True,
        max_rounds=300,
    )
    return run_scenario(scenario)


def test_e11_interactive_consistency(benchmark):
    rows = []
    for n in (4, 7, 13):
        agreed = 0
        complete = 0
        rounds = []
        for seed in SEEDS:
            result = ic_run(n, seed)
            agreed += result.agreed
            vector = result.protocols[result.correct_ids[0]].vector
            complete += set(result.correct_ids) <= set(vector or {})
            rounds.append(result.rounds)
        rows.append(
            {
                "n": n,
                "f": (n - 1) // 3,
                "agreement%": round(100 * agreed / len(SEEDS), 1),
                "all correct values present%": round(
                    100 * complete / len(SEEDS), 1
                ),
                "rounds(max)": max(rounds),
            }
        )
    emit_table(
        "e11_interactive_consistency",
        rows,
        title="E11a: interactive consistency via parallel consensus"
        " (expect 100/100)",
    )
    assert all(row["agreement%"] == 100.0 for row in rows)
    assert all(
        row["all correct values present%"] == 100.0 for row in rows
    )
    benchmark.pedantic(lambda: ic_run(7, 0), rounds=3, iterations=1)


def kv_run(seed: int, writes: int):
    rng = make_rng(seed)
    ids = sparse_ids(7, rng)
    net = SyncNetwork(seed=seed)
    stores = {}
    for node_id in ids[:5]:
        store = ReplicatedKVStore()
        stores[node_id] = store
        net.add_correct(node_id, store)
    for node_id in ids[5:]:
        net.add_byzantine(node_id, SilentStrategy())
    writers = list(stores.values())
    for step in range(writes):
        writers[step % len(writers)].submit_set(f"key{step}", step)
    net.run(40 + 2 * writes, until_all_halted=False)
    states = [store.state for store in stores.values()]
    identical = all(state == states[0] for state in states)
    return identical, len(states[0]), net.metrics.sends_total


def test_e11_replicated_store(benchmark):
    rows = []
    for writes in (3, 10, 25):
        ok = 0
        applied = []
        for seed in SEEDS:
            identical, keys, _sends = kv_run(seed, writes)
            ok += identical and keys == writes
            applied.append(keys)
        rows.append(
            {
                "writes": writes,
                "replicated+identical%": round(100 * ok / len(SEEDS), 1),
                "keys applied(min)": min(applied),
            }
        )
    emit_table(
        "e11_replicated_store",
        rows,
        title="E11b: replicated KV store on total ordering (expect"
        " 100%)",
    )
    assert all(row["replicated+identical%"] == 100.0 for row in rows)
    benchmark.pedantic(lambda: kv_run(0, 5), rounds=2, iterations=1)


def churn_approx_run(seed: int):
    rng = make_rng(seed)
    ids = sparse_ids(8, rng)
    veterans, joiner = ids[:7], ids[7]
    schedule = MembershipSchedule()
    schedule.join(
        6, joiner, lambda: ContinuousApproximateAgreement(100.0)
    )
    net = SyncNetwork(seed=seed, membership=schedule)
    for index, node_id in enumerate(veterans):
        net.add_correct(
            node_id, ContinuousApproximateAgreement(float(index))
        )
    ranges = []
    for _ in range(16):
        net.step()
        estimates = [
            p.estimate for p in net.protocols().values() if p.history
        ]
        if estimates:
            ranges.append(round(max(estimates) - min(estimates), 4))
    return ranges


def test_e11_dynamic_approx(benchmark):
    all_ranges = [churn_approx_run(seed) for seed in SEEDS]
    # ranges per round, averaged over seeds (same length by construction)
    length = min(len(r) for r in all_ranges)
    rows = [
        {
            "round": step + 1,
            "range(mean)": round(
                statistics.fmean(r[step] for r in all_ranges), 4
            ),
            "range(max)": max(r[step] for r in all_ranges),
        }
        for step in range(length)
    ]
    emit_table(
        "e11_dynamic_approx",
        rows,
        title="E11c: dynamic approximate agreement — a 100.0 joiner at"
        " round 6 widens the range, trimming re-absorbs it",
    )
    # the widening is visible ...
    assert max(row["range(max)"] for row in rows[5:8]) > 50
    # ... and converges by the end
    assert rows[-1]["range(max)"] < 1.0
    benchmark.pedantic(lambda: churn_approx_run(0), rounds=3, iterations=1)
