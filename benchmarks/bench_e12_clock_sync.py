"""E12 — Clock synchronization on approximate agreement.

The paper's related work cites approximate agreement as the primitive
behind Byzantine clock synchronization; §12 argues the primitives
compose without knowing n or f.  This bench runs drifting clocks with
and without the Algorithm-4 resync — under Byzantine clock injection —
and reports the skew trajectory.

Expected shape: unsynchronized skew grows linearly with time;
synchronized skew plateaus at O(max-drift · resync-interval) regardless
of the adversary.
"""

import statistics

from repro.adversary import ValueInjectorStrategy
from repro.analysis.report import sparkline
from repro.core.clock_sync import ClockSyncNode, max_skew
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids

from benchmarks._harness import emit_figure, emit_table

DRIFTS = [0.02, -0.02, 0.01, -0.01, 0.015, -0.015, 0.0]
HORIZON = 80
SEEDS = range(5)


def one_run(resync_every: int, byzantine: int, seed: int):
    rng = make_rng(seed)
    ids = sparse_ids(len(DRIFTS) + byzantine, rng)
    net = SyncNetwork(seed=seed, rushing=True)
    nodes = []
    for index, node_id in enumerate(ids[: len(DRIFTS)]):
        node = ClockSyncNode(
            drift=DRIFTS[index], resync_every=resync_every
        )
        nodes.append(node)
        net.add_correct(node_id, node)
    for node_id in ids[len(DRIFTS):]:
        net.add_byzantine(node_id, ValueInjectorStrategy(-1e6, 1e6))
    net.run(HORIZON, until_all_halted=False)
    return nodes


def skew_stats(resync_every: int, byzantine: int):
    finals = []
    trajectories = []
    for seed in SEEDS:
        nodes = one_run(resync_every, byzantine, seed)
        trajectory = [
            max_skew(nodes, step) for step in range(0, HORIZON, 8)
        ]
        trajectories.append(trajectory)
        finals.append(
            max(max_skew(nodes, step) for step in range(HORIZON - 20,
                                                        HORIZON))
        )
    mean_trajectory = [
        statistics.fmean(t[i] for t in trajectories)
        for i in range(len(trajectories[0]))
    ]
    return statistics.fmean(finals), mean_trajectory


def build_rows():
    rows = []
    curves = {}
    for label, resync, byz in (
        ("no sync", 10**6, 0),
        ("resync/5", 5, 0),
        ("resync/5 + 2 byz", 5, 2),
        ("resync/15 + 2 byz", 15, 2),
    ):
        final, trajectory = skew_stats(resync, byz)
        curves[label] = trajectory
        rows.append(
            {
                "configuration": label,
                "steady skew": round(final, 3),
                "trajectory": sparkline(trajectory),
            }
        )
    return rows, curves


def test_e12_clock_sync(benchmark):
    rows, curves = build_rows()
    emit_table(
        "e12_clock_sync",
        rows,
        title="E12: clock skew over 80 rounds (drift ±2%; sync ="
        " Algorithm 4)",
    )
    emit_figure(
        "fig_e12_skew",
        {"no sync": curves["no sync"],
         "resync/5 + 2 byz": curves["resync/5 + 2 byz"]},
        title="Figure: clock skew trajectory, unsynchronized vs"
        " Algorithm-4 resync under Byzantine injection",
        x_label="rounds (x8)",
        y_label="skew",
    )
    by_label = {row["configuration"]: row["steady skew"] for row in rows}
    assert by_label["no sync"] > 2.0  # linear divergence
    assert by_label["resync/5"] < 0.6
    assert by_label["resync/5 + 2 byz"] < 0.6  # adversary changes nothing
    assert by_label["resync/15 + 2 byz"] > by_label["resync/5 + 2 byz"]
    benchmark.pedantic(lambda: one_run(5, 2, 0), rounds=3, iterations=1)
