"""E3 — Consensus terminates in O(f) rounds (Theorem 7.5).

Claim: Algorithm 3 solves consensus in O(f) rounds — rounds grow with
the failure bound, not with n — plus a one-phase fast path on unanimous
inputs.

Regenerated series: (a) rounds vs f at the tight population n = 3f + 1,
(b) rounds vs n at fixed f (expect flat), (c) the unanimous fast path.
"""

from repro.adversary import QuorumSplitterStrategy
from repro.core.consensus import EarlyConsensus
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SEEDS = range(10)


def one_run(correct: int, f: int, seed: int, unanimous: bool = False):
    scenario = Scenario(
        correct=correct,
        byzantine=f,
        protocol_factory=lambda nid, i: EarlyConsensus(
            1 if unanimous else i % 2
        ),
        strategy_factory=(
            lambda nid, i: QuorumSplitterStrategy(EarlyConsensus(0))
        )
        if f
        else None,
        seed=seed,
        rushing=True,
        max_rounds=2 + 5 * (2 * f + 6) + 100,
    )
    return run_scenario(scenario)


def build_rounds_vs_f():
    rows = []
    for f in (0, 1, 2, 3, 4, 5):
        rounds = []
        agreed = 0
        for seed in SEEDS:
            result = one_run(2 * f + 3, f, seed)
            rounds.append(result.rounds)
            agreed += result.agreed
        rows.append(
            {
                "f": f,
                "n": 3 * f + 3,
                "ok%": round(100 * agreed / len(SEEDS), 1),
                "rounds(mean)": round(sum(rounds) / len(rounds), 1),
                "rounds(max)": max(rounds),
                "phases(max)": (max(rounds) - 2) // 5,
            }
        )
    return rows


def build_rounds_vs_n():
    rows = []
    for correct in (6, 12, 24, 48):
        rounds = []
        for seed in SEEDS:
            result = one_run(correct, 1, seed)
            rounds.append(result.rounds)
        rows.append(
            {
                "n": correct + 1,
                "f": 1,
                "rounds(mean)": round(sum(rounds) / len(rounds), 1),
                "rounds(max)": max(rounds),
            }
        )
    return rows


def test_e3_rounds_vs_f(benchmark):
    rows = build_rounds_vs_f()
    emit_table(
        "e3_rounds_vs_f",
        rows,
        title="E3a: consensus rounds vs f at n=3f+3 (expect linear in f)",
    )
    assert all(row["ok%"] == 100.0 for row in rows)
    # O(f): phases bounded by f + small constant
    for row in rows:
        assert row["phases(max)"] <= row["f"] + 3
    benchmark.pedantic(lambda: one_run(7, 2, 0), rounds=5, iterations=1)


def test_e3_rounds_vs_n(benchmark):
    rows = build_rounds_vs_n()
    emit_table(
        "e3_rounds_vs_n",
        rows,
        title="E3b: consensus rounds vs n at f=1 (expect flat)",
    )
    spread = max(r["rounds(max)"] for r in rows) - min(
        r["rounds(max)"] for r in rows
    )
    assert spread <= 10
    from repro.analysis.complexity import classify_growth

    verdict = classify_growth(
        [r["n"] for r in rows], [r["rounds(mean)"] for r in rows]
    )
    assert verdict.kind == "constant", verdict
    benchmark.pedantic(lambda: one_run(24, 1, 0), rounds=3, iterations=1)


def test_e3_unanimous_fast_path(benchmark):
    rows = []
    for f in (1, 2, 3):
        rounds = {
            one_run(2 * f + 3, f, seed, unanimous=True).rounds
            for seed in SEEDS
        }
        rows.append({"f": f, "rounds": sorted(rounds)})
    emit_table(
        "e3_fast_path",
        [{"f": r["f"], "rounds(all seeds)": str(r["rounds"])} for r in rows],
        title="E3c: unanimous-input fast path (expect exactly 7 rounds:"
        " 2 init + 1 phase)",
    )
    assert all(r["rounds"] == [7] for r in rows)
    benchmark.pedantic(
        lambda: one_run(7, 2, 0, unanimous=True), rounds=5, iterations=1
    )
