"""E6 — Synchrony is necessary (§9, Lemmas 9.1 and 9.2).

Claim: with unknown n and f, consensus is impossible — even with
probabilistic termination — in asynchronous and semi-synchronous systems.

Regenerated table: over partition shapes, patience values, and delay
bounds, the adversarial schedule *always* produces disagreement and the
executions are log-for-log indistinguishable from solo systems (expect
100% / 100%).
"""

from repro.asyncsim import (
    estimate_disagreement_probability,
    run_async_partition,
    run_semisync_embedding,
)

from benchmarks._harness import emit_table


def build_async_rows():
    rows = []
    for size_a, size_b in ((2, 2), (4, 4), (3, 9), (8, 8)):
        for patience in (5.0, 50.0):
            result = run_async_partition(
                size_a=size_a, size_b=size_b, patience=patience
            )
            rows.append(
                {
                    "|A|": size_a,
                    "|B|": size_b,
                    "patience": patience,
                    "disagreement": result.disagreement,
                    "indistinguishable": result.indistinguishable,
                }
            )
    return rows


def build_semisync_rows():
    rows = []
    for delta_a, delta_b in ((1.0, 1.0), (1.0, 3.0), (0.5, 2.5)):
        result = run_semisync_embedding(delta_a=delta_a, delta_b=delta_b)
        rows.append(
            {
                "Δa": delta_a,
                "Δb": delta_b,
                "Δs": result.delta_s,
                "disagreement": result.disagreement,
                "indistinguishable": result.indistinguishable,
                "bound respected": result.bound_respected,
            }
        )
    return rows


def test_e6_async(benchmark):
    rows = build_async_rows()
    emit_table(
        "e6_async_impossibility",
        rows,
        title="E6a: Lemma 9.1 — async partition (expect disagreement +"
        " indistinguishability everywhere)",
    )
    assert all(row["disagreement"] for row in rows)
    assert all(row["indistinguishable"] for row in rows)
    benchmark.pedantic(run_async_partition, rounds=5, iterations=1)


def test_e6_probabilistic(benchmark):
    """The lemma's 'non-zero probability' phrasing: if nature partitions
    with probability q, disagreement happens with probability >= q —
    measured, the rate tracks q with no algorithmic mitigation."""
    rows = []
    for q in (0.0, 0.1, 0.3, 0.7, 1.0):
        result = estimate_disagreement_probability(
            partition_probability=q, runs=30, seed=int(q * 100)
        )
        rows.append(
            {
                "partition prob q": q,
                "measured disagreement rate": round(
                    result.disagreement_rate, 2
                ),
            }
        )
    emit_table(
        "e6_probabilistic",
        rows,
        title="E6c: disagreement probability tracks the partition"
        " probability (expect rate ≈ q)",
    )
    for row in rows:
        assert (
            abs(
                row["measured disagreement rate"]
                - row["partition prob q"]
            )
            <= 0.25
        )
    benchmark.pedantic(
        lambda: estimate_disagreement_probability(0.3, runs=10),
        rounds=3,
        iterations=1,
    )


def test_e6_semisync(benchmark):
    rows = build_semisync_rows()
    emit_table(
        "e6_semisync_impossibility",
        rows,
        title="E6b: Lemma 9.2 — semi-sync embedding (expect disagreement"
        " with the delay bound respected)",
    )
    assert all(row["disagreement"] for row in rows)
    assert all(row["indistinguishable"] for row in rows)
    assert all(row["bound respected"] for row in rows)
    benchmark.pedantic(run_semisync_embedding, rounds=5, iterations=1)
