"""E4 — Approximate agreement halves the range per round (Theorem 8.3).

Claim: outputs stay inside the correct input range and the output range
is at most half the input range per iteration, under worst-case value
injection, for n > 3f with unknown n and f.

Regenerated series: per-iteration range ratio (expect <= 0.5) and final
ranges, plus containment rate (expect 100%).
"""

from repro.adversary import ValueInjectorStrategy
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_figure, emit_table

SEEDS = range(10)
ITERATIONS = 8


def one_run(n: int, seed: int):
    f = (n - 1) // 3
    correct = n - f
    inputs = [float(i) for i in range(correct)]
    scenario = Scenario(
        correct=correct,
        byzantine=f,
        protocol_factory=lambda nid, i: IteratedApproximateAgreement(
            inputs[i], iterations=ITERATIONS
        ),
        strategy_factory=lambda nid, i: ValueInjectorStrategy(
            low=-1e6, high=1e6
        ),
        seed=seed,
        rushing=True,
        max_rounds=ITERATIONS + 4,
    )
    result = run_scenario(scenario)
    return result, inputs


def per_round_ratios(result):
    histories = [
        result.protocols[n].estimates for n in result.correct_ids
    ]
    ratios = []
    for step in range(1, ITERATIONS):
        prev = [h[step - 1] for h in histories]
        curr = [h[step] for h in histories]
        prev_range = max(prev) - min(prev)
        curr_range = max(curr) - min(curr)
        if prev_range > 1e-12:
            ratios.append(curr_range / prev_range)
    return ratios


def build_rows():
    rows = []
    for n in (4, 7, 13, 25):
        contained = 0
        worst_ratio = 0.0
        final_ranges = []
        for seed in SEEDS:
            result, inputs = one_run(n, seed)
            outputs = list(result.outputs.values())
            if min(inputs) <= min(outputs) and max(outputs) <= max(inputs):
                contained += 1
            ratios = per_round_ratios(result)
            if ratios:
                worst_ratio = max(worst_ratio, max(ratios))
            final_ranges.append(max(outputs) - min(outputs))
        input_range = (n - (n - 1) // 3) - 1
        rows.append(
            {
                "n": n,
                "f": (n - 1) // 3,
                "contained%": round(100 * contained / len(SEEDS), 1),
                "worst ratio/round": round(worst_ratio, 3),
                "final range(max)": round(max(final_ranges), 6),
                "halving budget": round(
                    input_range / 2 ** (ITERATIONS - 1), 6
                ),
            }
        )
    return rows


def test_e4_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e4_approx",
        rows,
        title="E4: approximate agreement (expect contained 100%, ratio"
        " <= 0.5)",
    )
    assert all(row["contained%"] == 100.0 for row in rows)
    assert all(row["worst ratio/round"] <= 0.5 + 1e-9 for row in rows)
    assert all(
        row["final range(max)"] <= row["halving budget"] + 1e-9
        for row in rows
    )

    # Figure: the measured convergence curve vs the theoretical halving
    # envelope, n = 13 under ±1e6 injection.
    result, inputs = one_run(13, 0)
    histories = [result.protocols[n].estimates for n in result.correct_ids]
    measured = [
        max(h[step] for h in histories) - min(h[step] for h in histories)
        for step in range(ITERATIONS)
    ]
    input_range = max(inputs) - min(inputs)
    envelope = [input_range / 2**step for step in range(ITERATIONS)]
    emit_figure(
        "fig_e4_convergence",
        {"measured range": measured, "halving envelope": envelope},
        title="Figure: approximate-agreement range per iteration vs the"
        " 1/2^k envelope (n=13, f=4, ±1e6 injection)",
        x_label="iteration",
        y_label="range",
    )
    benchmark.pedantic(lambda: one_run(13, 0), rounds=5, iterations=1)
