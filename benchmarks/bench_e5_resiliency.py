"""E5 — The resiliency frontier is exactly n > 3f.

Claim: everything works at n = 3f + 1 (the paper's optimal bound); a
suitable adversary breaks agreement or liveness once 3f >= n.

Regenerated table: success rate vs f for fixed n = 10 under the
strongest implemented attack (rushing full-split adversary), expect a
cliff between f = 3 (3f = 9 < 10) and f = 4 (3f = 12 >= 10).
"""

from repro.adversary.base import ByzantineStrategy
from repro.core.consensus import EarlyConsensus
from repro.errors import SimulationError
from repro.sim.message import BROADCAST, Send
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_figure, emit_table

N = 10
SEEDS = range(10)


class FullSplitAdversary(ByzantineStrategy):
    """Feeds each half of the correct nodes its own complete quorums."""

    def on_round(self, view):
        if view.round == 1:
            return [Send(BROADCAST, "init")]
        ordered = sorted(view.correct_nodes)
        half = len(ordered) // 2
        sends = []
        for kind in ("input", "prefer", "strongprefer"):
            sends.extend(Send(d, kind, 0) for d in ordered[:half])
            sends.extend(Send(d, kind, 1) for d in ordered[half:])
        return sends


def one_run(f: int, seed: int):
    scenario = Scenario(
        correct=N - f,
        byzantine=f,
        protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
        strategy_factory=lambda nid, i: FullSplitAdversary(),
        seed=seed,
        rushing=True,
        max_rounds=150,
        enforce_resiliency=False,
    )
    return run_scenario(scenario)


def build_rows():
    rows = []
    for f in range(0, 7):
        agreed = 0
        livelocked = 0
        for seed in SEEDS:
            try:
                result = one_run(f, seed)
            except SimulationError:
                livelocked += 1
                continue
            agreed += result.agreed
        rows.append(
            {
                "f": f,
                "n": N,
                "n>3f": "yes" if N > 3 * f else "no",
                "agreement%": round(100 * agreed / len(SEEDS), 1),
                "livelock%": round(100 * livelocked / len(SEEDS), 1),
            }
        )
    return rows


def test_e5_frontier(benchmark):
    rows = build_rows()
    emit_table(
        "e5_resiliency",
        rows,
        title="E5: resiliency frontier, n=10 (expect 100% for 3f<n, broken"
        " beyond)",
    )
    for row in rows:
        if row["n>3f"] == "yes":
            assert row["agreement%"] == 100.0, row
    beyond = [r for r in rows if r["n>3f"] == "no"]
    assert any(r["agreement%"] < 100.0 for r in beyond)
    emit_figure(
        "fig_e5_cliff",
        {"agreement %": [r["agreement%"] for r in rows]},
        title="Figure: the resiliency cliff at n = 3f (n=10; x axis is"
        " f = 0..6)",
        x_label="f",
        y_label="ok%",
        height=8,
    )
    benchmark.pedantic(lambda: one_run(3, 0), rounds=5, iterations=1)
