"""Ablation A5 — the synchrony assumption is load-bearing.

§9 proves agreement with unknown n, f is impossible without synchrony.
The complementary executable statement: take the *proven-correct*
synchronous consensus and erode its delivery guarantee with i.i.d.
message loss.  The regenerated series shows the guarantee degrading
smoothly from 100% to 0% as the loss rate grows — there is no clever
protocol trick hiding in the margins, exactly as the impossibility
results predict.
"""

from repro.core.consensus import EarlyConsensus
from repro.errors import SimulationError
from repro.sim.lossy import LossyNetwork
from repro.sim.rng import make_rng, sparse_ids

from benchmarks._harness import emit_table

SEEDS = range(10)


def one_run(drop_rate: float, seed: int):
    rng = make_rng(seed)
    ids = sparse_ids(7, rng)
    net = LossyNetwork(drop_rate, seed=seed)
    for index, node_id in enumerate(ids):
        net.add_correct(node_id, EarlyConsensus(index % 2))
    net.run(80)
    return net


def build_rows():
    rows = []
    for drop_rate in (0.0, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6):
        agreed = 0
        livelocked = 0
        disagreed = 0
        for seed in SEEDS:
            try:
                net = one_run(drop_rate, seed)
            except SimulationError:
                livelocked += 1
                continue
            outputs = net.outputs()
            if len(outputs) == 7 and len(set(outputs.values())) == 1:
                agreed += 1
            else:
                disagreed += 1
        rows.append(
            {
                "drop rate": drop_rate,
                "agreement%": round(100 * agreed / len(SEEDS), 1),
                "livelock%": round(100 * livelocked / len(SEEDS), 1),
                "disagreement%": round(100 * disagreed / len(SEEDS), 1),
            }
        )
    return rows


def test_synchrony_erosion(benchmark):
    rows = build_rows()
    emit_table(
        "ablation_synchrony_erosion",
        rows,
        title="Ablation A5: consensus vs message loss (the synchrony"
        " assumption at work)",
    )
    assert rows[0]["agreement%"] == 100.0  # lossless: the proven case
    assert rows[-1]["agreement%"] < 50.0  # heavy loss: guarantee gone
    # degradation is monotone-ish: the last rate is never better than
    # the first nonzero one
    assert rows[-1]["agreement%"] <= rows[1]["agreement%"]
    benchmark.pedantic(lambda: one_run(0.05, 0), rounds=5, iterations=1)
