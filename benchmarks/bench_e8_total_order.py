"""E8 — Total ordering under churn (Theorem 11.1).

Claim: chains satisfy chain-prefix and chain-growth while participants
join and leave, subject to n > 3f per round.

Regenerated table: per churn level (joins + one leave), prefix-check
pass rate (expect 100%), chain length achieved, and finality lag.
"""

from repro.adversary import SilentStrategy
from repro.analysis.checkers import check_chain_prefix
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids

from benchmarks._harness import emit_table

SEEDS = range(5)
ROUNDS = 95


def one_run(joins: int, leaves: int, seed: int):
    rng = make_rng(seed)
    ids = sparse_ids(7 + 2 + joins, rng)
    founders, byz, joiners = ids[:7], ids[7:9], ids[9:]

    membership = MembershipSchedule()
    for offset, joiner in enumerate(joiners):
        membership.join(
            14 + 7 * offset, joiner, lambda: TotalOrderNode(seed=False)
        )

    network = SyncNetwork(seed=seed, membership=membership)
    for index, node_id in enumerate(founders):
        node = TotalOrderNode(
            event_source=events_from_dict(
                {r: f"e{index}@{r}" for r in range(2, 60, 5)}
            )
        )
        if index < leaves:
            node.leave_at = 30 + 5 * index
        network.add_correct(node_id, node)
    for node_id in byz:
        network.add_byzantine(node_id, SilentStrategy())
    network.run(ROUNDS, until_all_halted=False)

    chains = {}
    lags = []
    for node_id, protocol in network.protocols().items():
        chains[node_id] = (
            list(protocol.output) if protocol.halted else protocol.chain
        )
        if not protocol.halted and protocol.local_round:
            lags.append(protocol.local_round - protocol.final_through)
    report = check_chain_prefix(chains)
    longest = max(chains.values(), key=len)
    return report, len(longest), (max(lags) if lags else 0)


def build_rows():
    rows = []
    for joins, leaves in ((0, 0), (2, 0), (0, 1), (3, 1)):
        ok = 0
        lengths = []
        lags = []
        for seed in SEEDS:
            report, length, lag = one_run(joins, leaves, seed)
            ok += report.ok
            lengths.append(length)
            lags.append(lag)
        rows.append(
            {
                "joins": joins,
                "leaves": leaves,
                "prefix ok%": round(100 * ok / len(SEEDS), 1),
                "chain length(max)": max(lengths),
                "finality lag(max)": max(lags),
            }
        )
    return rows


def test_e8_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e8_total_order",
        rows,
        title="E8: total ordering under churn (expect prefix 100%,"
        " growing chains, bounded lag)",
    )
    assert all(row["prefix ok%"] == 100.0 for row in rows)
    assert all(row["chain length(max)"] > 0 for row in rows)
    # finality lag bounded by the paper's 5|S|/2 + 2 budget (|S| <= 11)
    assert all(row["finality lag(max)"] <= 5 * 11 // 2 + 4 for row in rows)
    benchmark.pedantic(lambda: one_run(1, 0, 0), rounds=2, iterations=1)
