"""E8 — Total ordering under churn (Theorem 11.1).

Claim: chains satisfy chain-prefix and chain-growth while participants
join and leave, subject to n > 3f per round.

Each configuration is a declarative :class:`~repro.scenario.RunSpec`:
joiners come from the seeded ``bursts`` churn generator (one joiner per
burst), leavers from the total-order registry's ``leavers`` knob
(founder ``i`` departs at round ``30 + 5i``).

Regenerated table: per churn level (joins + one leave), prefix-check
pass rate (expect 100%), chain length achieved, and finality lag.
"""

from repro.analysis.checkers import check_chain_prefix
from repro.scenario import ChurnSpec, RunSpec

from benchmarks._harness import bench_run, emit_table

SEEDS = range(5)
ROUNDS = 95


def churn_spec(joins: int, leaves: int, seed: int) -> RunSpec:
    churn = None
    if joins:
        churn = ChurnSpec(
            "bursts",
            {"first": 14, "period": 7, "count": joins, "joins": 1,
             "leaves": 0},
        )
    return RunSpec(
        protocol="total-order",
        n=9,
        f=2,
        protocol_params={
            "event_first": 2,
            "event_last": 60,
            "event_every": 5,
            "leavers": leaves,
            "leave_base": 30,
            "leave_step": 5,
        },
        churn=churn,
        seed=seed,
        max_rounds=ROUNDS,
    )


def one_run(joins: int, leaves: int, seed: int):
    result = bench_run(churn_spec(joins, leaves, seed))

    chains = {}
    lags = []
    for node_id, protocol in result.network.protocols().items():
        chains[node_id] = (
            list(protocol.output) if protocol.halted else protocol.chain
        )
        if not protocol.halted and protocol.local_round:
            lags.append(protocol.local_round - protocol.final_through)
    report = check_chain_prefix(chains)
    longest = max(chains.values(), key=len)
    return report, len(longest), (max(lags) if lags else 0)


def build_rows():
    rows = []
    for joins, leaves in ((0, 0), (2, 0), (0, 1), (3, 1)):
        ok = 0
        lengths = []
        lags = []
        for seed in SEEDS:
            report, length, lag = one_run(joins, leaves, seed)
            ok += report.ok
            lengths.append(length)
            lags.append(lag)
        rows.append(
            {
                "joins": joins,
                "leaves": leaves,
                "prefix ok%": round(100 * ok / len(SEEDS), 1),
                "chain length(max)": max(lengths),
                "finality lag(max)": max(lags),
            }
        )
    return rows


def test_e8_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e8_total_order",
        rows,
        title="E8: total ordering under churn (expect prefix 100%,"
        " growing chains, bounded lag)",
    )
    assert all(row["prefix ok%"] == 100.0 for row in rows)
    assert all(row["chain length(max)"] > 0 for row in rows)
    # finality lag bounded by the paper's 5|S|/2 + 2 budget (|S| <= 12)
    assert all(row["finality lag(max)"] <= 5 * 12 // 2 + 4 for row in rows)
    benchmark.pedantic(lambda: one_run(1, 0, 0), rounds=2, iterations=1)
