"""E7 — Parallel consensus (Theorem 10.1).

Claim: validity (pairs input at every correct node are output by all),
agreement (identical output sets), termination in O(f) rounds — with
instances joinable mid-flight and Byzantine-initiated ids dying quietly.

Regenerated table: per (instance count, awareness pattern), agreement
rate and rounds; rounds must stay flat in the number of instances.
"""

from repro.adversary import RandomNoiseStrategy, SilentStrategy
from repro.analysis.checkers import check_parallel_outputs
from repro.core.parallel_consensus import ParallelConsensus
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SEEDS = range(8)


def one_run(instances: int, awareness: str, seed: int):
    inputs_by_node = {}

    def factory(nid, i):
        inputs = {}
        for k in range(instances):
            if awareness == "full" or (i + k) % 2 == 0:
                inputs[f"id{k}"] = k
        inputs_by_node[nid] = inputs
        return ParallelConsensus(inputs)

    scenario = Scenario(
        correct=7,
        byzantine=2,
        protocol_factory=factory,
        strategy_factory=lambda nid, i: (
            SilentStrategy() if seed % 2 else RandomNoiseStrategy(rate=3)
        ),
        seed=seed,
        rushing=True,
        max_rounds=400,
    )
    result = run_scenario(scenario)
    return result, inputs_by_node


def build_rows():
    rows = []
    for instances in (1, 4, 16):
        for awareness in ("full", "partial"):
            agreed = 0
            theorem_ok = 0
            rounds = []
            for seed in SEEDS:
                result, inputs_by_node = one_run(
                    instances, awareness, seed
                )
                agreed += result.agreed
                theorem_ok += check_parallel_outputs(
                    result, inputs_by_node
                ).ok
                rounds.append(result.rounds)
            rows.append(
                {
                    "instances": instances,
                    "awareness": awareness,
                    "agreement%": round(100 * agreed / len(SEEDS), 1),
                    "thm 10.1 ok%": round(
                        100 * theorem_ok / len(SEEDS), 1
                    ),
                    "rounds(max)": max(rounds),
                }
            )
    return rows


def test_e7_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e7_parallel",
        rows,
        title="E7: parallel consensus (expect 100%, rounds flat in"
        " instance count)",
    )
    assert all(row["agreement%"] == 100.0 for row in rows)
    assert all(row["thm 10.1 ok%"] == 100.0 for row in rows)
    spread = max(r["rounds(max)"] for r in rows) - min(
        r["rounds(max)"] for r in rows
    )
    assert spread <= 15
    benchmark.pedantic(
        lambda: one_run(4, "partial", 0), rounds=3, iterations=1
    )
