"""Scale sweep — message/byte complexity growth across the portfolio.

The paper's §12 discusses complexity only qualitatively.  This bench
measures it: per protocol, logical messages per node per round as n
grows, with a fitted growth verdict.  Expected shapes:

* approximate agreement broadcasts one value per round — per-node load
  stays constant;
* consensus and renaming carry the echo machinery (one ``echo(p)``
  message per candidate id), so per-node load grows linearly in n and
  system-wide polynomially — the classical message complexity of the
  algorithms they generalize, consistent with §12's "message complexity
  ... is unaffected".

Nothing may grow superlinearly per node: that would be a regression
against the classics.
"""

from repro.analysis.complexity import classify_growth
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.core.consensus import EarlyConsensus
from repro.core.renaming import ByzantineRenaming
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SIZES = (4, 8, 16, 32, 64)


def run_protocol(name: str, correct: int, seed: int = 0):
    factories = {
        "consensus": lambda nid, i: EarlyConsensus(i % 2),
        "approx(6 iter)": lambda nid, i: IteratedApproximateAgreement(
            float(i), iterations=6
        ),
        "renaming": lambda nid, i: ByzantineRenaming(),
    }
    scenario = Scenario(
        correct=correct,
        protocol_factory=factories[name],
        seed=seed,
        max_rounds=5 * correct + 60,
    )
    return run_scenario(scenario)


def build_rows():
    rows = []
    verdicts = {}
    for name in ("consensus", "approx(6 iter)", "renaming"):
        sends_per_node_round = []
        for correct in SIZES:
            result = run_protocol(name, correct)
            per_node_round = result.metrics.sends_total / (
                correct * result.rounds
            )
            sends_per_node_round.append(per_node_round)
            rows.append(
                {
                    "protocol": name,
                    "n": correct,
                    "rounds": result.rounds,
                    "msgs total": result.metrics.sends_total,
                    "msgs/node/round": round(per_node_round, 2),
                }
            )
        verdicts[name] = classify_growth(
            list(SIZES), sends_per_node_round, constant_tolerance=0.6
        )
    return rows, verdicts


def test_scale_sweep(benchmark):
    rows, verdicts = build_rows()
    for name, verdict in verdicts.items():
        rows.append(
            {
                "protocol": name,
                "n": "fit",
                "rounds": "",
                "msgs total": "",
                "msgs/node/round": f"{verdict.kind}",
            }
        )
    emit_table(
        "scale_sweep",
        rows,
        title="Scale: per-node per-round message load vs n (approx:"
        " constant; echo-based protocols: linear)",
    )
    # per-node per-round load must not grow superlinearly with n
    assert all(
        verdict.kind in ("constant", "linear")
        for verdict in verdicts.values()
    ), {k: v.kind for k, v in verdicts.items()}
    benchmark.pedantic(
        lambda: run_protocol("consensus", 32), rounds=2, iterations=1
    )
