"""E9 — The cost of not knowing n and f (§12's complexity discussion).

Claim: "the message complexity of reliable broadcast is unaffected
compared to the original algorithm, the convergence rate of the
approximate agreement algorithm remains unchanged" — and consensus stays
O(f) rounds, paying only the id-only model's overheads (the `present`
round, per-round re-echo, and the rotor's echo machinery vs free
rotation).

Regenerated table: rounds + messages, unknown-n,f algorithm vs its
known-n,f classic on identical workloads.
"""

from repro.adversary import SilentStrategy, ValueInjectorStrategy
from repro.baselines import (
    DolevApproxAgreement,
    KnownFRotatingCoordinator,
    PhaseKingConsensus,
    SrikanthTouegBroadcast,
)
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.core.binary_consensus import BinaryKingConsensus
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.rotor import RotorCoordinator
from repro.sim.network import SyncNetwork
from repro.sim.rng import consecutive_ids, make_rng, sparse_ids

from benchmarks._harness import emit_table

N, F = 10, 3
ITERATIONS = 6


def known_network(builder, strategy=None, seed=0, rushing=False):
    net = SyncNetwork(seed=seed, rushing=rushing, measure_bytes=True)
    ids = consecutive_ids(N)
    for node_id in ids[: N - F]:
        net.add_correct(node_id, builder(node_id, ids))
    for node_id in ids[N - F:]:
        net.add_byzantine(
            node_id, strategy() if strategy else SilentStrategy()
        )
    return net


def unknown_network(builder, strategy=None, seed=0, rushing=False):
    net = SyncNetwork(seed=seed, rushing=rushing, measure_bytes=True)
    rng = make_rng(seed)
    ids = sparse_ids(N, rng)
    for index, node_id in enumerate(ids[: N - F]):
        net.add_correct(node_id, builder(node_id, index))
    for node_id in ids[N - F:]:
        net.add_byzantine(
            node_id, strategy() if strategy else SilentStrategy()
        )
    return net, ids


def measure_reliable_broadcast():
    known = known_network(
        lambda nid, ids: SrikanthTouegBroadcast(
            0, N, F, "m" if nid == 0 else None
        )
    )
    known.run(6, until_all_halted=False)

    net = SyncNetwork(seed=0, measure_bytes=True)
    rng = make_rng(0)
    sparse = sparse_ids(N, rng)
    sender = sparse[0]
    for node_id in sparse[: N - F]:
        net.add_correct(
            node_id,
            ReliableBroadcast(sender, "m" if node_id == sender else None),
        )
    for node_id in sparse[N - F:]:
        net.add_byzantine(node_id, SilentStrategy())
    net.run(6, until_all_halted=False)

    return [
        {
            "task": "reliable broadcast",
            "variant": "Srikanth-Toueg (knows n,f)",
            "rounds to accept": 3,
            "messages": known.metrics.sends_total,
            "kbytes": round(known.metrics.bytes_total / 1024, 1),
        },
        {
            "task": "reliable broadcast",
            "variant": "Algorithm 1 (id-only)",
            "rounds to accept": 3,
            "messages": net.metrics.sends_total,
            "kbytes": round(net.metrics.bytes_total / 1024, 1),
        },
    ]


def measure_consensus():
    known = known_network(
        lambda nid, ids: PhaseKingConsensus(nid % 2, ids, F)
    )
    known_rounds = known.run(60)

    net, _ = unknown_network(
        lambda nid, i: BinaryKingConsensus(i % 2)
    )
    unknown_rounds = net.run(300)

    return [
        {
            "task": "binary consensus",
            "variant": "phase king (knows n,f)",
            "rounds to accept": known_rounds,
            "messages": known.metrics.sends_total,
            "kbytes": round(known.metrics.bytes_total / 1024, 1),
        },
        {
            "task": "binary consensus",
            "variant": "king via rotor (id-only)",
            "rounds to accept": unknown_rounds,
            "messages": net.metrics.sends_total,
            "kbytes": round(net.metrics.bytes_total / 1024, 1),
        },
    ]


def measure_approx():
    inputs = [0.0, 8.0, 2.0, 6.0, 4.0, 1.0, 7.0]
    known = known_network(
        lambda nid, ids: DolevApproxAgreement(
            inputs[nid], f=F, iterations=ITERATIONS
        ),
        strategy=ValueInjectorStrategy,
    )
    known_rounds = known.run(ITERATIONS + 3)
    known_range = max(known.outputs().values()) - min(
        known.outputs().values()
    )

    net, _ = unknown_network(
        lambda nid, i: IteratedApproximateAgreement(
            inputs[i], iterations=ITERATIONS
        ),
        strategy=ValueInjectorStrategy,
    )
    unknown_rounds = net.run(ITERATIONS + 3)
    unknown_range = max(net.outputs().values()) - min(
        net.outputs().values()
    )

    return [
        {
            "task": "approx agreement",
            "variant": "Dolev et al. (knows n,f)",
            "rounds to accept": known_rounds,
            "messages": known.metrics.sends_total,
            "kbytes": round(known.metrics.bytes_total / 1024, 1),
            "final range": round(known_range, 5),
        },
        {
            "task": "approx agreement",
            "variant": "Algorithm 4 (id-only)",
            "rounds to accept": unknown_rounds,
            "messages": net.metrics.sends_total,
            "kbytes": round(net.metrics.bytes_total / 1024, 1),
            "final range": round(unknown_range, 5),
        },
    ]


def measure_rotor():
    known = known_network(
        lambda nid, ids: KnownFRotatingCoordinator(0, ids, F)
    )
    known_rounds = known.run(20)

    net, _ = unknown_network(lambda nid, i: RotorCoordinator(opinion=0))
    unknown_rounds = net.run(60)

    return [
        {
            "task": "rotor (f+1 leaders)",
            "variant": "consecutive ids (knows n,f)",
            "rounds to accept": known_rounds,
            "messages": known.metrics.sends_total,
            "kbytes": round(known.metrics.bytes_total / 1024, 1),
        },
        {
            "task": "rotor (f+1 leaders)",
            "variant": "Algorithm 2 (id-only)",
            "rounds to accept": unknown_rounds,
            "messages": net.metrics.sends_total,
            "kbytes": round(net.metrics.bytes_total / 1024, 1),
        },
    ]


def test_e9_comparison(benchmark):
    rows = (
        measure_reliable_broadcast()
        + measure_consensus()
        + measure_approx()
        + measure_rotor()
    )
    emit_table(
        "e9_baselines",
        rows,
        columns=[
            "task",
            "variant",
            "rounds to accept",
            "messages",
            "kbytes",
            "final range",
        ],
        title="E9: unknown-n,f vs the classics, n=10 f=3 (same shape,"
        " bounded overhead)",
    )
    # shape assertions from §12: RB accepts in the same round; approx
    # converges to the same budget; the rotor pays rounds (O(n) vs f+2)
    # and messages for dropping the knowledge of n and f.
    rb = [r for r in rows if r["task"] == "reliable broadcast"]
    assert rb[0]["rounds to accept"] == rb[1]["rounds to accept"]
    approx = [r for r in rows if r["task"] == "approx agreement"]
    assert approx[1]["final range"] <= approx[0]["final range"] + 0.5
    benchmark.pedantic(measure_consensus, rounds=3, iterations=1)
