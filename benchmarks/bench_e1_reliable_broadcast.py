"""E1 — Reliable broadcast properties for n > 3f (Theorem 5.5).

Claim: Algorithm 1 satisfies correctness, unforgeability, and relay with
the optimal resiliency n > 3f, without any node knowing n or f.

Regenerated table: per (n, adversary), the fraction of seeded runs in
which all three properties held, plus round/message costs.  Expected
shape: 100% everywhere, acceptance always in round 3 for a correct
sender.
"""

from repro.adversary import (
    EchoForgerStrategy,
    MembershipLiarStrategy,
    SilentStrategy,
)
from repro.analysis.checkers import check_reliable_broadcast
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.sim.runner import Scenario, run_scenario
from repro.sim.rng import make_rng, sparse_ids

from benchmarks._harness import emit_table

ADVERSARIES = {
    "silent": SilentStrategy,
    "echo-forger": EchoForgerStrategy,
    "membership-liar": MembershipLiarStrategy,
}
SEEDS = range(10)


def one_run(n: int, adversary: str, seed: int):
    f = (n - 1) // 3
    correct = n - f
    rng = make_rng(seed)
    ids = sparse_ids(n, rng)
    shuffled = ids[:]
    rng.shuffle(shuffled)
    sender = sorted(shuffled[:correct])[0]
    scenario = Scenario(
        correct=correct,
        byzantine=f,
        protocol_factory=lambda nid, i: ReliableBroadcast(
            sender, "m" if nid == sender else None
        ),
        strategy_factory=lambda nid, i: ADVERSARIES[adversary](),
        seed=seed,
        rushing=True,
        max_rounds=8,
        until_all_halted=False,
    )
    result = run_scenario(scenario)
    report = check_reliable_broadcast(result, sender, "m", True)
    return result, report


def build_rows():
    rows = []
    for n in (4, 10, 22, 40):
        for adversary in ADVERSARIES:
            ok = 0
            sends = []
            accept_rounds = []
            for seed in SEEDS:
                result, report = one_run(n, adversary, seed)
                ok += report.ok
                sends.append(result.metrics.sends_total)
                accept_rounds.extend(
                    p.accepted.get(("m", next(iter(p.accepted))[1]), 0)
                    if p.accepted
                    else 0
                    for p in result.protocols.values()
                )
            rows.append(
                {
                    "n": n,
                    "f": (n - 1) // 3,
                    "adversary": adversary,
                    "properties ok%": round(100 * ok / len(SEEDS), 1),
                    "accept round(max)": max(accept_rounds),
                    "msgs(mean)": round(sum(sends) / len(sends)),
                }
            )
    return rows


def test_e1_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e1_reliable_broadcast",
        rows,
        title="E1: reliable broadcast properties (expect 100% ok, accept"
        " round 3)",
    )
    assert all(row["properties ok%"] == 100.0 for row in rows)
    assert all(row["accept round(max)"] == 3 for row in rows)
    benchmark.pedantic(
        lambda: one_run(10, "echo-forger", 0), rounds=5, iterations=1
    )
