"""Round-engine hot-path benchmark: the all-broadcast workload.

The simulator's hot loop is staging and delivery.  The engine stages
O(logical sends) entries per round — one shared ``Message`` per
broadcast, resolved to recipients at delivery time — where the
pre-rewrite engine staged one ``(sender, send)`` tuple per *recipient*
and re-stamped the message once per recipient (O(n²) churn per round on
the all-broadcast workload every protocol here runs).

This bench measures, at n ∈ {50, 200, 800} broadcasting nodes:

* rounds/sec and deliveries/sec (wall clock),
* staged entries per round vs deliveries per round — the allocation
  footprint of the new path vs the per-recipient path (their ratio is
  the per-round allocation reduction, ≈ n on this workload),
* tracemalloc peak, and the engine's per-phase time split
  (deliver / correct / adversary / stage) from ``Metrics``.

Results go to ``results/BENCH_engine.json`` (and a table in
``results/BENCH_engine.md``).  CI runs ``python benchmarks/bench_engine.py
--sizes 50 --check results/BENCH_engine_baseline.json`` as a non-gating
perf smoke: it fails only on a >2× rounds/sec regression against the
committed baseline.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

from repro.sim.network import SyncNetwork
from repro.sim.node import Inbox, NodeApi, Protocol

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_SIZES = (50, 200, 800)
#: Round budget per population size: enough rounds to dominate setup
#: cost, small enough that n=800 stays in CI-smoke territory.
ROUNDS_FOR = {50: 60, 200: 30, 800: 6}


class AllBroadcast(Protocol):
    """The hot-path workload: one broadcast per node per round."""

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        api.broadcast("beat", api.round % 7)


def measure_engine(n: int, rounds: int | None = None, seed: int = 1) -> dict:
    rounds = rounds or ROUNDS_FOR.get(n, 30)
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    for index in range(n):
        net.add_correct(1000 + index, AllBroadcast())
    tracemalloc.start()
    start = time.perf_counter()
    net.run(rounds, until_all_halted=False)
    elapsed = time.perf_counter() - start
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    metrics = net.metrics
    staged_per_round = metrics.staged_total / metrics.rounds
    deliveries_per_round = metrics.deliveries_total / metrics.rounds
    return {
        "n": n,
        "rounds": metrics.rounds,
        "rounds_per_sec": round(rounds / elapsed, 2),
        "deliveries_per_sec": round(metrics.deliveries_total / elapsed),
        "staged_entries_per_round": round(staged_per_round, 1),
        "deliveries_per_round": round(deliveries_per_round, 1),
        # The per-recipient engine staged one tuple per delivery; the
        # shared-queue engine stages one entry per logical send.
        "alloc_reduction_vs_per_recipient": round(
            deliveries_per_round / staged_per_round, 1
        ),
        "peak_traced_kib": round(peak / 1024),
        "engine_time_by_phase": {
            phase: round(seconds, 4)
            for phase, seconds in sorted(
                metrics.engine_time_by_phase.items()
            )
        },
    }


def build_results(sizes=DEFAULT_SIZES) -> dict:
    return {
        "workload": "all-broadcast",
        "results": [measure_engine(n) for n in sizes],
    }


def write_outputs(payload: dict, out: pathlib.Path) -> None:
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    from benchmarks._harness import emit_table

    emit_table(
        "BENCH_engine",
        [
            {
                "n": row["n"],
                "rounds/s": row["rounds_per_sec"],
                "deliveries/s": row["deliveries_per_sec"],
                "staged/round": row["staged_entries_per_round"],
                "deliv/round": row["deliveries_per_round"],
                "alloc reduction": f"{row['alloc_reduction_vs_per_recipient']}x",
                "peak KiB": row["peak_traced_kib"],
            }
            for row in payload["results"]
        ],
        title="Engine hot path: all-broadcast workload "
        "(staged/round stays at n; the per-recipient engine staged "
        "deliv/round)",
    )


def check_against_baseline(payload: dict, baseline_path: pathlib.Path) -> int:
    """Exit status 1 on a >2x rounds/sec regression at any shared n."""
    baseline = json.loads(baseline_path.read_text())
    base_by_n = {row["n"]: row for row in baseline["results"]}
    status = 0
    for row in payload["results"]:
        base = base_by_n.get(row["n"])
        if base is None:
            continue
        ratio = base["rounds_per_sec"] / row["rounds_per_sec"]
        verdict = "ok" if ratio <= 2.0 else "REGRESSION"
        print(
            f"n={row['n']}: {row['rounds_per_sec']} rounds/s vs baseline "
            f"{base['rounds_per_sec']} (x{ratio:.2f} slower) {verdict}"
        )
        if ratio > 2.0:
            status = 1
    return status


def test_engine_hot_path(benchmark):
    payload = build_results(sizes=(50, 200))
    write_outputs(payload, RESULTS_DIR / "BENCH_engine.json")
    for row in payload["results"]:
        # Staging is O(sends): on the all-broadcast workload each round
        # stages exactly n entries, not n^2.
        assert row["staged_entries_per_round"] == row["n"]
        assert row["alloc_reduction_vs_per_recipient"] >= 3
    benchmark.pedantic(
        lambda: measure_engine(50, rounds=20), rounds=3, iterations=1
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=RESULTS_DIR / "BENCH_engine.json",
    )
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        help="baseline JSON to compare rounds/sec against "
        "(fails on a >2x regression)",
    )
    args = parser.parse_args(argv)
    payload = build_results(sizes=tuple(args.sizes))
    write_outputs(payload, args.out)
    if args.check is not None:
        return check_against_baseline(payload, args.check)
    return 0


if __name__ == "__main__":
    sys.exit(main())
