"""Round-engine hot-path benchmark: all-broadcast and consensus.

The simulator's hot loop is staging, delivery, and quorum counting.
The engine stages O(logical sends) entries per round — one shared
``Message`` per broadcast, resolved to recipients at delivery time —
where the pre-rewrite engine staged one ``(sender, send)`` tuple per
*recipient* (O(n²) churn per round).  On top of that queue, all-broadcast
recipients of a round now alias one shared ``InboxIndex``, so per-kind
buckets and distinct-sender tallies are built once per round, not once
per node.

On top of both, the columnar round plane stores a round's broadcasts as
interned-payload columns; inbox indexes and quorum tallies materialize
lazily from them, which is what lets the protocol workloads run at
n ∈ {1000, 5000, 10000}.

Five workloads:

* ``all-broadcast`` — one broadcast per node per round at
  n ∈ {50, 200, 800}: pure engine overhead, no inbox queries;
* ``consensus`` — a full all-correct :class:`EarlyConsensus` run with
  split 0/1 inputs at n up to 10000: the quorum-counting path the
  shared index, the quorum-tally plane, and the columnar round plane
  amortize;
* ``parallel-consensus`` — a full all-correct :class:`ParallelConsensus`
  run over a few dozen instances at n up to 10000: per-instance vote
  bases derived once per round on the shared index, counted by every
  node;
* ``sampled-consensus`` / ``sampled-parallel-consensus`` — the same
  decisions reached by a Θ(log² n) committee with implicit outcome
  adoption (:mod:`repro.core.implicit_agreement`): the full-broadcast
  rows directly above them are the same-run baseline their
  ``messages_per_decision`` is judged against.

Each row reports rounds/sec, *logical* deliveries/sec (staged entries ×
recipients — the classical message-complexity figure, not work done),
``materialized_messages`` (Message objects the columnar plane actually
built — the honest work figure), staged entries vs logical deliveries
per round, the decision economy (decisions, messages/decision), whether
tracemalloc was on for the row, its peak, and the engine's per-phase
time split from ``Metrics``.  Tracemalloc roughly halves engine
throughput, so rows above ``TRACEMALLOC_MAX_N`` run with it off
(``tracemalloc: false``, ``peak_traced_kib`` null) and only rows with
the same ``tracemalloc`` flag are throughput-comparable; pass
``--no-tracemalloc`` to disable it everywhere.

Results go to ``results/BENCH_engine.json`` (and a table in
``results/BENCH_engine.md``).  CI runs ``python benchmarks/bench_engine.py
--sizes 50 --check results/BENCH_engine_baseline.json`` as a non-gating
perf smoke over the workloads: it fails only on a
>``PERF_SMOKE_MAX_SLOWDOWN``× rounds/sec regression against the
committed baseline.  ``--check-economy`` additionally fails when a
row's ``messages_per_decision`` exceeds the committed baseline's by
more than ``ECONOMY_MAX_INCREASE``×; ``--agreement-seeds N`` reruns the
sampled-vs-oracle agreement check (:mod:`repro.analysis.oracle`) over N
seeds and records the verdict in the JSON.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
import tracemalloc

from repro.core.committee import committee_size
from repro.core.consensus import EarlyConsensus
from repro.core.implicit_agreement import (
    CommitteeConsensus,
    CommitteeParallelConsensus,
)
from repro.core.parallel_consensus import ParallelConsensus
from repro.sim.network import SyncNetwork
from repro.sim.node import Inbox, NodeApi, Protocol

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DEFAULT_SIZES = (50, 200, 800, 1000, 5000, 10000)
#: Round budget per population size: enough rounds to dominate setup
#: cost, small enough that n=800 stays in CI-smoke territory.
ROUNDS_FOR = {50: 60, 200: 30, 800: 6}
#: The all-broadcast drain is pure engine overhead; larger sizes add no
#: information beyond what the protocol workloads measure.
ENGINE_MAX_N = 800
#: The protocol workloads decide in a fixed handful of phases for
#: all-correct inputs, so population scales to the columnar plane's
#: target range.
CONSENSUS_MAX_N = 10000
#: Generous round budget — the split-input all-correct run decides in a
#: handful of phases.
CONSENSUS_ROUND_LIMIT = 200
#: Instances submitted to the parallel-consensus workload: enough that
#: per-instance work (vote bases, rotor cursors, repr-sorted execution
#: order) dominates, small enough for the CI smoke.
PARALLEL_INSTANCES = 24
PARALLEL_MAX_N = 10000
PARALLEL_ROUND_LIMIT = 400
#: Tracemalloc roughly halves throughput and its peak is dominated by
#: the (size-independent) interned columns anyway; rows above this
#: population run untraced, report ``peak_traced_kib: null`` and
#: ``tracemalloc: false``.  500 keeps the 800-row untraced so every
#: n >= 800 row is throughput-comparable with the n >= 1000 ones
#: (at 800 the traced row used to read ~3.5x slower than n=1000).
TRACEMALLOC_MAX_N = 500
#: CI perf-smoke tolerance: a run must stay within this factor of the
#: committed baseline's rounds/sec at every shared (workload, n) pair.
#: 2x absorbs shared-runner noise while still catching real order-of-
#: magnitude regressions; re-baseline with ``--baseline-out`` whenever a
#: deliberate engine change moves the numbers.
PERF_SMOKE_MAX_SLOWDOWN = 2.0
#: CI economy-smoke tolerance: ``messages_per_decision`` is a counted
#: (deterministic) figure, so the allowance is thin — 1.1x catches any
#: real fan-out regression in the sampled path.
ECONOMY_MAX_INCREASE = 1.1
#: The CI-smoke baseline additionally pins the sampled-consensus
#: economy at this population (the satellite row next to n=50).
ECONOMY_ANCHOR_N = 5000
#: Population of the sampled-vs-oracle agreement sweep: big enough that
#: the committee (~98 of 120) is a strict subset, small enough that
#: 50+ paired runs stay in benchmark territory.
AGREEMENT_POPULATION = 120


class AllBroadcast(Protocol):
    """The hot-path workload: one broadcast per node per round."""

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        api.broadcast("beat", api.round % 7)


def _run_and_measure(net: SyncNetwork, run, trace: bool = True) -> dict:
    if trace:
        tracemalloc.start()
    start = time.perf_counter()
    run(net)
    elapsed = time.perf_counter() - start
    if trace:
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    else:
        peak = None
    metrics = net.metrics
    staged_per_round = metrics.staged_total / metrics.rounds
    deliveries_per_round = metrics.deliveries_total / metrics.rounds
    row = {
        "rounds": metrics.rounds,
        "rounds_per_sec": round(metrics.rounds / elapsed, 2),
        # Logical deliveries = staged entries × recipients — the
        # classical message-complexity figure.  On the columnar path
        # nothing per-recipient is allocated for them; the honest
        # work-done figure is materialized_messages below.
        "logical_deliveries_per_sec": round(
            metrics.deliveries_total / elapsed
        ),
        "materialized_messages": metrics.materialized_messages,
        "staged_entries_per_round": round(staged_per_round, 1),
        "logical_deliveries_per_round": round(deliveries_per_round, 1),
        # The per-recipient engine staged one tuple per delivery; the
        # shared-queue engine stages one entry per logical send.
        "alloc_reduction_vs_per_recipient": round(
            deliveries_per_round / staged_per_round, 1
        ),
        "sends_total": metrics.sends_total,
        "tracemalloc": trace,
        "peak_traced_kib": None if peak is None else round(peak / 1024),
        "engine_time_by_phase": {
            phase: round(seconds, 4)
            for phase, seconds in sorted(
                metrics.engine_time_by_phase.items()
            )
        },
    }
    if metrics.decisions:
        row["decisions"] = metrics.decisions
        row["messages_per_decision"] = round(
            metrics.messages_per_decision, 2
        )
    return row


def _trace_for(n: int, tracing: bool) -> bool:
    """Tracemalloc policy: off when disabled or the population is large."""
    return tracing and n <= TRACEMALLOC_MAX_N


def measure_engine(
    n: int, rounds: int | None = None, seed: int = 1, tracing: bool = True
) -> dict:
    rounds = rounds or ROUNDS_FOR.get(n, 30)
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    for index in range(n):
        net.add_correct(1000 + index, AllBroadcast())
    row = _run_and_measure(
        net,
        lambda network: network.run(rounds, until_all_halted=False),
        trace=_trace_for(n, tracing),
    )
    return {"n": n, **row}


def measure_consensus(n: int, seed: int = 1, tracing: bool = True) -> dict:
    """A full all-correct EarlyConsensus run with split 0/1 inputs.

    Unlike the all-broadcast drain, every node here *queries* its inbox
    (payload tallies, sender sets, per-kind filters) every round — the
    exact shape the shared per-round index computes once for all n
    recipients.
    """
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    for index in range(n):
        net.add_correct(1000 + index, EarlyConsensus(index % 2))
    row = _run_and_measure(
        net,
        lambda network: network.run(CONSENSUS_ROUND_LIMIT),
        trace=_trace_for(n, tracing),
    )
    outputs = set(net.outputs().values())
    assert len(outputs) == 1, "consensus workload failed to agree"
    return {"n": n, "decision": outputs.pop(), **row}


def measure_parallel(n: int, seed: int = 1, tracing: bool = True) -> dict:
    """A full all-correct ParallelConsensus run over a few dozen ids.

    Every node submits the same instance ids in the same round (the
    phase-alignment requirement), each id with a common value, so every
    one of the ``PARALLEL_INSTANCES`` instances runs to a real output.
    This is the workload the quorum-tally plane targets: without it,
    every node rebuilds every instance's vote tally from the same
    shared broadcasts each round.
    """
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    for index in range(n):
        inputs = {
            f"id{k:02d}": k % 2 for k in range(PARALLEL_INSTANCES)
        }
        net.add_correct(1000 + index, ParallelConsensus(inputs))
    row = _run_and_measure(
        net,
        lambda network: network.run(PARALLEL_ROUND_LIMIT),
        trace=_trace_for(n, tracing),
    )
    outputs = set(net.outputs().values())
    assert len(outputs) == 1, "parallel-consensus workload failed to agree"
    return {
        "n": n,
        "instances": PARALLEL_INSTANCES,
        "decided_pairs": len(outputs.pop()),
        **row,
    }


def measure_sampled_consensus(
    n: int, seed: int = 1, tracing: bool = True
) -> dict:
    """The committee-sampled variant of the ``consensus`` workload.

    Same population, same split 0/1 inputs, same seed — but only the
    Θ(log² n) committee runs Algorithm 3; everyone else broadcasts one
    ``hello``, then idles until the implicit-agreement quorum of
    ``decision`` announcements arrives.  ``messages_per_decision`` on
    this row vs the full-broadcast ``consensus`` row at the same n is
    the whole point of the variant.
    """
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    for index in range(n):
        net.add_correct(
            1000 + index,
            CommitteeConsensus(index % 2, sampling_seed=seed),
        )
    row = _run_and_measure(
        net,
        lambda network: network.run(CONSENSUS_ROUND_LIMIT),
        trace=_trace_for(n, tracing),
    )
    outputs = set(net.outputs().values())
    assert len(outputs) == 1, "sampled-consensus workload failed to agree"
    return {
        "n": n,
        "committee": committee_size(n),
        "decision": outputs.pop(),
        **row,
    }


def measure_sampled_parallel(
    n: int, seed: int = 1, tracing: bool = True
) -> dict:
    """The committee-sampled variant of ``parallel-consensus``.

    Every node holds the same input pairs (the phase-alignment shape);
    committee members submit them to a fixed-membership machine and
    broadcast the sorted output tuple once, everyone else adopts it.
    """
    net = SyncNetwork(seed=seed, clock=time.perf_counter)
    inputs = {f"id{k:02d}": k % 2 for k in range(PARALLEL_INSTANCES)}
    for index in range(n):
        net.add_correct(
            1000 + index,
            CommitteeParallelConsensus(inputs, sampling_seed=seed),
        )
    row = _run_and_measure(
        net,
        lambda network: network.run(PARALLEL_ROUND_LIMIT),
        trace=_trace_for(n, tracing),
    )
    outputs = set(net.outputs().values())
    assert len(outputs) == 1, (
        "sampled-parallel-consensus workload failed to agree"
    )
    return {
        "n": n,
        "committee": committee_size(n),
        "instances": PARALLEL_INSTANCES,
        "decided_pairs": len(outputs.pop()),
        **row,
    }


#: workload name -> (measure function, size cap).  The sampled variants
#: sit right after their full-broadcast baselines so the table reads as
#: paired rows.
WORKLOADS = {
    "all-broadcast": (measure_engine, ENGINE_MAX_N),
    "consensus": (measure_consensus, CONSENSUS_MAX_N),
    "sampled-consensus": (measure_sampled_consensus, CONSENSUS_MAX_N),
    "parallel-consensus": (measure_parallel, PARALLEL_MAX_N),
    "sampled-parallel-consensus": (measure_sampled_parallel, PARALLEL_MAX_N),
}


def build_results(
    sizes=DEFAULT_SIZES,
    tracing: bool = True,
    workloads: tuple[str, ...] = tuple(WORKLOADS),
) -> dict:
    return {
        "workloads": [
            {
                "workload": name,
                "results": [
                    WORKLOADS[name][0](n, tracing=tracing)
                    for n in sizes
                    if n <= WORKLOADS[name][1]
                ],
            }
            for name in workloads
        ],
    }


def write_outputs(payload: dict, out: pathlib.Path) -> None:
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    from benchmarks._harness import emit_table

    emit_table(
        "BENCH_engine",
        [
            {
                "workload": entry["workload"],
                "n": row["n"],
                "rounds": row["rounds"],
                "rounds/s": row["rounds_per_sec"],
                # Logical deliveries (staged × recipients): the message-
                # complexity figure.  Work actually done on the columnar
                # path is the materialized column.
                "logical deliv/s": row["logical_deliveries_per_sec"],
                "materialized": row["materialized_messages"],
                "staged/round": row["staged_entries_per_round"],
                "alloc reduction": f"{row['alloc_reduction_vs_per_recipient']}x",
                "msgs/decision": row.get("messages_per_decision", "-"),
                "tracemalloc": "on" if row["tracemalloc"] else "off",
                "peak KiB": (
                    "-"
                    if row["peak_traced_kib"] is None
                    else row["peak_traced_kib"]
                ),
            }
            for entry in payload["workloads"]
            for row in entry["results"]
        ],
        title="Engine hot path: all-broadcast drain, full consensus "
        "runs, and their committee-sampled variants (staged/round stays "
        "at n; recipients of a round's broadcasts share one inbox "
        "index; rows are throughput-comparable only within one "
        "tracemalloc setting)",
    )


def baseline_subset(payload: dict, n: int = 50) -> dict:
    """The CI-smoke baseline: the size-*n* row of every workload, plus
    the sampled-consensus economy anchor at ``ECONOMY_ANCHOR_N``.

    Writing the baseline from the same run (and machine) as the full
    results keeps the committed numbers mutually comparable.
    """

    def keep(workload: str, row: dict) -> bool:
        if row["n"] == n:
            return True
        return (
            workload == "sampled-consensus" and row["n"] == ECONOMY_ANCHOR_N
        )

    return {
        "workloads": [
            {
                "workload": entry["workload"],
                "results": [
                    r
                    for r in entry["results"]
                    if keep(entry["workload"], r)
                ],
            }
            for entry in payload["workloads"]
        ],
    }


def check_against_baseline(payload: dict, baseline_path: pathlib.Path) -> int:
    """Exit status 1 on a >``PERF_SMOKE_MAX_SLOWDOWN``x rounds/sec
    regression at any shared (workload, n) pair."""
    baseline = json.loads(baseline_path.read_text())
    base_by_key = {
        (entry["workload"], row["n"]): row
        for entry in baseline["workloads"]
        for row in entry["results"]
    }
    status = 0
    for entry in payload["workloads"]:
        for row in entry["results"]:
            base = base_by_key.get((entry["workload"], row["n"]))
            if base is None:
                continue
            ratio = base["rounds_per_sec"] / row["rounds_per_sec"]
            ok = ratio <= PERF_SMOKE_MAX_SLOWDOWN
            verdict = "ok" if ok else "REGRESSION"
            print(
                f"{entry['workload']} n={row['n']}: "
                f"{row['rounds_per_sec']} rounds/s vs baseline "
                f"{base['rounds_per_sec']} (x{ratio:.2f} slower) {verdict}"
            )
            if not ok:
                status = 1
    return status


def check_economy_against_baseline(
    payload: dict, baseline_path: pathlib.Path
) -> int:
    """Exit status 1 when ``messages_per_decision`` grew by more than
    ``ECONOMY_MAX_INCREASE``x at any shared (workload, n) pair.

    Unlike rounds/sec this is a deterministic counted figure, so the
    check is meaningful even on noisy shared runners.
    """
    baseline = json.loads(baseline_path.read_text())
    base_by_key = {
        (entry["workload"], row["n"]): row
        for entry in baseline["workloads"]
        for row in entry["results"]
    }
    status = 0
    for entry in payload["workloads"]:
        for row in entry["results"]:
            base = base_by_key.get((entry["workload"], row["n"]))
            if base is None:
                continue
            current = row.get("messages_per_decision")
            committed = base.get("messages_per_decision")
            if current is None or committed is None:
                continue
            ratio = current / committed
            ok = ratio <= ECONOMY_MAX_INCREASE
            verdict = "ok" if ok else "ECONOMY REGRESSION"
            print(
                f"{entry['workload']} n={row['n']}: "
                f"{current} msgs/decision vs baseline {committed} "
                f"(x{ratio:.3f}) {verdict}"
            )
            if not ok:
                status = 1
    return status


def run_agreement_sweep(seeds: int) -> dict:
    """The sampled-vs-oracle agreement check over *seeds* seeds.

    Delegates to :func:`repro.analysis.oracle.check_sampled_agreement`
    (the same helper the integration tests pin) at
    ``AGREEMENT_POPULATION`` nodes and returns its summary block for
    the results JSON.
    """
    from repro.analysis.oracle import check_sampled_agreement

    report = check_sampled_agreement(
        population=AGREEMENT_POPULATION, seeds=seeds
    )
    summary = report.summary()
    print(
        f"agreement sweep: sampled == oracle on "
        f"{summary['seeds_checked']} seeds at n={summary['population']}: "
        f"{'OK' if summary['all_agree'] else summary['disagreements']}"
    )
    return summary


def test_engine_hot_path(benchmark):
    payload = build_results(sizes=(50, 200))
    write_outputs(payload, RESULTS_DIR / "BENCH_engine.json")
    by_name = {
        entry["workload"]: entry["results"]
        for entry in payload["workloads"]
    }
    for row in by_name["all-broadcast"]:
        # Staging is O(sends): on the all-broadcast workload each round
        # stages exactly n entries, not n^2.
        assert row["staged_entries_per_round"] == row["n"]
        assert row["alloc_reduction_vs_per_recipient"] >= 3
    for row in by_name["consensus"]:
        # Every run must actually decide (inside the budget) and agree.
        assert row["rounds"] < CONSENSUS_ROUND_LIMIT
        assert row["decision"] in (0, 1)
    for row in by_name["parallel-consensus"]:
        # All-correct real-valued inputs: every instance must terminate
        # with an output, and every node with the same pair set.
        assert row["rounds"] < PARALLEL_ROUND_LIMIT
        assert row["decided_pairs"] == PARALLEL_INSTANCES
    full = {row["n"]: row for row in by_name["consensus"]}
    for row in by_name["sampled-consensus"]:
        assert row["rounds"] < CONSENSUS_ROUND_LIMIT
        assert row["decision"] in (0, 1)
        assert row["decisions"] == row["n"]
        # At n=200 the committee (128) is a strict subset, so the
        # sampled run must already be cheaper per decision.
        if row["committee"] < row["n"]:
            assert (
                row["messages_per_decision"]
                < full[row["n"]]["messages_per_decision"]
            )
    for row in by_name["sampled-parallel-consensus"]:
        assert row["rounds"] < PARALLEL_ROUND_LIMIT
        assert row["decided_pairs"] == PARALLEL_INSTANCES
        assert row["decisions"] == row["n"]
    benchmark.pedantic(
        lambda: measure_engine(50, rounds=20), rounds=3, iterations=1
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES)
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=RESULTS_DIR / "BENCH_engine.json",
    )
    parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        help="baseline JSON to compare rounds/sec against "
        "(fails on a >2x regression)",
    )
    parser.add_argument(
        "--baseline-out",
        type=pathlib.Path,
        default=None,
        help="also write this run's n=50 rows as a fresh CI-smoke "
        "baseline (keeps baseline and results from one machine/run)",
    )
    parser.add_argument(
        "--no-tracemalloc",
        action="store_true",
        help="disable tracemalloc for every row (peak_traced_kib is "
        "null); rows at n >= %d always run untraced" % (TRACEMALLOC_MAX_N + 1),
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=tuple(WORKLOADS),
        default=tuple(WORKLOADS),
        help="restrict to a subset of workloads (default: all)",
    )
    parser.add_argument(
        "--check-economy",
        type=pathlib.Path,
        default=None,
        help="baseline JSON to compare messages_per_decision against "
        "(fails on a >%.1fx increase)" % ECONOMY_MAX_INCREASE,
    )
    parser.add_argument(
        "--agreement-seeds",
        type=int,
        default=0,
        help="also run the sampled-vs-oracle agreement check over this "
        "many seeds at n=%d and record it in the JSON (fails on any "
        "disagreement)" % AGREEMENT_POPULATION,
    )
    args = parser.parse_args(argv)
    payload = build_results(
        sizes=tuple(args.sizes),
        tracing=not args.no_tracemalloc,
        workloads=tuple(args.workloads),
    )
    status = 0
    if args.agreement_seeds:
        payload["agreement"] = run_agreement_sweep(args.agreement_seeds)
        if not payload["agreement"]["all_agree"]:
            status = 1
    write_outputs(payload, args.out)
    if args.baseline_out is not None:
        args.baseline_out.write_text(
            json.dumps(baseline_subset(payload), indent=2) + "\n"
        )
    if args.check is not None:
        status = check_against_baseline(payload, args.check) or status
    if args.check_economy is not None:
        status = (
            check_economy_against_baseline(payload, args.check_economy)
            or status
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
