"""E10 — Appendix extensions: terminating RB and renaming in O(f).

Claims (full version's appendix): terminating reliable broadcast decides
in O(f) rounds with all RB properties plus termination; Byzantine
renaming reaches a common compact assignment within ~4f + 3 main-loop
rounds.

Regenerated table: rounds vs f for both, agreement rates (expect 100%).
"""

from repro.adversary import MembershipLiarStrategy, SilentStrategy
from repro.core.renaming import ByzantineRenaming
from repro.core.terminating_broadcast import TerminatingReliableBroadcast
from repro.sim.runner import Scenario, run_scenario
from repro.sim.rng import make_rng, sparse_ids

from benchmarks._harness import emit_table

SEEDS = range(8)


def trb_run(f: int, seed: int):
    n = 3 * f + 1 if f else 4
    correct = n - f
    rng = make_rng(seed)
    ids = sparse_ids(n, rng)
    shuffled = ids[:]
    rng.shuffle(shuffled)
    sender = sorted(shuffled[:correct])[0]
    scenario = Scenario(
        correct=correct,
        byzantine=f,
        protocol_factory=lambda nid, i: TerminatingReliableBroadcast(
            sender, "m" if nid == sender else None
        ),
        strategy_factory=(lambda nid, i: SilentStrategy()) if f else None,
        seed=seed,
        max_rounds=2 + 5 * (f + 4),
    )
    return run_scenario(scenario)


def renaming_run(f: int, seed: int, liar: bool):
    n = 3 * f + 1 if f else 4
    scenario = Scenario(
        correct=n - f,
        byzantine=f,
        protocol_factory=lambda nid, i: ByzantineRenaming(),
        strategy_factory=(
            (lambda nid, i: MembershipLiarStrategy())
            if liar
            else (lambda nid, i: SilentStrategy())
        )
        if f
        else None,
        seed=seed,
        rushing=True,
        max_rounds=4 * f + 30,
    )
    return run_scenario(scenario)


def build_trb_rows():
    rows = []
    for f in (0, 1, 2, 3):
        rounds = []
        agreed = 0
        for seed in SEEDS:
            result = trb_run(f, seed)
            rounds.append(result.rounds)
            agreed += result.agreed and result.distinct_outputs == {"m"}
        rows.append(
            {
                "f": f,
                "delivered+agreed%": round(100 * agreed / len(SEEDS), 1),
                "rounds(max)": max(rounds),
                "O(f) budget": 2 + 5 * (f + 2),
            }
        )
    return rows


def build_renaming_rows():
    rows = []
    for f in (0, 1, 2, 3):
        for liar in (False, True):
            if f == 0 and liar:
                continue
            rounds = []
            agreed = 0
            for seed in SEEDS:
                result = renaming_run(f, seed, liar)
                rounds.append(result.rounds)
                agreed += result.agreed
            rows.append(
                {
                    "f": f,
                    "adversary": "membership-liar" if liar else "silent",
                    "agreement%": round(100 * agreed / len(SEEDS), 1),
                    "rounds(max)": max(rounds),
                    "4f+3 budget (+init)": 4 * f + 3 + 2 + 2,
                }
            )
    return rows


def test_e10_trb(benchmark):
    rows = build_trb_rows()
    emit_table(
        "e10_trb",
        rows,
        title="E10a: terminating reliable broadcast (expect 100%, O(f)"
        " rounds)",
    )
    assert all(row["delivered+agreed%"] == 100.0 for row in rows)
    assert all(row["rounds(max)"] <= row["O(f) budget"] for row in rows)
    benchmark.pedantic(lambda: trb_run(2, 0), rounds=5, iterations=1)


def test_e10_renaming(benchmark):
    rows = build_renaming_rows()
    emit_table(
        "e10_renaming",
        rows,
        title="E10b: Byzantine renaming (expect 100%, <= 4f+3 main"
        " rounds)",
    )
    assert all(row["agreement%"] == 100.0 for row in rows)
    assert all(
        row["rounds(max)"] <= row["4f+3 budget (+init)"] for row in rows
    )
    benchmark.pedantic(
        lambda: renaming_run(2, 0, True), rounds=5, iterations=1
    )
