"""Shared benchmark plumbing.

Every benchmark does two things:

* regenerate its experiment's table (the paper has no empirical tables,
  so these operationalise the theorems — see DESIGN.md §5) and persist it
  under ``benchmarks/results/`` for EXPERIMENTS.md;
* time one representative run via pytest-benchmark, so performance
  regressions in the simulator or protocols are visible.
"""

from __future__ import annotations

import pathlib

from repro.analysis.report import format_table
from repro.scenario import RunSpec, run_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_run(spec: RunSpec, *, bus=None):
    """Materialize and run one RunSpec (the benchmarks' one run path).

    Benchmarks describe every run as a declarative
    :class:`~repro.scenario.RunSpec` and execute it here — never by
    assembling :class:`~repro.sim.network.SyncNetwork` populations by
    hand (lint rule R502 fences the direct construction API out of
    ``benchmarks/``), so every benchmarked configuration can be
    serialized and replayed via ``repro run --scenario``.
    """
    return run_spec(spec, bus=bus)


def emit_table(
    name: str, rows, columns=None, title: str | None = None
) -> str:
    """Render, print, and persist one experiment table."""
    text = format_table(rows, columns=columns, title=title or name)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(text)
    print()
    print(text)
    return text


def emit_figure(
    name: str,
    series,
    title: str,
    x_label: str = "x",
    y_label: str = "y",
    width: int = 60,
    height: int = 12,
) -> str:
    """Render, print, and persist one ASCII figure."""
    from repro.analysis.ascii_chart import render_chart

    chart = render_chart(
        series, width=width, height=height,
        x_label=x_label, y_label=y_label,
    )
    text = f"## {title}\n\n```\n{chart}\n```\n"
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.md").write_text(text)
    print()
    print(text)
    return text
