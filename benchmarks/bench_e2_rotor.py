"""E2 — Rotor-coordinator: good round + O(n) termination (Theorem 6.3).

Claim: every correct node terminates within O(n) rounds and witnesses a
round in which all correct nodes accepted the opinion of one common,
correct coordinator — with unknown n, f and sparse ids.

Regenerated series: max termination round vs n (expect linear, slope
~1), good-round rate (expect 100%), across adversaries including a
coordinator usurper.
"""

from repro.adversary import (
    CoordinatorUsurperStrategy,
    MembershipLiarStrategy,
    PresentOnlyStrategy,
)
from repro.analysis.checkers import check_rotor_good_round
from repro.core.rotor import RotorCoordinator
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SEEDS = range(10)


def make_strategy(name):
    if name == "present-only":
        return lambda nid, i: PresentOnlyStrategy()
    if name == "usurper":
        return lambda nid, i: CoordinatorUsurperStrategy(
            RotorCoordinator(opinion="evil")
        )
    if name == "membership-liar":
        return lambda nid, i: MembershipLiarStrategy()
    raise ValueError(name)


def one_run(n: int, adversary: str, seed: int):
    f = (n - 1) // 3
    scenario = Scenario(
        correct=n - f,
        byzantine=f,
        protocol_factory=lambda nid, i: RotorCoordinator(opinion=i),
        strategy_factory=make_strategy(adversary),
        seed=seed,
        rushing=True,
        max_rounds=3 * n + 20,
    )
    result = run_scenario(scenario)
    return result, check_rotor_good_round(result)


def build_rows():
    rows = []
    for n in (4, 7, 13, 25, 49):
        for adversary in ("present-only", "usurper", "membership-liar"):
            good = 0
            rounds = []
            for seed in SEEDS:
                result, report = one_run(n, adversary, seed)
                good += report.ok
                rounds.append(result.rounds)
            rows.append(
                {
                    "n": n,
                    "adversary": adversary,
                    "good round%": round(100 * good / len(SEEDS), 1),
                    "rounds(max)": max(rounds),
                    "rounds/n": round(max(rounds) / n, 2),
                }
            )
    return rows


def test_e2_table_and_timing(benchmark):
    rows = build_rows()
    emit_table(
        "e2_rotor",
        rows,
        title="E2: rotor-coordinator (expect 100% good rounds, rounds"
        " linear in n)",
    )
    assert all(row["good round%"] == 100.0 for row in rows)
    # linearity: max rounds stays within a small multiple of n ...
    assert all(row["rounds(max)"] <= 2 * row["n"] + 6 for row in rows)
    # ... and the fitted growth curve is genuinely linear, not worse
    from repro.analysis.complexity import classify_growth

    per_n = {}
    for row in rows:
        per_n.setdefault(row["n"], []).append(row["rounds(max)"])
    ns = sorted(per_n)
    verdict = classify_growth(ns, [max(per_n[n]) for n in ns])
    assert verdict.is_linear_or_better, verdict
    benchmark.pedantic(
        lambda: one_run(13, "usurper", 0), rounds=5, iterations=1
    )
