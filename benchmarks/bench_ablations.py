"""Ablation benchmarks for the design choices DESIGN.md calls out.

* A1 — rushing vs non-rushing adversary: the guarantees hold either way;
  rushing only affects how hard the adversary can push rounds/messages.
* A2 — the missing-message substitution rule: with it, the tipping
  scenario (one node terminates a phase early) completes; without it,
  the stragglers starve.
* A3 — frozen vs live n_v in consensus: freezing the membership view
  after initialization (the paper's rule) is what makes late Byzantine
  self-introduction harmless.
* A4 — trim-midpoint vs trim-mean in approximate agreement: both stay
  in range; midpoint is the paper's operator and gives the deterministic
  1/2 factor.
"""

import statistics

from repro.adversary import QuorumSplitterStrategy
from repro.core.approx_agreement import trim_and_midpoint
from repro.core.consensus import EarlyConsensus
from repro.errors import SimulationError
from repro.sim.runner import Scenario, run_scenario

from benchmarks._harness import emit_table

SEEDS = range(8)


def consensus_run(seed: int, rushing: bool, substitution: bool = True):
    scenario = Scenario(
        correct=7,
        byzantine=2,
        protocol_factory=lambda nid, i: EarlyConsensus(
            i % 2, substitution=substitution
        ),
        strategy_factory=lambda nid, i: QuorumSplitterStrategy(
            EarlyConsensus(0)
        ),
        seed=seed,
        rushing=rushing,
        max_rounds=200,
    )
    return run_scenario(scenario)


def test_ablation_rushing(benchmark):
    rows = []
    for rushing in (False, True):
        agreed = 0
        rounds = []
        for seed in SEEDS:
            result = consensus_run(seed, rushing)
            agreed += result.agreed
            rounds.append(result.rounds)
        rows.append(
            {
                "adversary": "rushing" if rushing else "non-rushing",
                "agreement%": round(100 * agreed / len(SEEDS), 1),
                "rounds(mean)": round(statistics.fmean(rounds), 1),
                "rounds(max)": max(rounds),
            }
        )
    emit_table(
        "ablation_rushing",
        rows,
        title="Ablation A1: rushing vs non-rushing (expect 100% both;"
        " rushing may cost rounds)",
    )
    assert all(row["agreement%"] == 100.0 for row in rows)
    benchmark.pedantic(
        lambda: consensus_run(0, True), rounds=5, iterations=1
    )


def test_ablation_substitution(benchmark):
    """Reuses the tipping adversary from the test suite: one node is
    pushed into deciding a phase early; without substitution the others
    starve."""
    from tests.core.test_consensus import TippingStrategy

    def tipped_run(substitution: bool):
        inputs = [1, 1, 1, 0, 0]
        scenario = Scenario(
            correct=5,
            byzantine=2,
            protocol_factory=lambda nid, i: EarlyConsensus(
                inputs[i], substitution=substitution
            ),
            strategy_factory=lambda nid, i: TippingStrategy(),
            seed=4,
            rushing=True,
            max_rounds=80,
        )
        return run_scenario(scenario)

    rows = []
    for substitution in (True, False):
        try:
            result = tipped_run(substitution)
            outcome = "agreed" if result.agreed else "DISAGREED"
            rounds = result.rounds
        except SimulationError:
            outcome = "STARVED (no termination)"
            rounds = 80
        rows.append(
            {
                "substitution": "on" if substitution else "off",
                "outcome": outcome,
                "rounds": rounds,
            }
        )
    emit_table(
        "ablation_substitution",
        rows,
        title="Ablation A2: the missing-message substitution rule under"
        " the tipping attack",
    )
    assert rows[0]["outcome"] == "agreed"
    assert rows[1]["outcome"] != "agreed"
    benchmark.pedantic(lambda: tipped_run(True), rounds=5, iterations=1)


def test_ablation_trim_operator(benchmark):
    """Trim-midpoint (the paper) vs trim-mean on adversarial value sets."""
    import random

    def trim_and_mean(values):
        ordered = sorted(values)
        trim = len(ordered) // 3
        survivors = ordered[trim: len(ordered) - trim] or ordered
        return sum(survivors) / len(survivors)

    rng = random.Random(0)
    worst_mid, worst_mean = 0.0, 0.0
    for _ in range(300):
        correct = [rng.uniform(0, 1) for _ in range(7)]
        byz_a = [rng.choice([-1e6, 1e6]) for _ in range(2)]
        byz_b = [rng.choice([-1e6, 1e6]) for _ in range(2)]
        spread_mid = abs(
            trim_and_midpoint(correct + byz_a)
            - trim_and_midpoint(correct + byz_b)
        )
        spread_mean = abs(
            trim_and_mean(correct + byz_a) - trim_and_mean(correct + byz_b)
        )
        scale = max(correct) - min(correct)
        worst_mid = max(worst_mid, spread_mid / scale)
        worst_mean = max(worst_mean, spread_mean / scale)
    rows = [
        {
            "operator": "trim-midpoint (paper)",
            "worst cross-view spread / input range": round(worst_mid, 3),
        },
        {
            "operator": "trim-mean",
            "worst cross-view spread / input range": round(worst_mean, 3),
        },
    ]
    emit_table(
        "ablation_trim",
        rows,
        title="Ablation A4: convergence operator (midpoint guarantees"
        " <= 0.5)",
    )
    assert worst_mid <= 0.5 + 1e-9
    benchmark.pedantic(
        lambda: trim_and_midpoint(list(range(100))),
        rounds=20,
        iterations=10,
    )


def test_ablation_frozen_membership(benchmark):
    """Frozen n_v: a Byzantine node that introduces itself only after
    initialization is ignored entirely (its messages are discarded), so
    its late vote-stuffing cannot move any quorum."""
    from repro.adversary.base import ByzantineStrategy
    from repro.sim.message import BROADCAST, Send

    class LateJoiner(ByzantineStrategy):
        """Silent during init, then stuffs every quorum kind."""

        def on_round(self, view):
            if view.round <= 2:
                return ()
            return [
                Send(BROADCAST, kind, 0)
                for kind in ("input", "prefer", "strongprefer", "echo")
            ]

    rows = []
    agreed = 0
    for seed in SEEDS:
        scenario = Scenario(
            correct=7,
            byzantine=2,
            protocol_factory=lambda nid, i: EarlyConsensus(1),
            strategy_factory=lambda nid, i: LateJoiner(),
            seed=seed,
            max_rounds=60,
        )
        result = run_scenario(scenario)
        agreed += result.agreed and result.distinct_outputs == {1}
    rows.append(
        {
            "attack": "post-init vote stuffing",
            "unanimous-1 preserved%": round(100 * agreed / len(SEEDS), 1),
        }
    )
    emit_table(
        "ablation_frozen_membership",
        rows,
        title="Ablation A3: frozen membership view discards late"
        " self-introduction (expect 100%)",
    )
    assert agreed == len(SEEDS)
    benchmark.pedantic(
        lambda: consensus_run(0, False), rounds=5, iterations=1
    )
