#!/usr/bin/env python3
"""Quickstart: Byzantine consensus without knowing n or f.

Seven correct nodes with conflicting opinions, two Byzantine nodes that
actively try to split the vote — and no node knows how many participants
or faults exist.  The early-terminating consensus of the paper
(Algorithm 3) still drives every correct node to one common output.

Run:  python examples/quickstart.py
"""

from repro.adversary import QuorumSplitterStrategy
from repro.analysis.checkers import check_agreement, check_validity
from repro.core.consensus import EarlyConsensus
from repro.sim.runner import Scenario, run_scenario


def main() -> None:
    inputs = [1, 0, 1, 0, 1, 0, 1]  # the correct nodes' opinions

    scenario = Scenario(
        correct=7,
        byzantine=2,
        # Each correct node runs Algorithm 3 with its own opinion.  Note
        # that the protocol receives *no* information about n or f.
        protocol_factory=lambda node_id, index: EarlyConsensus(
            inputs[index]
        ),
        # The adversary runs the honest protocol but tells half the
        # network "0" and the other half "1" at every opportunity.
        strategy_factory=lambda node_id, index: QuorumSplitterStrategy(
            EarlyConsensus(0)
        ),
        rushing=True,  # Byzantine nodes see correct traffic before talking
        seed=2024,
    )
    result = run_scenario(scenario)

    print(f"correct nodes : {result.correct_ids}")
    print(f"byzantine     : {result.byzantine_ids}")
    print(f"rounds        : {result.rounds}")
    print(f"messages      : {result.metrics.sends_total}")
    print(f"outputs       : {result.outputs}")

    check_agreement(result).raise_if_failed()
    check_validity(result, inputs).raise_if_failed()
    decision = next(iter(result.distinct_outputs))
    print(f"\nAgreement reached on {decision!r} — despite nobody knowing "
          "n or f.")


if __name__ == "__main__":
    main()
