#!/usr/bin/env python3
"""Elastic database cluster: renaming + rotor on sparse machine ids.

The paper's other motivating scenario: "a database cluster that requires
frequent node scaling".  Cloud machines come with sparse, meaningless
identifiers (think instance ids).  Two classical tasks silently assume
consecutive ids and a known f:

* assigning compact shard numbers 1..n to replicas — solved here by
  Byzantine renaming (appendix extension X2);
* electing a rotating sequence of leaders such that one is guaranteed
  correct — solved by the rotor-coordinator (Algorithm 2).

Both run below on a 9-machine cluster (2 Byzantine) whose members know
nothing but their own instance id.

Run:  python examples/elastic_cluster.py
"""

from repro.adversary import MembershipLiarStrategy
from repro.analysis.checkers import check_rotor_good_round
from repro.core.renaming import ByzantineRenaming
from repro.core.rotor import RotorCoordinator
from repro.sim.runner import Scenario, run_scenario


def assign_shards() -> None:
    print("-" * 60)
    print("Step 1: agree on compact shard numbers (Byzantine renaming)")
    print("-" * 60)
    scenario = Scenario(
        correct=7,
        byzantine=2,
        protocol_factory=lambda node_id, index: ByzantineRenaming(),
        # The Byzantine machines vouch for phantom instance ids and
        # reveal themselves to only half the cluster.
        strategy_factory=lambda node_id, index: MembershipLiarStrategy(
            phantoms=2
        ),
        rushing=True,
        seed=31,
        max_rounds=120,
    )
    result = run_scenario(scenario)
    assert result.agreed, "shard assignments diverged!"
    (assignment,) = result.distinct_outputs
    print(f"agreed roster ({len(assignment)} ids): {assignment}")
    for node in result.correct_ids:
        name = result.protocols[node].new_name
        print(f"  instance {node:>7} -> shard #{name}")
    print("every correct machine computed the same mapping ✔\n")


def elect_leaders() -> None:
    print("-" * 60)
    print("Step 2: rotate leaders until one is guaranteed correct (rotor)")
    print("-" * 60)
    scenario = Scenario(
        correct=7,
        byzantine=2,
        protocol_factory=lambda node_id, index: RotorCoordinator(
            opinion=f"plan-by-{index}"
        ),
        strategy_factory=lambda node_id, index: MembershipLiarStrategy(),
        rushing=True,
        seed=32,
        max_rounds=80,
    )
    result = run_scenario(scenario)
    node = result.protocols[result.correct_ids[0]]
    print(f"coordinator rotation: {node.selection_order}")
    print(f"rounds to terminate : {result.rounds}")
    report = check_rotor_good_round(result)
    report.raise_if_failed()
    print(
        "a round existed where every machine trusted the same CORRECT\n"
        "leader — without anyone knowing how many machines or faults "
        "exist ✔"
    )


def main() -> None:
    assign_shards()
    elect_leaders()


if __name__ == "__main__":
    main()
