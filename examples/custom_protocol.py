#!/usr/bin/env python3
"""The docs/tutorial.md worked example: threshold witnessing.

A node wants a certificate that "enough" of the network saw its
statement — without anyone knowing how large the network is.  The
example builds the protocol on the public quorum helpers, runs it, then
attacks it with a forging adversary and shows the certificate standing.

Run:  python examples/custom_protocol.py
"""

from repro.adversary.base import ByzantineStrategy
from repro.core.quorum import ViewTracker, at_least_two_thirds
from repro.sim.node import Protocol
from repro.sim.runner import Scenario, run_scenario


class ThresholdWitness(Protocol):
    """Certify statements witnessed by a two-thirds quorum of n_v."""

    def __init__(self, statement=None):
        super().__init__()
        self.statement = statement
        self.tracker = ViewTracker()
        self.certified = {}

    def on_round(self, api, inbox):
        self.tracker.observe(inbox)
        if api.round == 1:
            if self.statement is not None:
                api.broadcast("claim", self.statement)
            else:
                api.broadcast("present")
            return
        for message in inbox.filter("claim"):
            api.broadcast("witness", (message.payload, message.sender))
        for (stmt, origin), count in inbox.payload_counts(
            "witness"
        ).items():
            if at_least_two_thirds(count, self.tracker.n_v):
                if (stmt, origin) not in self.certified:
                    self.certified[(stmt, origin)] = api.round
                    api.emit("certified", statement=stmt, origin=origin)


class WitnessForger(ByzantineStrategy):
    """Tries to certify a statement its victim never made."""

    def on_round(self, view):
        sends = [self.broadcast("present")] if view.round == 1 else []
        victim = min(view.correct_nodes)
        sends.append(
            self.broadcast("witness", ("forged-statement", victim))
        )
        return sends


def main() -> None:
    claimer = {}

    def factory(node_id, index):
        if index == 0:
            claimer["id"] = node_id
            return ThresholdWitness("the-release-is-signed")
        return ThresholdWitness()

    result = run_scenario(
        Scenario(
            correct=7,
            byzantine=2,
            protocol_factory=factory,
            strategy_factory=lambda node_id, index: WitnessForger(),
            rushing=True,
            seed=7,
            max_rounds=6,
            until_all_halted=False,
        )
    )

    target = ("the-release-is-signed", claimer["id"])
    print(f"claimer: {claimer['id']}")
    for node in result.correct_ids:
        certified = result.protocols[node].certified
        assert target in certified, f"{node} missed the honest claim"
        forged = [key for key in certified if key[0] == "forged-statement"]
        assert not forged, f"{node} certified a forgery: {forged}"
        print(
            f"  node {node:>7}: honest claim certified in round "
            f"{certified[target]}, forgery rejected"
        )
    print(
        "\nEvery correct node certified the honest statement; the "
        "forged witness\nquorum (2 of n_v >= 7) never crossed the "
        "2n_v/3 bar. No node knew n or f."
    )


if __name__ == "__main__":
    main()
