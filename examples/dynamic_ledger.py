#!/usr/bin/env python3
"""A permissioned ledger on a network with churn (Algorithm 6).

The paper's dynamic total ordering is, in effect, a small permissioned
blockchain: nodes submit transactions, the network agrees on a total
order, new replicas can join mid-flight (present/ack handshake) and old
ones can retire — all while nobody knows the current network size or the
number of Byzantine replicas, as long as n > 3f holds per round.

This example runs a 7-replica cluster with 2 silent Byzantine members,
scales up by 2 replicas mid-run, retires one founding replica, and shows
every replica holding an identical transaction log (chain-prefix), with
the newcomers' transactions included.

Run:  python examples/dynamic_ledger.py
"""

from repro.adversary import SilentStrategy
from repro.analysis.checkers import check_chain_prefix
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids

FOUNDERS = 7
BYZANTINE = 2
NEWCOMERS = 2
ROUNDS = 110


def transaction_plan(name: str, cadence: int, start: int = 2) -> dict:
    """A replica submitting 'transfer' transactions every few rounds."""
    return {
        r: f"tx:{name}@{r}" for r in range(start, 60, cadence)
    }


def main() -> None:
    rng = make_rng(1234)
    ids = sparse_ids(FOUNDERS + BYZANTINE + NEWCOMERS, rng)
    founder_ids = ids[:FOUNDERS]
    byzantine_ids = ids[FOUNDERS: FOUNDERS + BYZANTINE]
    newcomer_ids = ids[FOUNDERS + BYZANTINE:]

    membership = MembershipSchedule()
    for offset, newcomer in enumerate(newcomer_ids):
        join_round = 20 + 8 * offset
        membership.join(
            join_round,
            newcomer,
            (lambda k: lambda: TotalOrderNode(
                event_source=events_from_dict(
                    transaction_plan(f"new{k}", 5, start=45)
                ),
                seed=False,
            ))(offset),
        )

    network = SyncNetwork(seed=1234, membership=membership)
    replicas = {}
    for index, node_id in enumerate(founder_ids):
        replica = TotalOrderNode(
            event_source=events_from_dict(
                transaction_plan(f"founder{index}", 6 + index % 3)
            )
        )
        if index == 0:
            replica.leave_at = 40  # the first founder retires
        replicas[node_id] = replica
        network.add_correct(node_id, replica)
    for node_id in byzantine_ids:
        network.add_byzantine(node_id, SilentStrategy())

    network.run(ROUNDS, until_all_halted=False)

    print("ledger state per replica:")
    chains = {}
    for node_id, replica in network.protocols().items():
        role = (
            "founder" if node_id in founder_ids
            else "newcomer"
        )
        status = "retired" if replica.halted else "active"
        chain = (
            list(replica.output) if replica.halted else replica.chain
        )
        chains[node_id] = chain
        print(
            f"  {role:8s} {node_id:>7}: {len(chain):3d} transactions "
            f"finalized ({status})"
        )

    check_chain_prefix(chains).raise_if_failed()
    print("\nchain-prefix holds across every replica ✔")

    longest = max(chains.values(), key=len)
    newcomer_txs = [e for e in longest if "new" in str(e[2])]
    print(f"newcomer transactions in the ledger: {len(newcomer_txs)}")
    assert newcomer_txs, "newcomer transactions should have been ordered"

    print("\nfirst 10 ledger entries (round, submitter, tx):")
    for entry in longest[:10]:
        print(f"  {entry}")


if __name__ == "__main__":
    main()
