#!/usr/bin/env python3
"""Sensor fusion: approximate agreement in a wireless sensor network.

The paper's motivating scenario: "a wireless sensor network that
experiences a changing number of faulty or disconnected nodes over time".
Ten temperature sensors measure the same room (true value 21.5°C, with
per-sensor noise); three compromised sensors report wild values, and —
worse — report *different* wild values to different peers.  Nobody knows
the network size or how many sensors are compromised.

Iterated approximate agreement (Algorithm 4) drives all correct sensors
to within any ε of each other, always inside the honest measurement
range, with the range halving every round.

Run:  python examples/sensor_fusion.py
"""

import random

from repro.adversary import ValueInjectorStrategy
from repro.core.approx_agreement import IteratedApproximateAgreement
from repro.sim.runner import Scenario, run_scenario

TRUE_TEMPERATURE = 21.5
SENSOR_NOISE = 0.8
ITERATIONS = 8


def main() -> None:
    rng = random.Random(7)
    readings = [
        round(TRUE_TEMPERATURE + rng.uniform(-SENSOR_NOISE, SENSOR_NOISE), 2)
        for _ in range(10)
    ]
    print(f"honest readings : {readings}")
    print(f"honest range    : [{min(readings)}, {max(readings)}]")

    scenario = Scenario(
        correct=10,
        byzantine=3,
        protocol_factory=lambda node_id, index: IteratedApproximateAgreement(
            readings[index], iterations=ITERATIONS
        ),
        # Compromised sensors report -40°C to half the network and +85°C
        # to the other half, trying to drag the fused value around.
        strategy_factory=lambda node_id, index: ValueInjectorStrategy(
            low=-40.0, high=85.0
        ),
        rushing=True,
        seed=99,
        max_rounds=ITERATIONS + 4,
    )
    result = run_scenario(scenario)

    fused = sorted(result.outputs.values())
    print(f"\nfused values    : {[round(v, 4) for v in fused]}")
    print(f"fused spread    : {fused[-1] - fused[0]:.6f}°C")

    assert min(readings) <= fused[0] and fused[-1] <= max(readings), (
        "fused values escaped the honest range!"
    )
    expected = (max(readings) - min(readings)) / 2 ** (ITERATIONS - 1)
    assert fused[-1] - fused[0] <= expected + 1e-9
    print(
        f"\nAll correct sensors agree to within {expected:.6f}°C, inside "
        "the honest range,\ndespite 3 compromised sensors reporting ±wild "
        "values — and no sensor knew n or f."
    )

    # Show the per-round halving from one sensor's perspective.
    node = result.protocols[result.correct_ids[0]]
    print("\nconvergence at one sensor:")
    for step, estimate in enumerate(node.estimates, start=1):
        print(f"  round {step}: {estimate:.5f}")


if __name__ == "__main__":
    main()
