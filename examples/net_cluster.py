#!/usr/bin/env python3
"""The same consensus protocol, on real TCP sockets.

Everything else in this repository runs on the deterministic simulator;
this example runs Algorithm 3 over actual localhost sockets with
lock-step rounds paced at Δ = 50 ms — the classic way to realise a
synchronous round model on a network whose delays are bounded well under
Δ.  The protocol class is byte-for-byte the one the simulator runs.

Run:  python examples/net_cluster.py
"""

import time

from repro.core import EarlyConsensus, InteractiveConsistency
from repro.net import LocalCluster


def main() -> None:
    print("consensus over TCP (5 nodes, mixed inputs 0/1, Δ = 50 ms)")
    started = time.time()
    cluster = LocalCluster(
        5,
        lambda node_id, index: EarlyConsensus(index % 2),
        period=0.05,
    )
    outputs = cluster.run(timeout=20)
    elapsed = time.time() - started
    print(f"  outputs : {outputs}")
    assert len(set(outputs.values())) == 1, "disagreement over TCP?!"
    rounds = max(r.round for r in cluster.runners.values())
    print(f"  agreed on {next(iter(outputs.values()))!r} in {rounds} "
          f"rounds / {elapsed:.2f}s wall clock")

    print("\ninteractive consistency over TCP (4 nodes)")
    cluster = LocalCluster(
        4,
        lambda node_id, index: InteractiveConsistency(f"report-{index}"),
        period=0.05,
    )
    outputs = cluster.run(timeout=20)
    (vector,) = set(outputs.values())
    print("  agreed vector:")
    for node_id, value in vector:
        print(f"    {node_id:>7} -> {value}")
    print("\nsame Protocol classes, real sockets ✔")


if __name__ == "__main__":
    main()
