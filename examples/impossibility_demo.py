#!/usr/bin/env python3
"""Why Bitcoin needs synchrony: the §9 impossibility results, live.

The paper proves that an agreement protocol designed to work without
knowing n and f (such as Nakamoto's blockchain) "either must assume
synchronous execution for guaranteed agreement or sacrifice agreement
with some probability".  This demo realises both constructions:

* Lemma 9.1 — asynchronous: partition the network; each side's execution
  is *literally indistinguishable* (log-for-log) from a solo system, so
  the sides decide their own inputs and disagree.
* Lemma 9.2 — semi-synchronous: even with a hard delay bound Δs, if the
  nodes don't know Δs, the adversary embeds two fast solo executions in
  a slow composed system and gets the same disagreement without ever
  violating the bound.

Run:  python examples/impossibility_demo.py
"""

from repro.asyncsim import run_async_partition, run_semisync_embedding


def main() -> None:
    print("=" * 64)
    print("Lemma 9.1 — asynchronous network, unknown n and f")
    print("=" * 64)
    result = run_async_partition(size_a=4, size_b=4, patience=10.0)
    print(f"group A (input 1): {result.group_a}")
    print(f"group B (input 0): {result.group_b}")
    print(f"decisions: {result.decisions}")
    print(f"disagreement:       {result.disagreement}")
    print(f"indistinguishable from solo systems: "
          f"{result.indistinguishable}")
    print(
        "\nEvery node in A saw *exactly* the same messages it would have\n"
        "seen if B never existed (checked log-for-log), so no algorithm\n"
        "could have done better: waiting longer only moves the bar the\n"
        "adversary has to clear."
    )

    print()
    print("=" * 64)
    print("Lemma 9.2 — semi-synchronous: bounded delays, unknown bound")
    print("=" * 64)
    result = run_semisync_embedding(
        size_a=4, size_b=4, delta_a=1.0, delta_b=2.0, patience=10.0
    )
    print(f"solo system A: delay bound {result.delta_a}, "
          f"finished at t={result.duration_a}")
    print(f"solo system B: delay bound {result.delta_b}, "
          f"finished at t={result.duration_b}")
    print(f"composed system delay bound Δs = {result.delta_s} "
          "(every message respects it)")
    print(f"decisions: {result.decisions}")
    print(f"disagreement:       {result.disagreement}")
    print(f"indistinguishable up to each decision: "
          f"{result.indistinguishable}")
    print(
        "\nThe composed system IS semi-synchronous — every delay is at\n"
        "most Δs — yet each group re-lives its fast solo execution and\n"
        "decides before a single cross-group message arrives.  Knowing\n"
        "that *some* bound exists is useless without knowing its value."
    )


if __name__ == "__main__":
    main()
