#!/usr/bin/env python3
"""A replicated key-value store nobody had to size in advance.

The end-product of the paper's machinery: five replicas (none of which
knows the cluster size or fault bound) accept writes, agree on one
operation order via dynamic total ordering, and apply it to identical
local states — while a sixth replica joins mid-run, catches up, and
serves its own writes.

Run:  python examples/replicated_kv.py
"""

from repro.adversary import SilentStrategy
from repro.core.replicated_store import ReplicatedKVStore
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def main() -> None:
    rng = make_rng(2718)
    ids = sparse_ids(8, rng)
    replica_ids, byzantine_ids, joiner_id = ids[:5], ids[5:7], ids[7]

    membership = MembershipSchedule()
    membership.join(12, joiner_id, lambda: ReplicatedKVStore(seed=False))

    network = SyncNetwork(seed=2718, membership=membership)
    stores = {}
    for node_id in replica_ids:
        store = ReplicatedKVStore()
        stores[node_id] = store
        network.add_correct(node_id, store)
    for node_id in byzantine_ids:
        network.add_byzantine(node_id, SilentStrategy())

    # Founders write some config before the joiner arrives...
    writers = list(stores.values())
    writers[0].submit_set("region", "eu-west")
    writers[1].submit_set("replicas", 5)
    writers[2].submit_set("feature/dark-mode", True)
    network.run(20, until_all_halted=False)

    # ... the joiner completes its handshake, then writes too.
    joiner = network.protocols()[joiner_id]
    joiner.submit_set("replicas", 6)
    joiner.submit_set("joined-by", "the-new-replica")
    writers[0].submit_delete("feature/dark-mode")
    network.run(60, until_all_halted=False)

    print("replica states:")
    states = []
    for node_id, store in network.protocols().items():
        role = "joiner " if node_id == joiner_id else "founder"
        print(f"  {role} {node_id:>7}: {dict(sorted(store.state.items()))}")
        states.append(store.state)

    founder_states = [
        s.state
        for n, s in network.protocols().items()
        if n != joiner_id
    ]
    assert all(s == founder_states[0] for s in founder_states)
    print("\nall founder replicas hold identical state ✔")

    reference = founder_states[0]
    assert reference["replicas"] == 6, "joiner's write must have won"
    assert "feature/dark-mode" not in reference
    print("the joiner's write is in everyone's store ✔")

    print("\napplied operation log (identical everywhere):")
    for entry in writers[0].applied_log:
        print(f"  {entry}")


if __name__ == "__main__":
    main()
