"""Dolev et al. approximate agreement (known ``n, f``).

The classical trimmed-mean round: broadcast the estimate, discard exactly
the ``f`` smallest and ``f`` largest of the ``n`` received values, and
average the survivors' extremes.  Identical convergence behaviour to the
paper's Algorithm 4 — the benchmark compares the two to support §12's
"convergence rate remains unchanged" claim — but it needs the true ``f``
and assumes all ``n`` values arrive (a silent faulty node must be padded
with a default, another luxury of known membership).
"""

from __future__ import annotations

from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol

KIND_VALUE = "value"


def trim_f_and_midpoint(values: list[float], f: int) -> float:
    """Discard the ``f`` smallest and largest values, return the midpoint
    of the survivors' extremes."""
    if len(values) <= 2 * f:
        raise ValueError(
            f"need more than 2f={2 * f} values, got {len(values)}"
        )
    ordered = sorted(values)
    survivors = ordered[f: len(ordered) - f] if f else ordered
    return (survivors[0] + survivors[-1]) / 2


class DolevApproxAgreement(Protocol):
    """Iterated known-``f`` approximate agreement.

    Args:
        input_value: the initial estimate.
        f: the failure bound (values trimmed per side each round).
        iterations: number of halving rounds.
    """

    def __init__(self, input_value: float, f: int, iterations: int = 10):
        super().__init__()
        self.estimate = float(input_value)
        self.f = f
        self.iterations = iterations
        self.estimates: list[float] = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round > 1:
            values = [
                m.payload
                for m in inbox.filter(KIND_VALUE)
                if isinstance(m.payload, (int, float))
                and not isinstance(m.payload, bool)
            ]
            if len(values) > 2 * self.f:
                self.estimate = trim_f_and_midpoint(values, self.f)
            self.estimates.append(self.estimate)
            if len(self.estimates) >= self.iterations:
                self.decide(api, self.estimate)
                return
        api.broadcast(KIND_VALUE, self.estimate)
