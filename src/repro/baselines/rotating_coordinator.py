"""The trivial known-``f`` rotating coordinator.

With a globally known member list and failure bound, selecting ``f + 1``
coordinators is a one-liner: rotate through the ``f + 1`` smallest ids,
one per round.  No messages are needed for the selection itself — only
the coordinator's opinion broadcast.  This is the baseline that makes the
cost of the paper's rotor-coordinator (Algorithm 2) visible: the id-only
model has to *reconstruct* the member list with echo quorums before it
can rotate at all.
"""

from __future__ import annotations

from typing import Hashable

from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

KIND_OPINION = "opinion"


class KnownFRotatingCoordinator(Protocol):
    """Rotate through the ``f + 1`` smallest member ids, one per round.

    Terminates after ``f + 1`` rounds, by which point at least one
    round's coordinator was correct.  The accepted opinions land one
    round after each coordinator's turn.
    """

    def __init__(self, opinion: Hashable, members: list[NodeId], f: int):
        super().__init__()
        n = len(members)
        if not n > 3 * f:
            raise ValueError(f"n={n}, f={f} violates n > 3f")
        self.opinion = opinion
        self.coordinators = sorted(members)[: f + 1]
        self.f = f
        self.accepted_opinions: list[tuple[Round, NodeId, Hashable]] = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        # Collect the opinion of the previous round's coordinator.
        if 2 <= api.round <= self.f + 2:
            previous = self.coordinators[api.round - 2]
            for msg in inbox.from_sender(previous).filter(KIND_OPINION):
                self.accepted_opinions.append(
                    (api.round, previous, msg.payload)
                )
                api.emit(
                    "accept-opinion", coordinator=previous, opinion=msg.payload
                )
                break
        if api.round <= self.f + 1:
            if self.coordinators[api.round - 1] == api.node_id:
                api.broadcast(KIND_OPINION, self.opinion)
        if api.round == self.f + 2:
            self.decide(api, None)
