"""Classical known-``n, f`` baselines.

The paper generalizes three classics — Srikanth–Toueg reliable broadcast,
the Berman–Garay–Perry *phase king*, and Dolev et al.'s approximate
agreement — plus the trivial consecutive-id rotating coordinator.  These
reference implementations receive ``n`` and ``f`` explicitly, so the
benchmarks can measure what the unknown-``n, f`` versions pay (the paper's
§12 claim: round and message complexity "do not change much") and what
the classics silently assume (consecutive ids, a global ``f``).
"""

from repro.baselines.srikanth_toueg import SrikanthTouegBroadcast
from repro.baselines.phase_king import PhaseKingConsensus
from repro.baselines.dolev_approx import DolevApproxAgreement
from repro.baselines.rotating_coordinator import KnownFRotatingCoordinator

__all__ = [
    "DolevApproxAgreement",
    "KnownFRotatingCoordinator",
    "PhaseKingConsensus",
    "SrikanthTouegBroadcast",
]
