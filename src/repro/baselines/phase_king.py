"""Berman–Garay–Perry *phase king* consensus (known ``n, f``).

The classical ``O(f)``-phase binary consensus the paper's consensus
algorithms descend from.  It leans on exactly the knowledge the id-only
model denies: the full member list (to pick the phase-``p`` king by rank)
and the failure bound ``f`` (to run precisely ``f + 1`` phases and to use
absolute thresholds ``f + 1`` / ``n - f``).

Phase layout (4 rounds):

1. broadcast ``value(x)``;
2. count values; when the majority value has at least ``n - f`` backers,
   broadcast ``proposal(majority)``;
3. count proposals; more than ``f`` backers means at least one correct
   backer — adopt the value.  The phase's king broadcasts its (updated)
   value;
4. receive the king's value; nodes whose round-3 proposal count was below
   ``n - f`` adopt it.  After phase ``f + 1``, decide.
"""

from __future__ import annotations

from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_VALUE = "value"
KIND_PROPOSAL = "proposal"
KIND_KING = "king"

ROUNDS_PER_PHASE = 4


class PhaseKingConsensus(Protocol):
    """One node's phase-king execution.

    Args:
        input_value: binary input.
        members: the full, globally known member list.
        f: the failure bound; the protocol runs ``f + 1`` phases.
    """

    def __init__(self, input_value: int, members: list[NodeId], f: int):
        super().__init__()
        if input_value not in (0, 1):
            raise ValueError("phase king needs binary input")
        n = len(members)
        if not n > 3 * f:
            raise ValueError(f"n={n}, f={f} violates n > 3f")
        self.x = input_value
        self.members = sorted(members)
        self.n = n
        self.f = f
        self._proposal_count = 0

    def king_of(self, phase: int) -> NodeId:
        """The globally agreed king of *phase* (1-based)."""
        return self.members[(phase - 1) % len(self.members)]

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        phase = (api.round - 1) // ROUNDS_PER_PHASE + 1
        phase_round = (api.round - 1) % ROUNDS_PER_PHASE + 1

        if phase_round == 1:
            api.broadcast(KIND_VALUE, self.x)
        elif phase_round == 2:
            zeros = inbox.count(KIND_VALUE, payload=0)
            ones = inbox.count(KIND_VALUE, payload=1)
            majority = 0 if zeros >= ones else 1
            if max(zeros, ones) >= self.n - self.f:
                api.broadcast(KIND_PROPOSAL, majority)
        elif phase_round == 3:
            value, count = inbox.best_payload(KIND_PROPOSAL)
            self._proposal_count = count
            if count > self.f and value in (0, 1):
                self.x = value
            if self.king_of(phase) == api.node_id:
                api.broadcast(KIND_KING, self.x)
                api.emit("king-broadcast", phase=phase, value=self.x)
        else:  # phase_round == 4
            king = self.king_of(phase)
            for msg in inbox.from_sender(king).filter(KIND_KING):
                if self._proposal_count < self.n - self.f and msg.payload in (
                    0,
                    1,
                ):
                    self.x = msg.payload
                    api.emit("adopt-king", phase=phase, value=self.x)
                break
            if phase == self.f + 1:
                self.decide(api, self.x)
