"""Srikanth–Toueg authenticated-echo reliable broadcast (known ``n, f``).

The classical abstraction the paper's Algorithm 1 generalizes.  With
``n`` and ``f`` known, the thresholds are absolute: re-echo at ``f + 1``
distinct echoes (at least one correct node backs the message), accept at
``n - f`` (a quorum every correct node will eventually see).  Correct for
``n > 3f``.

Used by benchmark E9 to compare round/message complexity against the
unknown-``n, f`` version.
"""

from __future__ import annotations

from typing import Hashable

from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

KIND_MESSAGE = "msg"
KIND_ECHO = "echo"


class SrikanthTouegBroadcast(Protocol):
    """One reliable-broadcast slot with known ``n`` and ``f``.

    Args:
        sender_id: the designated sender.
        n: total number of nodes (global knowledge the id-only model
            denies).
        f: the failure bound.
        message: the payload, when this node is the sender.
    """

    def __init__(
        self, sender_id: NodeId, n: int, f: int, message: Hashable = None
    ):
        super().__init__()
        if not n > 3 * f:
            raise ValueError(f"n={n}, f={f} violates n > 3f")
        self.sender_id = sender_id
        self.n = n
        self.f = f
        self.message = message
        self.accepted: dict[tuple[Hashable, NodeId], Round] = {}
        self._echoed: set[tuple[Hashable, NodeId]] = set()
        self._echo_senders: dict[tuple[Hashable, NodeId], set[NodeId]] = {}

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            if api.node_id == self.sender_id:
                api.broadcast(KIND_MESSAGE, self.message)
            return
        if api.round == 2:
            for msg in inbox.from_sender(self.sender_id).filter(KIND_MESSAGE):
                self._echo(api, (msg.payload, self.sender_id))
            return

        for msg in inbox.filter(KIND_ECHO):
            self._echo_senders.setdefault(msg.payload, set()).add(msg.sender)
        for tag, senders in self._echo_senders.items():
            if tag in self.accepted:
                continue
            if len(senders) >= self.f + 1:
                self._echo(api, tag)
            if len(senders) >= self.n - self.f:
                self.accepted[tag] = api.round
                api.emit("accept", tag=tag)

    def _echo(self, api: NodeApi, tag: tuple[Hashable, NodeId]) -> None:
        if tag not in self._echoed:
            self._echoed.add(tag)
            api.broadcast(KIND_ECHO, tag)
            api.emit("rb-echo", tag=tag)

    def has_accepted(self, message: Hashable = ...) -> bool:
        if message is ...:
            return bool(self.accepted)
        return (message, self.sender_id) in self.accepted
