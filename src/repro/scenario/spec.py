"""The frozen, JSON-portable description of one run.

A :class:`RunSpec` is the single vocabulary every harness speaks: the
CLI, the benchmarks, the oracle, the sweep driver, and the replay
scenarios all *describe* a run as a ``RunSpec`` and *materialize* it
through :func:`repro.scenario.build.materialize`.  Because a spec is
frozen and built only from JSON-native values, any run — including a
campaign run that violated a monitor — can be serialized, committed,
and replayed bit-for-bit with ``repro run --scenario FILE``.

The spec deliberately names things (protocols, input assignments,
adversaries, churn generators) rather than holding callables; the
:mod:`repro.scenario.registry` resolves names to factories at
materialization time.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import ConfigurationError

DEFAULT_ID_SPACE = 10**6


def _frozen_params(value: Mapping[str, Any] | None) -> dict[str, Any]:
    return dict(value) if value else {}


@dataclass(frozen=True)
class ChurnSpec:
    """A named churn generator plus its parameters.

    ``kind`` is one of the generators registered in
    :mod:`repro.scenario.churn` (``rate``, ``crash-recover``,
    ``bursts``); ``params`` are its JSON-native keyword arguments.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _frozen_params(self.params))

    def to_json_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": dict(self.params)}

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, Any]) -> "ChurnSpec":
        unknown = set(doc) - {"kind", "params"}
        if unknown:
            raise ConfigurationError(
                f"unknown churn fields: {sorted(unknown)}"
            )
        if "kind" not in doc:
            raise ConfigurationError("churn spec needs a 'kind'")
        return cls(kind=doc["kind"], params=dict(doc.get("params", {})))


@dataclass(frozen=True)
class RunSpec:
    """One run, declaratively: population, protocol, adversary, churn, seed.

    Attributes:
        protocol: registered protocol name (see
            :data:`repro.scenario.registry.PROTOCOLS`).
        n: total initial population (correct + Byzantine).
        f: Byzantine count within ``n``.
        variant: protocol variant, e.g. ``"full"`` or ``"sampled"``.
        inputs: named input assignment (``"alternating"``,
            ``"supermajority"``, ``"index"``, ``"constant:<json>"``);
            ``None`` uses the protocol's registered default.
        protocol_params: protocol-specific knobs (payloads, event
            cadence, voluntary leave plans), JSON-native.
        adversary: strategy name from :data:`repro.adversary.STRATEGY_BUILDERS`
            (only used when ``f > 0``).
        adversary_params: strategy keyword arguments; the reserved key
            ``wrapped_index`` picks the index the wrapped honest
            protocol is built with (wrapping strategies only).
        churn: optional :class:`ChurnSpec` generating the membership
            schedule.
        seed: master seed — id assignment, engine randomness, and the
            churn stream all derive from it.
        rushing: rushing adversary delivery order.
        max_rounds: round budget.
        until_all_halted: run-loop stop condition; ``None`` uses the
            protocol's registered default.
        enforce_resiliency: check ``n > 3f`` (initially and per churn
            round) and refuse violating configs.
        id_space: sparse node-id universe.
        runtime: which engine materializes the spec (only ``"sim"`` —
            the lockstep simulator — exists today; the field keys
            future asyncio/net runtimes).
    """

    protocol: str
    n: int
    f: int = 0
    variant: str = "full"
    inputs: str | None = None
    protocol_params: Mapping[str, Any] = field(default_factory=dict)
    adversary: str = "silent"
    adversary_params: Mapping[str, Any] = field(default_factory=dict)
    churn: ChurnSpec | None = None
    seed: int = 0
    rushing: bool = False
    max_rounds: int = 200
    until_all_halted: bool | None = None
    enforce_resiliency: bool = True
    id_space: int = DEFAULT_ID_SPACE
    runtime: str = "sim"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "protocol_params", _frozen_params(self.protocol_params)
        )
        object.__setattr__(
            self, "adversary_params", _frozen_params(self.adversary_params)
        )

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Arithmetic sanity; name resolution happens at materialization."""
        if self.n <= 0:
            raise ConfigurationError("n must be positive")
        if self.f < 0:
            raise ConfigurationError("f must be >= 0")
        if self.f >= self.n:
            raise ConfigurationError(
                f"f={self.f} leaves no correct node in n={self.n}"
            )
        if self.enforce_resiliency and not self.n > 3 * self.f:
            raise ConfigurationError(
                f"n={self.n}, f={self.f} violates n > 3f; set "
                "enforce_resiliency=False to run anyway"
            )
        if self.max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        if self.runtime != "sim":
            raise ConfigurationError(
                f"unknown runtime {self.runtime!r}; only 'sim' exists"
            )

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """A plain dict with JSON-native values, stable key order."""
        doc: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name == "churn":
                value = value.to_json_dict() if value else None
            elif isinstance(value, Mapping):
                value = dict(value)
            doc[spec_field.name] = value
        return doc

    @classmethod
    def from_json_dict(cls, doc: Mapping[str, Any]) -> "RunSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunSpec fields: {sorted(unknown)}"
            )
        if "protocol" not in doc or "n" not in doc:
            raise ConfigurationError("a RunSpec needs 'protocol' and 'n'")
        kwargs = dict(doc)
        churn = kwargs.get("churn")
        if churn is not None and not isinstance(churn, ChurnSpec):
            kwargs["churn"] = ChurnSpec.from_json_dict(churn)
        return cls(**kwargs)

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_json_dict(), indent=2, sort_keys=False)
            + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RunSpec":
        doc = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
        if not isinstance(doc, dict):
            raise ConfigurationError(f"{path}: not a RunSpec object")
        return cls.from_json_dict(doc)

    # ------------------------------------------------------------------
    def label(self) -> str:
        """Human-readable one-liner for CLI output and reports."""
        parts = [self.protocol]
        if self.variant != "full":
            parts.append(f"({self.variant})")
        parts.append(f"n={self.n} f={self.f}")
        if self.f:
            parts.append(f"adversary={self.adversary}")
        if self.churn is not None:
            parts.append(f"churn={self.churn.kind}")
        parts.append(f"seed={self.seed}")
        return " ".join(parts)
