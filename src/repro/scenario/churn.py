"""Seeded churn-schedule generators.

The paper's dynamic model lets the adversary schedule joins and forced
leaves, subject to ``n > 3f`` when each round starts.  A
:class:`~repro.scenario.spec.ChurnSpec` names one of three generators:

* ``rate`` — per-round join/leave coin flips over a window (the EpTO
  ``CHURN_RATE`` workload shape);
* ``crash-recover`` — a node is forcibly removed and later rejoins
  under the *same id*, exercising the engine's re-admission path;
* ``bursts`` — adversarially timed churn: a clump of joins lands at
  once, and some of those joiners are yanked exactly when established
  members admit them to ``S`` (three rounds later — the worst moment
  for the membership view).

Every generator draws from ``make_rng(spec.seed ^ CHURN_SALT)`` — a
stream independent of the engine's own randomness, so the same spec
always yields the same schedule, and changing only the protocol seed
path never silently reshuffles the churn.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.sim.membership import MembershipSchedule
from repro.sim.rng import make_rng
from repro.types import NodeId

#: XOR'd into the spec seed so churn and engine randomness are
#: independent streams of the one master seed.
CHURN_SALT = 0x5EED_CA11

__all__ = ["CHURN_SALT", "CHURN_KINDS", "build_membership", "validate_schedule"]


def _fresh_id(rng, taken: set[NodeId], id_space: int) -> NodeId:
    while True:
        candidate = rng.randrange(1, id_space)
        if candidate not in taken:
            taken.add(candidate)
            return candidate


def _joiner_factory(spec, entry, node_id: NodeId, round_no: int):
    if entry.joiner is None:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} has no join handshake; churn "
            "schedules need a protocol with a registered joiner "
            "(e.g. total-order)"
        )
    return entry.joiner(spec, node_id, round_no)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------
def _rate_schedule(
    spec, entry, correct_ids: Sequence[NodeId], byz_ids: Sequence[NodeId]
) -> MembershipSchedule:
    """Independent per-round join/leave coin flips over a window."""
    params = dict(spec.churn.params)
    join_rate = float(params.pop("join_rate", 0.08))
    leave_rate = float(params.pop("leave_rate", 0.04))
    start = int(params.pop("start", 12))
    stop = int(params.pop("stop", max(start, spec.max_rounds - 25)))
    max_joins = params.pop("max_joins", None)
    max_leaves = params.pop("max_leaves", None)
    _reject_unknown("rate", params)

    rng = make_rng(spec.seed, salt=CHURN_SALT)
    schedule = MembershipSchedule()
    taken = set(correct_ids) | set(byz_ids)
    correct_alive = set(correct_ids)
    f_alive = len(byz_ids)
    joins = leaves = 0
    for round_no in range(start, stop):
        if (max_joins is None or joins < max_joins) and (
            rng.random() < join_rate
        ):
            joiner = _fresh_id(rng, taken, spec.id_space)
            schedule.join(
                round_no,
                joiner,
                _joiner_factory(spec, entry, joiner, round_no),
            )
            correct_alive.add(joiner)
            joins += 1
        if (max_leaves is None or leaves < max_leaves) and (
            rng.random() < leave_rate
        ):
            # Remove a random correct member — but never below the
            # resiliency floor the dynamic model requires per round.
            n_after = len(correct_alive) - 1 + f_alive
            if correct_alive and (
                not spec.enforce_resiliency or n_after > 3 * f_alive
            ):
                victim = rng.choice(sorted(correct_alive))
                schedule.leave(round_no, victim)
                correct_alive.discard(victim)
                leaves += 1
    return schedule


def _crash_recover_schedule(
    spec, entry, correct_ids: Sequence[NodeId], byz_ids: Sequence[NodeId]
) -> MembershipSchedule:
    """Forced removals followed by same-id rejoins."""
    params = dict(spec.churn.params)
    pairs = int(params.pop("pairs", 1))
    first = int(params.pop("first", 16))
    gap = int(params.pop("gap", 8))
    spacing = int(params.pop("spacing", 12))
    _reject_unknown("crash-recover", params)
    if gap < 2:
        raise ConfigurationError(
            "crash-recover gap must be >= 2: a node cannot rejoin the "
            "round it is removed"
        )
    if pairs > len(correct_ids):
        raise ConfigurationError(
            f"crash-recover pairs={pairs} exceeds the {len(correct_ids)} "
            "correct founders"
        )

    rng = make_rng(spec.seed, salt=CHURN_SALT)
    victims = rng.sample(sorted(correct_ids), pairs)
    schedule = MembershipSchedule()
    f_alive = len(byz_ids)
    n_during = len(correct_ids) - 1 + f_alive
    if spec.enforce_resiliency and not n_during > 3 * f_alive:
        raise ConfigurationError(
            f"crash-recover downtime leaves n={n_during}, f={f_alive}: "
            "violates n > 3f"
        )
    for k, victim in enumerate(victims):
        down = first + k * spacing
        schedule.leave(down, victim)
        schedule.join(
            down + gap,
            victim,
            _joiner_factory(spec, entry, victim, down + gap),
        )
    return schedule


def _bursts_schedule(
    spec, entry, correct_ids: Sequence[NodeId], byz_ids: Sequence[NodeId]
) -> MembershipSchedule:
    """Clumped joins, with some joiners yanked at their admission round."""
    params = dict(spec.churn.params)
    first = int(params.pop("first", 14))
    period = int(params.pop("period", 7))
    count = int(params.pop("count", 3))
    joins_per_burst = int(params.pop("joins", 1))
    leaves_per_burst = int(params.pop("leaves", 0))
    _reject_unknown("bursts", params)
    if leaves_per_burst > joins_per_burst:
        raise ConfigurationError(
            "bursts: cannot yank more joiners than the burst admits"
        )

    rng = make_rng(spec.seed, salt=CHURN_SALT)
    schedule = MembershipSchedule()
    taken = set(correct_ids) | set(byz_ids)
    for burst in range(count):
        round_no = first + period * burst
        burst_joiners = []
        for _ in range(joins_per_burst):
            joiner = _fresh_id(rng, taken, spec.id_space)
            schedule.join(
                round_no,
                joiner,
                _joiner_factory(spec, entry, joiner, round_no),
            )
            burst_joiners.append(joiner)
        # Established members admit a joiner to S three rounds after its
        # `present` lands; removing it exactly then maximizes the damage
        # a churn adversary can do to the membership views.
        for victim in burst_joiners[:leaves_per_burst]:
            schedule.leave(round_no + 3, victim)
    return schedule


def _reject_unknown(kind: str, leftovers: dict[str, Any]) -> None:
    if leftovers:
        raise ConfigurationError(
            f"unknown churn params for {kind!r}: {sorted(leftovers)}"
        )


_GENERATORS: dict[
    str, Callable[..., MembershipSchedule]
] = {
    "rate": _rate_schedule,
    "crash-recover": _crash_recover_schedule,
    "bursts": _bursts_schedule,
}

#: Registered churn generator names.
CHURN_KINDS: tuple[str, ...] = tuple(_GENERATORS)


def build_membership(
    spec,
    entry,
    correct_ids: Sequence[NodeId],
    byz_ids: Sequence[NodeId],
) -> MembershipSchedule:
    """Generate and validate the membership schedule for *spec*."""
    try:
        generator = _GENERATORS[spec.churn.kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown churn kind {spec.churn.kind!r}; known: "
            f"{', '.join(CHURN_KINDS)}"
        ) from None
    schedule = generator(spec, entry, correct_ids, byz_ids)
    validate_schedule(
        schedule,
        correct_ids,
        byz_ids,
        enforce_resiliency=spec.enforce_resiliency,
    )
    return schedule


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------
def validate_schedule(
    schedule: MembershipSchedule,
    correct_ids: Sequence[NodeId],
    byz_ids: Sequence[NodeId],
    *,
    enforce_resiliency: bool = True,
) -> None:
    """Replay the schedule against the starting population.

    Raises :class:`~repro.errors.ConfigurationError` when a join
    re-admits an id that is still alive, or when any round would start
    with ``n <= 3f`` (counting scheduled joins and forced leaves, with
    Byzantine joins raising ``f``) while ``enforce_resiliency`` holds.
    Forced leaves of departed or unknown ids are allowed — the engine
    treats them as no-ops, mirroring an adversary wasting a removal.
    """
    correct_alive = set(correct_ids)
    byz_alive = set(byz_ids)
    departed: set[NodeId] = set()
    rounds = sorted(
        {j.round for j in schedule.joins}
        | {leave.round for leave in schedule.leaves}
    )
    for round_no in rounds:
        for join in schedule.joins_at(round_no):
            if join.node_id in correct_alive or join.node_id in byz_alive:
                raise ConfigurationError(
                    f"round {round_no}: join of node {join.node_id} "
                    "which is still alive"
                )
            departed.discard(join.node_id)
            (byz_alive if join.byzantine else correct_alive).add(
                join.node_id
            )
        for leave in schedule.leaves_at(round_no):
            if leave.node_id in correct_alive:
                correct_alive.discard(leave.node_id)
                departed.add(leave.node_id)
            elif leave.node_id in byz_alive:
                byz_alive.discard(leave.node_id)
                departed.add(leave.node_id)
            # else: already departed / never present — engine no-op.
        n_alive = len(correct_alive) + len(byz_alive)
        if enforce_resiliency and not n_alive > 3 * len(byz_alive):
            raise ConfigurationError(
                f"round {round_no}: schedule leaves n={n_alive}, "
                f"f={len(byz_alive)} — violates n > 3f"
            )
