"""One scenario layer, every runtime (DESIGN.md §4).

A run is *described* by a frozen, JSON-portable
:class:`~repro.scenario.spec.RunSpec` and *materialized* by
:func:`~repro.scenario.build.materialize`.  The CLI, the benchmark
harness, the oracle, the sweep driver, the replay scenarios, and the
Monte Carlo campaign runner all construct runs through this package —
never by assembling :class:`~repro.sim.network.SyncNetwork` populations
by hand (lint rule R502 fences the CLI and benchmarks).

Churn is declarative too: a :class:`~repro.scenario.spec.ChurnSpec`
names a seeded generator (:mod:`repro.scenario.churn`) that expands
into the engine's :class:`~repro.sim.membership.MembershipSchedule`.
"""

from repro.scenario.build import materialize, predict_population, run_spec
from repro.scenario.churn import CHURN_KINDS, build_membership, validate_schedule
from repro.scenario.registry import (
    PROTOCOLS,
    SAMPLED_PROTOCOLS,
    ProtocolEntry,
    alternating_inputs,
    get_protocol,
    index_inputs,
    resolve_inputs,
    supermajority_inputs,
)
from repro.scenario.spec import ChurnSpec, RunSpec

__all__ = [
    "CHURN_KINDS",
    "ChurnSpec",
    "PROTOCOLS",
    "ProtocolEntry",
    "RunSpec",
    "SAMPLED_PROTOCOLS",
    "alternating_inputs",
    "build_membership",
    "get_protocol",
    "index_inputs",
    "materialize",
    "predict_population",
    "resolve_inputs",
    "run_spec",
    "supermajority_inputs",
    "validate_schedule",
]
