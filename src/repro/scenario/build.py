"""Materialize a :class:`RunSpec` on the sync simulator.

``materialize`` is the one funnel through which every harness — CLI,
benchmarks, oracle, sweeps, replay scenarios, campaigns — turns a
declarative spec into a runnable :class:`~repro.sim.runner.Scenario`;
``run_spec`` runs it.  Keeping this the only construction path is what
makes a campaign's violating spec a complete, replayable artifact
(enforced by lint rule R502 for the CLI and benchmarks).
"""

from __future__ import annotations

from repro.adversary import build_strategy
from repro.errors import ConfigurationError
from repro.scenario.churn import build_membership
from repro.scenario.registry import ProtocolEntry, get_protocol, resolve_inputs
from repro.scenario.spec import RunSpec
from repro.sim.rng import make_rng, sparse_ids
from repro.sim.runner import Scenario, ScenarioResult, run_scenario
from repro.types import NodeId

__all__ = ["materialize", "predict_population", "run_spec"]


def predict_population(
    spec: RunSpec,
) -> tuple[list[NodeId], list[NodeId]]:
    """The (correct_ids, byzantine_ids) the runner will draw for *spec*.

    Mirrors :func:`repro.sim.runner.run_scenario`'s id assignment —
    sparse draw, deterministic interleaving shuffle — so churn
    generators (and tests) can name concrete ids before the run exists.
    """
    rng = make_rng(spec.seed)
    ids = sparse_ids(spec.n, rng, spec.id_space)
    shuffled = ids[:]
    rng.shuffle(shuffled)
    correct = spec.n - spec.f
    return sorted(shuffled[:correct]), sorted(shuffled[correct:])


def _wrapped_factory(spec: RunSpec, entry: ProtocolEntry, input_fn):
    """Zero-arg honest-protocol factory for wrapping strategies.

    Built from a *fresh* entry.build closure so stateful builders (the
    trb/rb sender capture) are independent of the honest population's;
    ``adversary_params["wrapped_index"]`` picks the index the wrapped
    protocol sees (e.g. -1 for an out-of-band equivocator opinion).
    """
    wrapped_index = int(spec.adversary_params.get("wrapped_index", 0))
    inner = entry.build(spec, input_fn)
    return lambda: inner(0, wrapped_index)


def materialize(spec: RunSpec) -> Scenario:
    """Resolve every name in *spec* and build the runnable Scenario."""
    spec.validate()
    entry = get_protocol(spec.protocol)
    if spec.variant not in entry.variants:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} has no {spec.variant!r} "
            f"variant; choose from {entry.variants}"
        )
    input_fn = resolve_inputs(spec.inputs or entry.default_inputs)
    protocol_factory = entry.build(spec, input_fn)

    strategy_factory = None
    if spec.f:
        strategy_params = {
            key: value
            for key, value in spec.adversary_params.items()
            if key != "wrapped_index"
        }
        strategy_factory = build_strategy(
            spec.adversary,
            protocol_factory=_wrapped_factory(spec, entry, input_fn),
            **strategy_params,
        )

    membership = None
    if spec.churn is not None:
        correct_ids, byz_ids = predict_population(spec)
        membership = build_membership(spec, entry, correct_ids, byz_ids)

    until_all_halted = (
        entry.until_all_halted
        if spec.until_all_halted is None
        else spec.until_all_halted
    )
    return Scenario(
        correct=spec.n - spec.f,
        byzantine=spec.f,
        protocol_factory=protocol_factory,
        strategy_factory=strategy_factory,
        seed=spec.seed,
        rushing=spec.rushing,
        max_rounds=spec.max_rounds,
        until_all_halted=until_all_halted,
        membership=membership,
        id_space=spec.id_space,
        enforce_resiliency=spec.enforce_resiliency,
    )


def run_spec(spec: RunSpec, *, bus=None) -> ScenarioResult:
    """Materialize and run *spec* (see :func:`repro.sim.runner.run_scenario`)."""
    return run_scenario(materialize(spec), bus=bus)
