"""Name resolution: protocols, variants, and input assignments.

A :class:`RunSpec` names its protocol and input assignment; this module
maps those names onto the concrete factories the simulator needs.  Each
:class:`ProtocolEntry` knows how to build the per-node protocol from a
spec, which run-loop stop condition the protocol wants, which variants
exist, and — for dynamic protocols — how to build a mid-run joiner
(churn generators refuse protocols without a ``joiner``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from repro.core import (
    ApproximateAgreement,
    BinaryKingConsensus,
    ByzantineRenaming,
    CommitteeConsensus,
    CommitteeParallelConsensus,
    EarlyConsensus,
    InteractiveConsistency,
    ParallelConsensus,
    ReliableBroadcast,
    RotorCoordinator,
    TerminatingReliableBroadcast,
)
from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.errors import ConfigurationError
from repro.sim.runner import ProtocolFactory
from repro.types import NodeId, Round

#: (node_id, index among correct nodes) -> that node's input value.
InputFn = Callable[[NodeId, int], Hashable]

__all__ = [
    "InputFn",
    "PROTOCOLS",
    "ProtocolEntry",
    "alternating_inputs",
    "get_protocol",
    "index_inputs",
    "resolve_inputs",
    "supermajority_inputs",
]


# ---------------------------------------------------------------------------
# Input assignments
# ---------------------------------------------------------------------------
def alternating_inputs(nid: NodeId, index: int) -> Hashable:
    """A worst-case near-even binary split.

    Useful for *internal* agreement checks, but not for oracle
    comparison: with no supermajority, both 0 and 1 are valid outcomes
    and the full-broadcast and committee runs — different executions
    over different memberships — may legitimately resolve differently.
    """
    return index % 2


def supermajority_inputs(nid: NodeId, index: int) -> Hashable:
    """A 7:1 biased binary split.

    When ≥ 2/3 of a (sub)population holds the same input, Algorithm 3
    terminates on it in its first phase — validity pins the outcome, so
    an oracle and a sampled run *must* produce the same value and
    comparing them is meaningful.  The 7:1 margin keeps a sampled
    committee's own majority fraction above 2/3 with overwhelming
    probability (≈ 6σ at c ≈ 100), and the run still exercises both
    values on the wire.
    """
    return 0 if index % 8 else 1


def index_inputs(nid: NodeId, index: int) -> Hashable:
    """Every node inputs its own index — all-distinct values."""
    return index


_INPUT_ASSIGNMENTS: dict[str, InputFn] = {
    "alternating": alternating_inputs,
    "supermajority": supermajority_inputs,
    "index": index_inputs,
}


def resolve_inputs(name: str) -> InputFn:
    """Map an input-assignment name to its ``(nid, index) -> value`` fn.

    ``constant:<json>`` assigns the parsed JSON value to every node,
    e.g. ``constant:0`` or ``constant:"spam"``.
    """
    if name.startswith("constant:"):
        try:
            value = json.loads(name.split(":", 1)[1])
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"bad constant input assignment {name!r}: {exc}"
            ) from exc
        return lambda nid, index: value
    try:
        return _INPUT_ASSIGNMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown input assignment {name!r}; known: "
            f"{sorted(_INPUT_ASSIGNMENTS)} or 'constant:<json>'"
        ) from None


# ---------------------------------------------------------------------------
# Protocol entries
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ProtocolEntry:
    """Everything the builder needs to know about one protocol name."""

    name: str
    #: (spec, input_fn) -> the Scenario protocol factory.
    build: Callable[[Any, InputFn], ProtocolFactory]
    default_inputs: str = "alternating"
    until_all_halted: bool = True
    variants: tuple[str, ...] = ("full",)
    #: (spec, node_id, join_round) -> zero-arg factory for a mid-run
    #: joiner; None means the protocol has no join handshake and churn
    #: schedules cannot target it.
    joiner: Callable[[Any, NodeId, Round], Callable[[], Any]] | None = None


def _consensus_build(spec, input_fn: InputFn) -> ProtocolFactory:
    if spec.variant == "sampled":
        return lambda nid, i: CommitteeConsensus(
            input_fn(nid, i), sampling_seed=spec.seed
        )
    return lambda nid, i: EarlyConsensus(input_fn(nid, i))


def _binary_consensus_build(spec, input_fn: InputFn) -> ProtocolFactory:
    return lambda nid, i: BinaryKingConsensus(input_fn(nid, i))


def _rotor_build(spec, input_fn: InputFn) -> ProtocolFactory:
    return lambda nid, i: RotorCoordinator(opinion=input_fn(nid, i))


def _approx_build(spec, input_fn: InputFn) -> ProtocolFactory:
    return lambda nid, i: ApproximateAgreement(float(input_fn(nid, i)))


def _renaming_build(spec, input_fn: InputFn) -> ProtocolFactory:
    return lambda nid, i: ByzantineRenaming()


def _parallel_build(spec, input_fn: InputFn) -> ProtocolFactory:
    if spec.variant == "sampled":
        return lambda nid, i: CommitteeParallelConsensus(
            {"k": input_fn(nid, i)}, sampling_seed=spec.seed
        )
    return lambda nid, i: ParallelConsensus({"k": input_fn(nid, i)})


def _interactive_consistency_build(spec, input_fn: InputFn) -> ProtocolFactory:
    return lambda nid, i: InteractiveConsistency(input_fn(nid, i))


def _trb_build(spec, input_fn: InputFn) -> ProtocolFactory:
    payload = spec.protocol_params.get("payload", "payload")
    # Index 0's node acts as the designated sender; the factory is
    # called in index order, so the first call fixes the sender id.
    sender: list[NodeId] = []

    def build(nid: NodeId, i: int):
        if i == 0:
            sender.append(nid)
        return TerminatingReliableBroadcast(
            sender[0], payload if i == 0 else None
        )

    return build


def _reliable_broadcast_build(spec, input_fn: InputFn) -> ProtocolFactory:
    payload = spec.protocol_params.get("payload", "payload")
    sender: list[NodeId] = []

    def build(nid: NodeId, i: int):
        if i == 0:
            sender.append(nid)
        return ReliableBroadcast(sender[0], payload if i == 0 else None)

    return build


def _total_order_event_plan(spec, index: int) -> dict[int, Hashable]:
    params = spec.protocol_params
    first = int(params.get("event_first", 2))
    last = int(params.get("event_last", 60))
    every = int(params.get("event_every", 5))
    if every <= 0:
        return {}
    return {r: f"e{index}@{r}" for r in range(first, last, every)}


def _total_order_build(spec, input_fn: InputFn) -> ProtocolFactory:
    params = spec.protocol_params
    leavers = int(params.get("leavers", 0))
    leave_base = int(params.get("leave_base", 30))
    leave_step = int(params.get("leave_step", 5))

    def build(nid: NodeId, i: int):
        node = TotalOrderNode(
            event_source=events_from_dict(_total_order_event_plan(spec, i))
        )
        if i < leavers:
            node.leave_at = leave_base + leave_step * i
        return node

    return build


def _total_order_joiner(spec, node_id: NodeId, round_no: Round):
    params = spec.protocol_params
    plan: dict[int, Hashable] = {}
    if params.get("joiner_events"):
        first = int(params.get("event_first", 2))
        last = int(params.get("event_last", 60))
        every = int(params.get("event_every", 5))
        if every > 0:
            plan = {
                r: f"j{node_id}@{r}" for r in range(first, last, every)
            }
    return lambda: TotalOrderNode(
        event_source=events_from_dict(plan), seed=False
    )


_ENTRIES: dict[str, ProtocolEntry] = {
    entry.name: entry
    for entry in (
        ProtocolEntry(
            "consensus", _consensus_build, variants=("full", "sampled")
        ),
        ProtocolEntry("binary-consensus", _binary_consensus_build),
        ProtocolEntry("rotor", _rotor_build, default_inputs="index"),
        ProtocolEntry("approx", _approx_build, default_inputs="index"),
        ProtocolEntry("renaming", _renaming_build),
        ProtocolEntry(
            "parallel", _parallel_build, variants=("full", "sampled")
        ),
        ProtocolEntry(
            "interactive-consistency",
            _interactive_consistency_build,
            default_inputs="index",
        ),
        ProtocolEntry("trb", _trb_build),
        ProtocolEntry(
            "reliable-broadcast",
            _reliable_broadcast_build,
            until_all_halted=False,
        ),
        ProtocolEntry(
            "total-order",
            _total_order_build,
            until_all_halted=False,
            joiner=_total_order_joiner,
        ),
    )
}

#: Every registered protocol name, in registration order.
PROTOCOLS: tuple[str, ...] = tuple(_ENTRIES)

#: Protocols with a committee-sampled variant.
SAMPLED_PROTOCOLS: tuple[str, ...] = tuple(
    name for name, entry in _ENTRIES.items() if "sampled" in entry.variants
)


def get_protocol(name: str) -> ProtocolEntry:
    try:
        return _ENTRIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; known: {', '.join(PROTOCOLS)}"
        ) from None
