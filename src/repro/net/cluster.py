"""In-process localhost clusters for the net runtime.

Spins up one :class:`~repro.net.peer.NetPeer` +
:class:`~repro.net.runner.LockstepRunner` pair per node on ephemeral
ports, shares the address book, aligns the start instant, and waits for
the protocols to decide.  Used by the integration tests and the
``net_cluster`` example; real deployments would run one peer per host
with the same classes.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.net.peer import NetPeer
from repro.net.runner import LockstepRunner
from repro.sim.node import Protocol
from repro.sim.rng import make_rng, sparse_ids
from repro.types import NodeId


class LocalCluster:
    """A localhost cluster of lock-step protocol runners.

    With ``byzantine > 0`` and a ``strategy_factory``, the last
    ``byzantine`` ids run simulator-style Byzantine strategies over TCP
    via :class:`~repro.net.byzantine.ByzantineRunner` — the net
    counterpart of :class:`repro.sim.runner.Scenario`.

    Pass ``bus`` (an :class:`~repro.obs.bus.EventBus`) to observe every
    correct runner on one shared event stream; runners publish from
    their own threads, so attach subscribers before :meth:`run`.
    """

    def __init__(
        self,
        count: int,
        protocol_factory: Callable[[NodeId, int], Protocol],
        period: float = 0.05,
        max_rounds: int = 120,
        seed: int = 0,
        byzantine: int = 0,
        strategy_factory: Callable[[NodeId, int], object] | None = None,
        bus=None,
    ):
        from repro.errors import ConfigurationError
        from repro.net.byzantine import ByzantineRunner

        if byzantine and strategy_factory is None:
            raise ConfigurationError(
                "byzantine > 0 requires a strategy_factory"
            )
        rng = make_rng(seed)
        self.node_ids = sparse_ids(count + byzantine, rng)
        correct_ids = self.node_ids[:count]
        byzantine_ids = self.node_ids[count:]
        self.correct_ids = list(correct_ids)
        self.byzantine_ids = list(byzantine_ids)
        self.peers: dict[NodeId, NetPeer] = {}
        self.runners: dict[NodeId, LockstepRunner] = {}
        self.byzantine_runners: dict[NodeId, ByzantineRunner] = {}
        self.protocols: dict[NodeId, Protocol] = {}
        for index, node_id in enumerate(correct_ids):
            peer = NetPeer(node_id)
            protocol = protocol_factory(node_id, index)
            self.peers[node_id] = peer
            self.protocols[node_id] = protocol
            self.runners[node_id] = LockstepRunner(
                peer, protocol, period=period, max_rounds=max_rounds,
                bus=bus,
            )
        for index, node_id in enumerate(byzantine_ids):
            peer = NetPeer(node_id)
            self.peers[node_id] = peer
            self.byzantine_runners[node_id] = ByzantineRunner(
                peer,
                strategy_factory(node_id, index),
                correct_ids=frozenset(correct_ids),
                period=period,
                max_rounds=max_rounds,
                seed=seed + index,
            )

    def run(self, timeout: float = 30.0) -> dict[NodeId, object]:
        """Start everyone, wait for decisions (or timeout), tear down."""
        address_book = [peer.address for peer in self.peers.values()]
        for peer in self.peers.values():
            peer.start(address_book)
        # A shared start instant comfortably in the future, so every
        # runner begins round 1 together.
        start = time.monotonic() + 0.2
        for runner in self.runners.values():
            runner.start(start)
        for runner in self.byzantine_runners.values():
            runner.start(start)
        deadline = time.monotonic() + timeout
        try:
            while time.monotonic() < deadline:
                if all(p.halted for p in self.protocols.values()):
                    break
                time.sleep(0.02)
            return self.outputs()
        finally:
            for runner in self.runners.values():
                runner.join(timeout=1.0)
            for peer in self.peers.values():
                peer.stop()

    def outputs(self) -> dict[NodeId, object]:
        return {
            node_id: protocol.output
            for node_id, protocol in self.protocols.items()
            if protocol.halted
        }
