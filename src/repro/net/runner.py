"""The lock-step round driver.

Realises the synchronous model on a network with delay bound well under
the round period Δ: all runners share a start instant; round ``r``'s
computation happens at ``start + r·Δ``, consuming the messages stamped
``r - 1`` that arrived in the meantime.  The driven
:class:`~repro.sim.node.Protocol` is exactly the class the simulator
runs — none of the paper's algorithms know which runtime they are on.
"""

from __future__ import annotations

import threading
import time

from repro.net.peer import NetPeer
from repro.sim.inbox import Inbox
from repro.sim.message import BROADCAST, Message, Outbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId


class LockstepRunner:
    """Drives one protocol instance over one peer, one round per Δ."""

    def __init__(
        self,
        peer: NetPeer,
        protocol: Protocol,
        period: float = 0.05,
        max_rounds: int = 120,
    ):
        self.peer = peer
        self.protocol = protocol
        self.period = period
        self.max_rounds = max_rounds
        self.round = 0
        self.contacts: set[NodeId] = set()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def run(self, start_time: float) -> None:
        """Blocking round loop (call :meth:`start` for the threaded form)."""
        while self.round < self.max_rounds and not self.protocol.halted:
            self.round += 1
            deadline = start_time + self.round * self.period
            delay = deadline - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._execute_round()

    def start(self, start_time: float) -> None:
        self._thread = threading.Thread(
            target=self.run,
            args=(start_time,),
            name=f"runner-{self.peer.node_id}",
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    def _execute_round(self) -> None:
        frames = self.peer.take_round(self.round - 1)
        messages = []
        seen = set()
        for frame in frames:
            message = Message(
                sender=frame["sender"],
                kind=frame["kind"],
                payload=frame["payload"],
                instance=frame["instance"],
            )
            if message in seen:  # the model's per-round duplicate rule
                continue
            seen.add(message)
            messages.append(message)
        inbox = Inbox(messages)
        self.contacts.update(m.sender for m in inbox)

        outbox = Outbox()
        api = NodeApi(
            node_id=self.peer.node_id,
            round_no=self.round,
            known_contacts=frozenset(self.contacts),
            outbox=outbox,
            trace_sink=None,
        )
        self.protocol.on_round(api, inbox)
        for send in outbox:
            if send.dest is BROADCAST:
                self.peer.broadcast(
                    self.round, send.kind, send.payload, send.instance
                )
            else:
                self.peer.send_to(
                    send.dest,
                    self.round,
                    send.kind,
                    send.payload,
                    send.instance,
                )
