"""The lock-step round driver.

Realises the synchronous model on a network with delay bound well under
the round period Δ: all runners share a start instant; round ``r``'s
computation happens at ``start + r·Δ``, consuming the messages stamped
``r - 1`` that arrived in the meantime.  The driven
:class:`~repro.sim.node.Protocol` is exactly the class the simulator
runs — none of the paper's algorithms know which runtime they are on.

Each runner publishes the same :mod:`repro.obs` events the simulator
does — round lifecycle, sends, deliveries, protocol events — onto its
:class:`~repro.obs.bus.EventBus` (pass a shared bus to observe a whole
cluster on one stream).  By default the bus has no subscribers, so
emission costs one ``None`` check per site.

Frames stamped outside the runner's round window — already consumed, or
further ahead than any honest peer sharing the start instant could be —
are dropped at the inbox rather than queued at face value, and surface
as ``drop`` events (see :meth:`~repro.net.peer.NetPeer.take_round`).
"""

from __future__ import annotations

import threading
import time

from repro.net.peer import NetPeer
from repro.obs.bus import EventBus
from repro.obs.events import (
    FramesDropped,
    InboxDelivered,
    MessageSent,
    ProtocolEvent,
    RoundEnded,
    RoundStarted,
    RunStarted,
)
from repro.sim.inbox import Inbox
from repro.sim.message import BROADCAST, Message, Outbox, expand_sends
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId


class LockstepRunner:
    """Drives one protocol instance over one peer, one round per Δ."""

    def __init__(
        self,
        peer: NetPeer,
        protocol: Protocol,
        period: float = 0.05,
        max_rounds: int = 120,
        bus: EventBus | None = None,
    ):
        self.peer = peer
        self.protocol = protocol
        self.period = period
        self.max_rounds = max_rounds
        self.round = 0
        self.contacts: set[NodeId] = set()
        self.bus = bus if bus is not None else EventBus()
        #: Frames this runner's peer discarded as outside the round
        #: window (mirrors the ``drop`` events).
        self.frames_dropped = 0
        self._thread: threading.Thread | None = None
        self._bus_version = -1
        self._emit_round_start = None
        self._emit_round_end = None
        self._emit_send = None
        self._emit_deliver = None
        self._emit_drop = None
        self._protocol_sink = None

    # ------------------------------------------------------------------
    def run(self, start_time: float) -> None:
        """Blocking round loop (call :meth:`start` for the threaded form)."""
        run_start = self.bus.sink(RunStarted.topic)
        if run_start is not None:
            run_start(RunStarted("net"))
        while self.round < self.max_rounds and not self.protocol.halted:
            self.round += 1
            deadline = start_time + self.round * self.period
            delay = deadline - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._execute_round()

    def start(self, start_time: float) -> None:
        self._thread = threading.Thread(
            target=self.run,
            args=(start_time,),
            name=f"runner-{self.peer.node_id}",
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    # ------------------------------------------------------------------
    def _refresh_sinks(self) -> None:
        bus = self.bus
        self._bus_version = bus.version
        self._emit_round_start = bus.sink(RoundStarted.topic)
        self._emit_round_end = bus.sink(RoundEnded.topic)
        self._emit_send = bus.sink(MessageSent.topic)
        self._emit_deliver = bus.sink(InboxDelivered.topic)
        self._emit_drop = bus.sink(FramesDropped.topic)
        sink = bus.sink(ProtocolEvent.topic)
        if sink is None:
            self._protocol_sink = None
        else:
            def protocol_sink(round_no, node, event, detail, _sink=sink):
                _sink(ProtocolEvent(round_no, node, event, dict(detail)))

            self._protocol_sink = protocol_sink

    def _execute_round(self) -> None:
        if self.bus.version != self._bus_version:
            self._refresh_sinks()
        round_no = self.round
        node_id = self.peer.node_id
        if self._emit_round_start is not None:
            self._emit_round_start(RoundStarted(round_no))

        # Consume round r-1; honest in-flight stamps are r-1..r+1, so
        # anything beyond r+1 (or already consumed) is purged and
        # counted instead of queued at face value.
        dropped_before = self.peer.frames_dropped
        frames = self.peer.take_round(round_no - 1, max_round=round_no + 1)
        dropped = self.peer.frames_dropped - dropped_before
        if dropped:
            self.frames_dropped += dropped
            if self._emit_drop is not None:
                self._emit_drop(
                    FramesDropped(
                        round_no, node_id, dropped, "outside-round-window"
                    )
                )

        messages = []
        seen = set()
        for frame in frames:
            message = Message(
                sender=frame["sender"],
                kind=frame["kind"],
                payload=frame["payload"],
                instance=frame["instance"],
            )
            if message in seen:  # the model's per-round duplicate rule
                continue
            seen.add(message)
            messages.append(message)
        inbox = Inbox(messages)
        self.contacts.update(m.sender for m in inbox)
        if messages and self._emit_deliver is not None:
            self._emit_deliver(
                InboxDelivered(round_no, node_id, tuple(messages))
            )

        outbox = Outbox()
        api = NodeApi(
            node_id=node_id,
            round_no=round_no,
            known_contacts=frozenset(self.contacts),
            outbox=outbox,
            trace_sink=self._protocol_sink,
        )
        self.protocol.on_round(api, inbox)
        emit_send = self._emit_send
        # The net runtime has per-message frames, no staging plane:
        # batched fan-outs expand back to scalar sends at the wire.
        for send in expand_sends(outbox):
            if send.dest is BROADCAST:
                self.peer.broadcast(
                    round_no, send.kind, send.payload, send.instance
                )
            else:
                self.peer.send_to(
                    send.dest,
                    round_no,
                    send.kind,
                    send.payload,
                    send.instance,
                )
            if emit_send is not None:
                emit_send(
                    MessageSent(
                        round_no,
                        node_id,
                        send.kind,
                        send.payload,
                        send.instance,
                        None if send.dest is BROADCAST else send.dest,
                    )
                )
        if self._emit_round_end is not None:
            self._emit_round_end(RoundEnded(round_no))
