"""Running Byzantine strategies over the TCP runtime.

The simulator's adversaries work from an
:class:`~repro.sim.network.AdversaryView`; this adapter builds an
equivalent view from a peer's real inbox so the same strategy classes
can attack a TCP cluster.  Two capabilities shrink on a real network:

* omniscience — `all_nodes` is the transport address book rather than
  true knowledge of the population (on a broadcast domain these
  coincide);
* rushing — real networks do not let a node read others' traffic before
  sending; `correct_traffic` is always empty here.

Both weaken the adversary, never the protocols, so TCP runs remain a
fair (if softer) testbed; worst-case adversarial results belong to the
simulator.
"""

from __future__ import annotations

import threading
import time

from repro.net.peer import NetPeer
from repro.sim.inbox import Inbox
from repro.sim.message import BROADCAST, Message, expand_sends
from repro.sim.network import AdversaryView
from repro.sim.rng import make_rng
from repro.types import NodeId


class ByzantineRunner:
    """Drives a :class:`~repro.adversary.ByzantineStrategy` over a peer."""

    def __init__(
        self,
        peer: NetPeer,
        strategy,
        correct_ids: frozenset[NodeId],
        period: float = 0.05,
        max_rounds: int = 120,
        seed: int = 0,
    ):
        self.peer = peer
        self.strategy = strategy
        self.correct_ids = frozenset(correct_ids)
        self.period = period
        self.max_rounds = max_rounds
        self.round = 0
        self._rng = make_rng(seed)
        self._thread: threading.Thread | None = None

    def run(self, start_time: float) -> None:
        while self.round < self.max_rounds:
            self.round += 1
            deadline = start_time + self.round * self.period
            delay = deadline - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            self._execute_round()

    def start(self, start_time: float) -> None:
        self._thread = threading.Thread(
            target=self.run,
            args=(start_time,),
            name=f"byz-runner-{self.peer.node_id}",
            daemon=True,
        )
        self._thread.start()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def _execute_round(self) -> None:
        frames = self.peer.take_round(self.round - 1)
        inbox = Inbox(
            Message(
                sender=f["sender"],
                kind=f["kind"],
                payload=f["payload"],
                instance=f["instance"],
            )
            for f in frames
        )
        all_nodes = frozenset(self.peer._peers)
        view = AdversaryView(
            node_id=self.peer.node_id,
            round=self.round,
            inbox=inbox,
            all_nodes=all_nodes,
            correct_nodes=self.correct_ids & all_nodes,
            byzantine_nodes=all_nodes - self.correct_ids,
            rng=self._rng,
            correct_traffic=(),  # no rushing on a real network
        )
        for send in expand_sends(self.strategy.on_round(view)):
            if send.dest is BROADCAST:
                self.peer.broadcast(
                    self.round, send.kind, send.payload, send.instance
                )
            else:
                self.peer.send_to(
                    send.dest,
                    self.round,
                    send.kind,
                    send.payload,
                    send.instance,
                )
