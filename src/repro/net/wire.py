"""Wire format: length-prefixed JSON frames with a faithful value codec.

Protocol payloads are built from literals — numbers, strings, None,
tuples, and the ``⊥`` marker — but JSON alone cannot round-trip tuples
(protocols rely on hashability and equality of what they sent).  The
codec tags non-JSON-native values::

    (1, "a")      ->  {"__tuple__": [1, "a"]}
    BOTTOM        ->  {"__bottom__": true}
    frozenset(..) ->  {"__frozenset__": [...]}

Frames are ``<4-byte big-endian length><utf-8 json>``; the JSON object
carries ``round``, ``sender``, ``kind``, ``payload``, ``instance``.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.errors import ProtocolViolation
from repro.types import BOTTOM, is_bottom

_LENGTH = struct.Struct(">I")

#: Refuse frames beyond this size (a malformed or malicious peer must
#: not make us allocate unboundedly).
MAX_FRAME_BYTES = 1 << 20


def encode_value(value: Any) -> Any:
    """Make *value* JSON-representable, reversibly."""
    if is_bottom(value):
        return {"__bottom__": True}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {
            "__frozenset__": sorted(
                (encode_value(v) for v in value), key=repr
            )
        }
    if isinstance(value, (list, set)):
        raise ProtocolViolation(
            f"unhashable payload {value!r} cannot go on the wire"
        )
    if isinstance(value, dict):
        raise ProtocolViolation(
            f"dict payload {value!r} is not hashable; send tuples"
        )
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if value.get("__bottom__"):
            return BOTTOM
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__frozenset__" in value:
            return frozenset(
                decode_value(v) for v in value["__frozenset__"]
            )
    return value


def encode_frame(
    round_no: int,
    sender: int,
    kind: str,
    payload: Any = None,
    instance: Any = None,
) -> bytes:
    """Serialize one message to its wire frame."""
    body = json.dumps(
        {
            "round": round_no,
            "sender": sender,
            "kind": kind,
            "payload": encode_value(payload),
            "instance": encode_value(instance),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolViolation(f"frame too large: {len(body)} bytes")
    return _LENGTH.pack(len(body)) + body


def decode_frame(body: bytes) -> dict:
    """Parse a frame body (without the length prefix).

    Returns a dict with ``round``, ``sender``, ``kind``, ``payload``,
    ``instance``; raises ``ValueError`` on malformed input.
    """
    data = json.loads(body.decode("utf-8"))
    if not isinstance(data, dict):
        raise ValueError("frame body is not an object")
    for key in ("round", "sender", "kind"):
        if key not in data:
            raise ValueError(f"frame missing {key!r}")
    return {
        "round": int(data["round"]),
        "sender": int(data["sender"]),
        "kind": str(data["kind"]),
        "payload": decode_value(data.get("payload")),
        "instance": decode_value(data.get("instance")),
    }


def read_exactly(sock, count: int) -> bytes | None:
    """Read exactly *count* bytes from a socket (None on EOF)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> dict | None:
    """Read one frame from a socket (None on clean EOF)."""
    header = read_exactly(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ValueError(f"frame length {length} exceeds limit")
    body = read_exactly(sock, length)
    if body is None:
        return None
    return decode_frame(body)
