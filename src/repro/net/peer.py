"""A threaded TCP peer.

Each peer runs a listening socket plus one reader thread per inbound
connection; outbound messages open (and cache) one connection per
destination.  Received frames land in a thread-safe queue keyed by their
round stamp; the lock-step runner drains them at round boundaries.

Failure handling is deliberately blunt: a peer that cannot be reached is
simply skipped (in the Byzantine model a dead peer is just a faulty
node), and malformed frames close the offending connection.

Security note: frames carry a sender stamp that this demonstration
runtime takes at face value.  The id-only model requires unforgeable
sender identities; a deployment gets them from the transport (TLS with
client certificates, or per-link MACs), which is orthogonal to the
protocol logic and out of scope here.  The simulator, by contrast,
enforces stamping structurally and is where adversarial experiments run.
"""

from __future__ import annotations

import socket
import threading
from collections import defaultdict
from dataclasses import dataclass

from repro.net.wire import encode_frame, read_frame
from repro.types import NodeId


@dataclass(frozen=True)
class PeerAddress:
    """Transport-level addressing: (node id, host, port).

    The address book is the broadcast domain, not protocol knowledge —
    protocols never see it.
    """

    node_id: NodeId
    host: str
    port: int


class NetPeer:
    """One node's network endpoint."""

    def __init__(self, node_id: NodeId, host: str = "127.0.0.1", port: int = 0):
        self.node_id = node_id
        self._server = socket.create_server((host, port))
        self._server.settimeout(0.2)
        self.host, self.port = self._server.getsockname()
        self._peers: dict[NodeId, PeerAddress] = {}
        self._outbound: dict[NodeId, socket.socket] = {}
        self._inbox_lock = threading.Lock()
        self._by_round: dict[int, list[dict]] = defaultdict(list)
        self._running = threading.Event()
        self._threads: list[threading.Thread] = []
        self.frames_received = 0
        self.frames_dropped = 0

    @property
    def address(self) -> PeerAddress:
        return PeerAddress(self.node_id, self.host, self.port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, address_book: list[PeerAddress]) -> None:
        """Learn the broadcast domain and begin accepting connections."""
        self._peers = {a.node_id: a for a in address_book}
        self._running.set()
        acceptor = threading.Thread(
            target=self._accept_loop, name=f"peer-{self.node_id}-accept",
            daemon=True,
        )
        acceptor.start()
        self._threads.append(acceptor)

    def stop(self) -> None:
        self._running.clear()
        try:
            self._server.close()
        except OSError:
            pass
        for sock in self._outbound.values():
            try:
                sock.close()
            except OSError:
                pass
        self._outbound.clear()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            reader = threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"peer-{self.node_id}-read",
                daemon=True,
            )
            reader.start()
            self._threads.append(reader)

    def _read_loop(self, conn: socket.socket) -> None:
        with conn:
            while self._running.is_set():
                try:
                    frame = read_frame(conn)
                except (ValueError, OSError):
                    return  # malformed or broken: drop the connection
                if frame is None:
                    return
                with self._inbox_lock:
                    self.frames_received += 1
                    self._by_round[frame["round"]].append(frame)

    def take_round(
        self, round_no: int, max_round: int | None = None
    ) -> list[dict]:
        """Drain all frames stamped with *round_no*.

        Also purges (counting them in :attr:`frames_dropped`) frames
        from already-consumed rounds (``< round_no``) and — when
        *max_round* is given — frames stamped further ahead than any
        honest peer could be (``> max_round``): with a shared start
        instant, a peer is at most one round ahead of the caller, so a
        farther-future stamp is forged or corrupt and must not sit in
        the queue waiting to be consumed at face value later.
        """
        with self._inbox_lock:
            frames = self._by_round.pop(round_no, [])
            if max_round is None:
                bogus = [r for r in self._by_round if r < round_no]
            else:
                bogus = [
                    r
                    for r in self._by_round
                    if r < round_no or r > max_round
                ]
            for r in bogus:
                self.frames_dropped += len(self._by_round.pop(r))
        return frames

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _connection_to(self, node_id: NodeId) -> socket.socket | None:
        sock = self._outbound.get(node_id)
        if sock is not None:
            return sock
        address = self._peers.get(node_id)
        if address is None:
            return None
        try:
            sock = socket.create_connection(
                (address.host, address.port), timeout=1.0
            )
        except OSError:
            return None
        self._outbound[node_id] = sock
        return sock

    def send_to(
        self,
        dest: NodeId,
        round_no: int,
        kind: str,
        payload=None,
        instance=None,
    ) -> bool:
        """Send one message; False when the destination is unreachable."""
        if dest == self.node_id:
            # Loopback without touching the network (self-delivery).
            with self._inbox_lock:
                self.frames_received += 1
                self._by_round[round_no].append(
                    {
                        "round": round_no,
                        "sender": self.node_id,
                        "kind": kind,
                        "payload": payload,
                        "instance": instance,
                    }
                )
            return True
        sock = self._connection_to(dest)
        if sock is None:
            return False
        frame = encode_frame(round_no, self.node_id, kind, payload, instance)
        try:
            sock.sendall(frame)
            return True
        except OSError:
            self._outbound.pop(dest, None)
            try:
                sock.close()
            except OSError:
                pass
            return False

    def broadcast(
        self, round_no: int, kind: str, payload=None, instance=None
    ) -> int:
        """Send to every address in the domain (including self)."""
        delivered = 0
        for node_id in sorted(self._peers):
            delivered += self.send_to(
                node_id, round_no, kind, payload, instance
            )
        return delivered
