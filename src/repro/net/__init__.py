"""A real-network runtime for the same protocols.

Everything in :mod:`repro.core` is written against the tiny
:class:`~repro.sim.node.Protocol` / :class:`~repro.sim.node.NodeApi`
interface.  This package provides a second implementation of that
interface over actual TCP sockets, with lock-step rounds paced by a
shared wall-clock period Δ — the textbook way to realise a synchronous
round model on a network whose delays are bounded by Δ.

The protocols run **unchanged**: a node still knows only its own id; the
address book peers bootstrap from is transport-level plumbing (the
moral equivalent of an IP broadcast domain), not protocol knowledge —
``n`` never reaches the algorithm, and peers may be absent, silent, or
Byzantine without any configuration change.

Components:

* :mod:`~repro.net.wire` — length-prefixed JSON framing with a faithful
  payload codec (tuples, ``⊥``, and nested structures round-trip);
* :mod:`~repro.net.peer` — a threaded TCP peer (server + outbound
  connections + per-connection readers);
* :mod:`~repro.net.runner` — the lock-step driver executing one
  :class:`~repro.sim.node.Protocol` round per Δ tick;
* :mod:`~repro.net.cluster` — convenience for spinning up a localhost
  cluster in-process (used by the integration tests and examples).

This runtime trades the simulator's determinism for reality: runs are
timing-dependent, so experiments belong on :mod:`repro.sim`; the net
runtime exists to demonstrate deployment-shaped operation.
"""

from repro.net.byzantine import ByzantineRunner
from repro.net.cluster import LocalCluster
from repro.net.peer import NetPeer, PeerAddress
from repro.net.runner import LockstepRunner
from repro.net.wire import decode_frame, decode_value, encode_frame, encode_value

__all__ = [
    "ByzantineRunner",
    "LocalCluster",
    "LockstepRunner",
    "NetPeer",
    "PeerAddress",
    "decode_frame",
    "decode_value",
    "encode_frame",
    "encode_value",
]
