"""Oracle checks: sampled consensus must match full-broadcast consensus.

The committee-sampled variants (:mod:`repro.core.implicit_agreement`)
trade the all-broadcast O(n²) traffic for a polylog committee plus an
outcome-dissemination phase.  That is only an *optimisation* if, on the
same population and the same seed, every correct node ends up with the
decision the classical protocol would have produced.  This module runs
both side by side — the full-broadcast :class:`~repro.core.EarlyConsensus`
as the oracle, :class:`~repro.core.CommitteeConsensus` as the candidate —
under a live :class:`~repro.analysis.monitor.AgreementMonitor`, and
reports per-seed verdicts.

Outcome equality is only a theorem when validity pins the outcome —
hence the :func:`supermajority_inputs` default (see its docstring).
Under a near-even split both values are valid and the two protocols may
legitimately resolve differently; that regime is still covered by each
run's *internal* agreement monitor, just not by cross-run equality.

The benchmark harness (``benchmarks/bench_engine.py --agreement-seeds``)
and the integration tests both go through :func:`check_sampled_agreement`
so "sampled agrees with the oracle on >= 50 seeds" is one shared,
committed check rather than two drifting ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.analysis.monitor import AgreementMonitor
from repro.core.consensus import EarlyConsensus
from repro.core.implicit_agreement import CommitteeConsensus
from repro.obs.bus import EventBus
from repro.sim.runner import Scenario, run_scenario
from repro.types import NodeId


def alternating_inputs(nid: NodeId, index: int) -> Hashable:
    """A worst-case near-even binary split.

    Useful for *internal* agreement checks, but not for oracle
    comparison: with no supermajority, both 0 and 1 are valid outcomes
    and the full-broadcast and committee runs — different executions
    over different memberships — may legitimately resolve differently.
    """
    return index % 2


def supermajority_inputs(nid: NodeId, index: int) -> Hashable:
    """Default input assignment: a 7:1 biased binary split.

    When ≥ 2/3 of a (sub)population holds the same input, Algorithm 3
    terminates on it in its first phase — validity pins the outcome, so
    the oracle and the sampled run *must* produce the same value and
    comparing them is meaningful.  The 7:1 margin keeps the sampled
    committee's own majority fraction above 2/3 with overwhelming
    probability (≈ 6σ at c ≈ 100), and the run still exercises both
    values on the wire.
    """
    return 0 if index % 8 else 1


@dataclass(slots=True)
class OracleVerdict:
    """One seed's comparison between sampled and full-broadcast runs."""

    seed: int
    oracle_outcome: Hashable
    sampled_outcome: Hashable
    sampled_rounds: int
    oracle_sends: int
    sampled_sends: int

    @property
    def agree(self) -> bool:
        return self.sampled_outcome == self.oracle_outcome


@dataclass(slots=True)
class OracleReport:
    """Aggregate of :func:`check_sampled_agreement` over many seeds."""

    population: int
    verdicts: tuple[OracleVerdict, ...]

    @property
    def seeds_checked(self) -> int:
        return len(self.verdicts)

    @property
    def disagreements(self) -> tuple[OracleVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.agree)

    @property
    def all_agree(self) -> bool:
        return not self.disagreements

    def summary(self) -> dict:
        return {
            "population": self.population,
            "seeds_checked": self.seeds_checked,
            "all_agree": self.all_agree,
            "disagreements": [v.seed for v in self.disagreements],
        }


def _single_outcome(outputs: dict) -> Hashable:
    values = set(outputs.values())
    if len(values) != 1:  # pragma: no cover - monitor raises first
        raise AssertionError(f"run did not agree internally: {values!r}")
    return values.pop()


def compare_with_oracle(
    population: int,
    seed: int,
    *,
    inputs: Callable[[NodeId, int], Hashable] = supermajority_inputs,
    max_rounds: int = 200,
) -> OracleVerdict:
    """Run oracle and sampled consensus on one (population, seed) pair.

    Both runs share the population size, the seed (so id assignment and
    all protocol randomness line up), and the input assignment; the
    sampled run additionally keys its committee off the same seed.  An
    :class:`AgreementMonitor` rides each run, so internal disagreement
    raises immediately with the offending round in the traceback.
    """
    oracle_bus = EventBus()
    AgreementMonitor().attach(oracle_bus)
    oracle = run_scenario(
        Scenario(
            correct=population,
            protocol_factory=lambda nid, index: EarlyConsensus(
                inputs(nid, index)
            ),
            seed=seed,
            max_rounds=max_rounds,
        ),
        bus=oracle_bus,
    )
    sampled_bus = EventBus()
    AgreementMonitor().attach(sampled_bus)
    sampled = run_scenario(
        Scenario(
            correct=population,
            protocol_factory=lambda nid, index: CommitteeConsensus(
                inputs(nid, index), sampling_seed=seed
            ),
            seed=seed,
            max_rounds=max_rounds,
        ),
        bus=sampled_bus,
    )
    return OracleVerdict(
        seed=seed,
        oracle_outcome=_single_outcome(oracle.outputs),
        sampled_outcome=_single_outcome(sampled.outputs),
        sampled_rounds=sampled.rounds,
        oracle_sends=oracle.metrics.sends_total,
        sampled_sends=sampled.metrics.sends_total,
    )


def check_sampled_agreement(
    population: int = 120,
    seeds: Sequence[int] | int = 50,
    *,
    inputs: Callable[[NodeId, int], Hashable] = supermajority_inputs,
    max_rounds: int = 200,
) -> OracleReport:
    """Compare sampled vs oracle outcomes over many seeds.

    ``seeds`` may be an explicit sequence or a count (``range(count)``).
    Returns an :class:`OracleReport`; callers assert ``all_agree``.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    verdicts = tuple(
        compare_with_oracle(
            population, seed, inputs=inputs, max_rounds=max_rounds
        )
        for seed in seeds
    )
    return OracleReport(population=population, verdicts=verdicts)
