"""Oracle checks: sampled consensus must match full-broadcast consensus.

The committee-sampled variants (:mod:`repro.core.implicit_agreement`)
trade the all-broadcast O(n²) traffic for a polylog committee plus an
outcome-dissemination phase.  That is only an *optimisation* if, on the
same population and the same seed, every correct node ends up with the
decision the classical protocol would have produced.  This module runs
both side by side — the full-broadcast :class:`~repro.core.EarlyConsensus`
as the oracle, :class:`~repro.core.CommitteeConsensus` as the candidate —
under a live :class:`~repro.analysis.monitor.AgreementMonitor`, and
reports per-seed verdicts.

Both runs are described as :class:`~repro.scenario.RunSpec`\\ s differing
only in ``variant`` — the scenario layer is the single construction
path, so the oracle compares *protocols*, never harness wiring.

Outcome equality is only a theorem when validity pins the outcome —
hence the ``supermajority`` input default (see
:func:`repro.scenario.registry.supermajority_inputs`).  Under a
near-even split both values are valid and the two protocols may
legitimately resolve differently; that regime is still covered by each
run's *internal* agreement monitor, just not by cross-run equality.

The benchmark harness (``benchmarks/bench_engine.py --agreement-seeds``)
and the integration tests both go through :func:`check_sampled_agreement`
so "sampled agrees with the oracle on >= 50 seeds" is one shared,
committed check rather than two drifting ones.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Hashable, Sequence

from repro.analysis.monitor import AgreementMonitor
from repro.obs.bus import EventBus
from repro.scenario import (
    RunSpec,
    alternating_inputs,
    run_spec,
    supermajority_inputs,
)

__all__ = [
    "OracleReport",
    "OracleVerdict",
    "alternating_inputs",
    "check_sampled_agreement",
    "compare_with_oracle",
    "supermajority_inputs",
]


@dataclass(slots=True)
class OracleVerdict:
    """One seed's comparison between sampled and full-broadcast runs."""

    seed: int
    oracle_outcome: Hashable
    sampled_outcome: Hashable
    sampled_rounds: int
    oracle_sends: int
    sampled_sends: int

    @property
    def agree(self) -> bool:
        return self.sampled_outcome == self.oracle_outcome


@dataclass(slots=True)
class OracleReport:
    """Aggregate of :func:`check_sampled_agreement` over many seeds."""

    population: int
    verdicts: tuple[OracleVerdict, ...]

    @property
    def seeds_checked(self) -> int:
        return len(self.verdicts)

    @property
    def disagreements(self) -> tuple[OracleVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.agree)

    @property
    def all_agree(self) -> bool:
        return not self.disagreements

    def summary(self) -> dict:
        return {
            "population": self.population,
            "seeds_checked": self.seeds_checked,
            "all_agree": self.all_agree,
            "disagreements": [v.seed for v in self.disagreements],
        }


def _single_outcome(outputs: dict) -> Hashable:
    values = set(outputs.values())
    if len(values) != 1:  # pragma: no cover - monitor raises first
        raise AssertionError(f"run did not agree internally: {values!r}")
    return values.pop()


def _monitored(spec: RunSpec):
    bus = EventBus()
    AgreementMonitor().attach(bus)
    return run_spec(spec, bus=bus)


def compare_with_oracle(
    population: int,
    seed: int,
    *,
    inputs: str = "supermajority",
    max_rounds: int = 200,
) -> OracleVerdict:
    """Run oracle and sampled consensus on one (population, seed) pair.

    Both runs share the population size, the seed (so id assignment and
    all protocol randomness line up), and the named input assignment;
    the sampled run additionally keys its committee off the same seed.
    An :class:`AgreementMonitor` rides each run, so internal
    disagreement raises immediately with the offending round in the
    traceback.
    """
    base = RunSpec(
        protocol="consensus",
        n=population,
        inputs=inputs,
        seed=seed,
        max_rounds=max_rounds,
    )
    oracle = _monitored(base)
    sampled = _monitored(replace(base, variant="sampled"))
    return OracleVerdict(
        seed=seed,
        oracle_outcome=_single_outcome(oracle.outputs),
        sampled_outcome=_single_outcome(sampled.outputs),
        sampled_rounds=sampled.rounds,
        oracle_sends=oracle.metrics.sends_total,
        sampled_sends=sampled.metrics.sends_total,
    )


def check_sampled_agreement(
    population: int = 120,
    seeds: Sequence[int] | int = 50,
    *,
    inputs: str = "supermajority",
    max_rounds: int = 200,
) -> OracleReport:
    """Compare sampled vs oracle outcomes over many seeds.

    ``seeds`` may be an explicit sequence or a count (``range(count)``).
    Returns an :class:`OracleReport`; callers assert ``all_agree``.
    """
    if isinstance(seeds, int):
        seeds = range(seeds)
    verdicts = tuple(
        compare_with_oracle(
            population, seed, inputs=inputs, max_rounds=max_rounds
        )
        for seed in seeds
    )
    return OracleReport(population=population, verdicts=verdicts)
