"""Monte Carlo campaigns: thousands of seeded RunSpecs, one verdict table.

The campaign driver turns a *base* :class:`~repro.scenario.RunSpec`
into ``runs`` seed-derived specs (splitmix-style mixing of the campaign
seed with the run index — workers never share generator state, so the
scenario list is a pure function of ``(campaign_seed, runs)``), runs
them in a :mod:`multiprocessing` pool, and aggregates monitor verdicts
from each run's event stream into per-monitor violation rates:

* **chain-prefix** / **chain-growth** / **finality-lag** — Theorem 11.1
  under churn, for ``total-order`` runs (online
  :class:`~repro.analysis.monitor.ChainConsistencyMonitor` plus
  post-hoc checks over the finished chains);
* **agreement** — conflicting ``decide`` events, for deciding
  protocols (online :class:`~repro.analysis.monitor.AgreementMonitor`);
* **termination** — the run finished inside its round budget, plus the
  O(f) early-stopping bound for full-variant consensus;
* **half-range** — approximate agreement's range contraction.

The report is byte-deterministic for a given (base spec, campaign
seed, run count) regardless of worker count: specs are derived by
index, workers return ``(index, verdicts)``, and aggregation sorts by
index and records no wall-clock data.  Any violating spec is saved as
a JSON artifact that ``repro run --scenario FILE`` replays directly.
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.analysis.checkers import (
    check_agreement,
    check_approx_agreement,
    check_chain_prefix,
)
from repro.analysis.monitor import AgreementMonitor, ChainConsistencyMonitor
from repro.analysis.report import format_table
from repro.errors import PropertyViolation, SimulationError
from repro.obs.bus import EventBus
from repro.obs.events import ProtocolEvent
from repro.scenario import RunSpec, get_protocol, resolve_inputs, run_spec

__all__ = [
    "CampaignReport",
    "build_specs",
    "derive_seed",
    "evaluate_spec",
    "format_campaign_report",
    "run_campaign",
]

_MASK64 = (1 << 64) - 1

#: Protocols whose ``decide`` values must agree exactly (approx decides
#: nearby floats, total-order/rb decide nothing comparable this way).
_DECIDING = frozenset(
    {
        "consensus",
        "binary-consensus",
        "parallel",
        "interactive-consistency",
        "trb",
        "renaming",
        "rotor",
    }
)


def derive_seed(campaign_seed: int, index: int) -> int:
    """Deterministic per-run seed: splitmix64 finalizer over the pair.

    Pure arithmetic on ``(campaign_seed, index)`` — no shared generator
    to thread through workers — so spec ``index`` gets the same seed no
    matter how the pool partitions the campaign.
    """
    z = (
        campaign_seed * 0x9E3779B97F4A7C15
        + (index + 1) * 0xBF58476D1CE4E5B9
    ) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & 0x7FFFFFFF


def build_specs(
    base: RunSpec, runs: int, campaign_seed: int = 0
) -> list[RunSpec]:
    """The campaign's scenario list: *base* under derived seeds."""
    return [
        replace(base, seed=derive_seed(campaign_seed, index))
        for index in range(runs)
    ]


# ---------------------------------------------------------------------------
# Single-run evaluation (runs inside pool workers — must stay picklable)
# ---------------------------------------------------------------------------
class _RecordingMonitor:
    """Wraps an online monitor: record the first violation, keep running."""

    def __init__(self, name: str, monitor) -> None:
        self.name = name
        self.monitor = monitor
        self.violation: str | None = None

    def on_event(self, event) -> None:
        if self.violation is not None:
            return
        try:
            self.monitor.on_event(event)
        except PropertyViolation as exc:
            self.violation = str(exc)


def _correct_inputs(spec: RunSpec, result) -> list:
    entry = get_protocol(spec.protocol)
    input_fn = resolve_inputs(spec.inputs or entry.default_inputs)
    return [
        input_fn(nid, index)
        for index, nid in enumerate(result.correct_ids)
    ]


def _total_order_verdicts(spec: RunSpec, result, verdicts: dict) -> None:
    network = result.network
    protocols = network.protocols()
    alive = network.alive_ids
    chains = {
        nid: (list(p.output) if p.halted else p.chain)
        for nid, p in protocols.items()
    }
    prefix = check_chain_prefix(chains)
    if not prefix.ok and verdicts.get("chain-prefix") is None:
        verdicts["chain-prefix"] = "; ".join(prefix.violations)

    # The finality horizon: a machine for round r' is final once
    # 2(r - r') > 5|S| + 4, so with |S| bounded by every id ever
    # registered, any run longer than first_event + lag bound must
    # have finalized something.
    population_bound = len(network.node_ids)
    lag_bound = (5 * population_bound) // 2 + 4
    first_event = int(spec.protocol_params.get("event_first", 2))
    verdicts.setdefault("chain-growth", None)
    if spec.max_rounds >= first_event + lag_bound + 5:
        longest = max((len(c) for c in chains.values()), default=0)
        if longest == 0:
            verdicts["chain-growth"] = (
                f"no chain grew within {spec.max_rounds} rounds "
                f"(finality horizon {first_event + lag_bound})"
            )

    verdicts.setdefault("finality-lag", None)
    for nid, protocol in protocols.items():
        if nid not in alive or protocol.halted:
            continue
        if not getattr(protocol, "joined", False):
            continue
        local_round = protocol.local_round
        if local_round is None:
            continue
        lag = local_round - protocol.final_through
        if lag > lag_bound and verdicts["finality-lag"] is None:
            verdicts["finality-lag"] = (
                f"node {nid} finality lag {lag} exceeds bound "
                f"{lag_bound} (|S| <= {population_bound})"
            )


def evaluate_spec(spec: RunSpec) -> dict[str, Any]:
    """Run one spec under its monitors; return a picklable verdict row.

    ``verdicts`` maps monitor name -> None (held) or the violation
    message; a liveness failure (round budget exhausted) is recorded
    under ``termination``.
    """
    bus = EventBus()
    online: list[_RecordingMonitor] = []
    if spec.protocol == "total-order":
        online.append(
            _RecordingMonitor("chain-prefix", ChainConsistencyMonitor())
        )
    elif spec.protocol in _DECIDING:
        online.append(_RecordingMonitor("agreement", AgreementMonitor()))
    for wrapper in online:
        bus.subscribe(wrapper.on_event, ProtocolEvent.topic)

    verdicts: dict[str, str | None] = {w.name: None for w in online}
    verdicts["termination"] = None
    rounds = None
    sends = None
    chain_length = None
    try:
        result = run_spec(spec, bus=bus)
    except SimulationError as exc:
        verdicts["termination"] = f"liveness: {exc}"
        result = None
    if result is not None:
        rounds = result.rounds
        sends = result.metrics.sends_total
        for wrapper in online:
            if wrapper.violation is not None:
                verdicts[wrapper.name] = wrapper.violation
        if spec.protocol == "total-order":
            _total_order_verdicts(spec, result, verdicts)
            chain_length = max(
                (
                    len(list(p.output) if p.halted else p.chain)
                    for p in result.network.protocols().values()
                ),
                default=0,
            )
        elif spec.protocol in _DECIDING:
            agreement = check_agreement(result)
            if not agreement.ok and verdicts.get("agreement") is None:
                verdicts["agreement"] = "; ".join(agreement.violations)
            if spec.protocol == "consensus" and spec.variant == "full":
                # Early-stopping consensus terminates in O(f) rounds:
                # two init rounds plus at most 2f + 4 five-round phases.
                bound = 2 + 5 * (2 * spec.f + 4)
                if result.rounds > bound:
                    verdicts["termination"] = (
                        f"consensus took {result.rounds} rounds; O(f) "
                        f"bound is {bound}"
                    )
        elif spec.protocol == "approx":
            verdicts.setdefault("half-range", None)
            report = check_approx_agreement(
                result, [float(v) for v in _correct_inputs(spec, result)]
            )
            if not report.ok:
                verdicts["half-range"] = "; ".join(report.violations)
    return {
        "verdicts": verdicts,
        "rounds": rounds,
        "sends": sends,
        "chain_length": chain_length,
    }


def _worker(payload: tuple[int, dict]) -> tuple[int, dict]:
    index, doc = payload
    return index, evaluate_spec(RunSpec.from_json_dict(doc))


# ---------------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------------
@dataclass
class CampaignReport:
    """Aggregate verdicts of one campaign, JSON-stable."""

    base: dict
    campaign_seed: int
    runs: int
    monitors: dict[str, dict] = field(default_factory=dict)
    violations: list[dict] = field(default_factory=list)
    rounds_max: int = 0
    chain_length_max: int | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation_rate(self, monitor: str) -> float:
        entry = self.monitors[monitor]
        checked = entry["checked"]
        return entry["violations"] / checked if checked else 0.0

    def to_json_dict(self) -> dict:
        return {
            "base": self.base,
            "campaign_seed": self.campaign_seed,
            "runs": self.runs,
            "monitors": {
                name: dict(self.monitors[name])
                for name in sorted(self.monitors)
            },
            "violations": list(self.violations),
            "rounds_max": self.rounds_max,
            "chain_length_max": self.chain_length_max,
        }

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_json_dict(), indent=2) + "\n",
            encoding="utf-8",
        )
        return path


def run_campaign(
    base: RunSpec,
    runs: int = 1000,
    campaign_seed: int = 0,
    workers: int = 1,
    artifacts_dir: str | pathlib.Path | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> CampaignReport:
    """Run *runs* seed-derived copies of *base* and aggregate verdicts.

    ``workers > 1`` fans the scenario list over a process pool; the
    report bytes are identical for any worker count.  When
    ``artifacts_dir`` is set, every violating spec is saved there as a
    replayable ``violation-<index>.json`` RunSpec file.
    """
    specs = build_specs(base, runs, campaign_seed)
    payloads = [
        (index, spec.to_json_dict()) for index, spec in enumerate(specs)
    ]
    if workers > 1:
        chunksize = max(1, runs // (workers * 8))
        with multiprocessing.Pool(workers) as pool:
            outcomes = pool.map(_worker, payloads, chunksize=chunksize)
    else:
        outcomes = []
        for payload in payloads:
            outcomes.append(_worker(payload))
            if progress is not None:
                progress(len(outcomes), runs)
    outcomes.sort(key=lambda pair: pair[0])

    report = CampaignReport(
        base=base.to_json_dict(), campaign_seed=campaign_seed, runs=runs
    )
    if artifacts_dir is not None:
        artifacts_dir = pathlib.Path(artifacts_dir)
    for index, row in outcomes:
        if row["rounds"] is not None:
            report.rounds_max = max(report.rounds_max, row["rounds"])
        if row["chain_length"] is not None:
            report.chain_length_max = max(
                report.chain_length_max or 0, row["chain_length"]
            )
        for monitor, violation in sorted(row["verdicts"].items()):
            entry = report.monitors.setdefault(
                monitor, {"checked": 0, "violations": 0}
            )
            entry["checked"] += 1
            if violation is None:
                continue
            entry["violations"] += 1
            record = {
                "index": index,
                "seed": specs[index].seed,
                "monitor": monitor,
                "message": violation,
            }
            if artifacts_dir is not None:
                artifacts_dir.mkdir(parents=True, exist_ok=True)
                artifact = artifacts_dir / f"violation-{index:05d}.json"
                specs[index].save(artifact)
                record["artifact"] = str(artifact)
            report.violations.append(record)
    return report


def format_campaign_report(report: CampaignReport) -> str:
    """The violation-rate table (EXPERIMENTS.md's campaign section)."""
    rows = []
    for name in sorted(report.monitors):
        entry = report.monitors[name]
        rows.append(
            {
                "monitor": name,
                "checked": entry["checked"],
                "violations": entry["violations"],
                "violation rate%": round(
                    100 * report.violation_rate(name), 3
                ),
            }
        )
    base = RunSpec.from_json_dict(report.base)
    title = (
        f"campaign: {base.label()} — {report.runs} runs, "
        f"campaign seed {report.campaign_seed}"
    )
    return format_table(rows, title=title)
