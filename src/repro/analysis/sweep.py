"""Parameter sweeps: run a scenario family over a grid of configurations.

A sweep point is anything hashable (usually a tuple like ``(n, f)`` or an
adversary name); the caller supplies a builder mapping
``(point, seed) -> RunSpec`` and a judge mapping a finished result to
pass/fail.  The sweep materializes every spec through the scenario
layer (:func:`repro.scenario.run_spec` — the one construction path),
runs every point over every seed, and returns one summary row per
point — the raw material for every benchmark table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence

from repro.errors import SimulationError
from repro.scenario import RunSpec, run_spec
from repro.sim.runner import ScenarioResult
from repro.analysis.stats import RunStats, summarize_runs

SpecBuilder = Callable[[Hashable, int], RunSpec]
ResultJudge = Callable[[ScenarioResult], bool]


@dataclass
class SweepResult:
    """All rows of one sweep."""

    rows: list[dict] = field(default_factory=list)
    stats: dict[Hashable, RunStats] = field(default_factory=dict)
    failures: dict[Hashable, list[str]] = field(default_factory=dict)

    def row_for(self, point: Hashable) -> dict:
        for row in self.rows:
            if row.get("point") == point:
                return row
        raise KeyError(point)


def sweep(
    points: Iterable[Hashable],
    build: SpecBuilder,
    judge: ResultJudge,
    seeds: Sequence[int] = range(10),
    crash_is_failure: bool = True,
) -> SweepResult:
    """Run the grid and summarize per point.

    A run that raises :class:`~repro.errors.SimulationError` (round
    budget exhausted — a liveness failure) counts as a failed run rather
    than aborting the sweep when ``crash_is_failure`` is set; resiliency
    sweeps past ``n > 3f`` rely on this.
    """
    outcome = SweepResult()
    for point in points:
        results: list[ScenarioResult] = []
        successes: list[bool] = []
        notes: list[str] = []
        for seed in seeds:
            spec = build(point, seed)
            try:
                result = run_spec(spec)
            except SimulationError as exc:
                if not crash_is_failure:
                    raise
                notes.append(f"seed {seed}: {exc}")
                continue
            results.append(result)
            ok = judge(result)
            successes.append(ok)
            if not ok:
                notes.append(f"seed {seed}: property violation")
        if results:
            stats = summarize_runs(results, successes)
        else:
            stats = RunStats(0, 0.0, 0.0, 0.0, 0, 0.0, 0)
        # Liveness failures count against the success rate.
        total = len(list(seeds))
        ok_runs = sum(successes)
        row = {"point": point, **stats.as_row()}
        row["ok%"] = round(100 * ok_runs / total, 1) if total else 0.0
        outcome.rows.append(row)
        outcome.stats[point] = stats
        if notes:
            outcome.failures[point] = notes
    return outcome
