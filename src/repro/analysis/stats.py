"""Aggregate statistics over repeated runs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterable

from repro.sim.runner import ScenarioResult


@dataclass(frozen=True)
class RunStats:
    """Summary of a batch of runs of the same configuration."""

    runs: int
    success_rate: float
    rounds_mean: float
    rounds_median: float
    rounds_max: int
    sends_mean: float
    sends_max: int

    def as_row(self) -> dict:
        return {
            "runs": self.runs,
            "ok%": round(100 * self.success_rate, 1),
            "rounds(mean)": round(self.rounds_mean, 1),
            "rounds(med)": self.rounds_median,
            "rounds(max)": self.rounds_max,
            "msgs(mean)": round(self.sends_mean, 0),
            "msgs(max)": self.sends_max,
        }


def summarize_runs(
    results: Iterable[ScenarioResult],
    successes: Iterable[bool] | None = None,
) -> RunStats:
    """Summarize rounds/messages over many runs.

    ``successes`` marks per-run property-check outcomes; omitted means
    every run counts as a success.
    """
    results = list(results)
    if not results:
        raise ValueError("no runs to summarize")
    if successes is None:
        success_list = [True] * len(results)
    else:
        success_list = list(successes)
        if len(success_list) != len(results):
            raise ValueError("successes must match results 1:1")
    rounds = [r.rounds for r in results]
    sends = [r.metrics.sends_total for r in results]
    return RunStats(
        runs=len(results),
        success_rate=sum(success_list) / len(success_list),
        rounds_mean=statistics.fmean(rounds),
        rounds_median=statistics.median(rounds),
        rounds_max=max(rounds),
        sends_mean=statistics.fmean(sends),
        sends_max=max(sends),
    )
