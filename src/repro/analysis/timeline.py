"""Round-by-round ASCII timelines from run traces.

A compact visual debugging aid: one row per round, one column per
correct node, showing the semantic events each node emitted (decide,
accept, coordinator selections...).  Used by the examples and handy when
a seed misbehaves::

    r  | 42451      | 271494     | ...
    1  | .          | .          |
    3  | accept     | accept     |
    7  | decide=1   | decide=1   |
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.obs.events import ProtocolEvent
from repro.sim.trace import Trace
from repro.types import NodeId

#: Default glyphs for frequent events, keeping columns narrow.
DEFAULT_GLYPHS: Mapping[str, str] = {
    "decide": "decide={value}",
    "accept": "accept",
    "accept-opinion": "opin<{coordinator}",
    "rotor-select": "sel:{coordinator}",
    "consensus-decide": "DEC={value}",
    "adopt-coordinator": "adopt={value}",
    "adopt-prefer": "pref={value}",
    "instance-start": "start:{instance}",
    "instance-join": "join:{instance}",
    "instance-terminate": "done:{instance}",
    "to-chain": "chain={length}",
}


def render_timeline(
    trace: Trace | Iterable[Any],
    nodes: Iterable[NodeId],
    events: Iterable[str] | None = None,
    glyphs: Mapping[str, str] = DEFAULT_GLYPHS,
    max_rounds: int | None = None,
) -> str:
    """Render the semantic events as an ASCII grid (rounds x nodes).

    *trace* is a :class:`Trace` or any iterable of :mod:`repro.obs`
    events — a full mixed-topic stream (e.g. one loaded back via
    :func:`repro.obs.read_jsonl` + ``load_protocol_events``, or a list
    collected straight off a bus) works: non-``protocol`` events are
    skipped.  ``events`` filters which event names appear (default: any
    event with a glyph).  Cells with several events join them with
    ``,``.
    """
    nodes = list(nodes)
    wanted = set(events) if events is not None else set(glyphs)

    cells: dict[tuple[int, NodeId], list[str]] = {}
    last_round = 0
    protocol = ProtocolEvent.topic
    for event in trace:
        if getattr(event, "topic", protocol) != protocol:
            continue
        if event.node not in nodes or event.event not in wanted:
            continue
        if max_rounds is not None and event.round > max_rounds:
            continue
        template = glyphs.get(event.event, event.event)
        try:
            text = template.format(**event.detail)
        except (KeyError, IndexError):
            text = event.event
        cells.setdefault((event.round, event.node), []).append(text)
        last_round = max(last_round, event.round)

    if not cells:
        return "(no matching events)"

    columns = {node: max(len(str(node)), 6) for node in nodes}
    for (round_no, node), texts in cells.items():
        columns[node] = max(columns[node], len(", ".join(texts)))

    def row(label: str, values: list[str]) -> str:
        body = " | ".join(
            value.ljust(columns[node]) for node, value in zip(nodes, values)
        )
        return f"{label:>4} | {body}"

    lines = [row("r", [str(node) for node in nodes])]
    lines.append("-" * len(lines[0]))
    for round_no in range(1, last_round + 1):
        values = [
            ", ".join(cells.get((round_no, node), []) or ["."])
            for node in nodes
        ]
        if all(v == "." for v in values):
            continue  # skip silent rounds
        lines.append(row(str(round_no), values))
    return "\n".join(lines)
