"""Online invariant monitors: fail on the round a property breaks.

Post-hoc checkers (:mod:`repro.analysis.checkers`) verify a finished
run; when a seed misbehaves you then want the *round* where the
violation was born.  Monitors subscribe to the run's live semantic
events and raise :class:`~repro.errors.PropertyViolation` the moment an
invariant breaks, so the traceback lands inside the offending round
with all state intact.

A monitor attaches to either a :class:`~repro.sim.trace.Trace` or an
:class:`~repro.obs.bus.EventBus` directly — the latter works on *any*
runtime (the net runners and the asyncsim engine publish the same
``protocol`` events the simulator does).

Usage::

    network = SyncNetwork(seed=3)
    AgreementMonitor().attach(network.bus)    # or network.trace
    ...
    network.run(100)   # raises at the first conflicting decision
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import PropertyViolation
from repro.obs.bus import EventBus
from repro.obs.events import ProtocolEvent
from repro.sim.trace import Trace, TraceEvent
from repro.types import NodeId


class TraceMonitor:
    """Base class: subscribe to an event source and inspect each event.

    ``attach`` accepts a :class:`Trace` (legacy observer hook) or an
    :class:`EventBus` (subscribes to the ``protocol`` topic).
    """

    def attach(self, source: Trace | EventBus) -> "TraceMonitor":
        if isinstance(source, EventBus):
            source.subscribe(self.on_event, ProtocolEvent.topic)
        else:
            source.subscribe(self.on_event)
        return self

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover
        raise NotImplementedError


class AgreementMonitor(TraceMonitor):
    """Raises when two ``decide`` events carry different values.

    Optionally scoped to a subset of nodes (pass the correct ids when
    the network also hosts decided test doubles).
    """

    def __init__(self, nodes: set[NodeId] | None = None,
                 event: str = "decide"):
        self._nodes = nodes
        self._event = event
        self.first_value: Any = None
        self.first_node: NodeId | None = None
        self.decisions: dict[NodeId, Any] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.event != self._event:
            return
        if self._nodes is not None and event.node not in self._nodes:
            return
        value = event.get("value")
        self.decisions[event.node] = value
        if self.first_node is None:
            self.first_node, self.first_value = event.node, value
        elif value != self.first_value:
            raise PropertyViolation(
                f"agreement broken in round {event.round}: node "
                f"{event.node} decided {value!r} but node "
                f"{self.first_node} decided {self.first_value!r}"
            )


class RelayMonitor(TraceMonitor):
    """Raises when reliable-broadcast acceptances of one tag spread over
    more than ``window`` rounds (the relay property says <= 1)."""

    def __init__(self, window: int = 1, event: str = "accept"):
        self._window = window
        self._event = event
        self._first_round: dict[Hashable, int] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.event != self._event:
            return
        tag = event.get("tag")
        first = self._first_round.setdefault(tag, event.round)
        if event.round - first > self._window:
            raise PropertyViolation(
                f"relay broken: tag {tag!r} first accepted in round "
                f"{first}, node {event.node} accepted in round "
                f"{event.round}"
            )


class BoundMonitor(TraceMonitor):
    """Raises when a numeric event field leaves a closed interval.

    E.g. attach ``BoundMonitor('approx-iterate', 'estimate', lo, hi)``
    to enforce Lemma aaWithin *during* an approximate-agreement run.
    """

    def __init__(self, event: str, field: str, lo: float, hi: float):
        self._event = event
        self._field = field
        self._lo = lo
        self._hi = hi

    def on_event(self, event: TraceEvent) -> None:
        if event.event != self._event:
            return
        value = event.get(self._field)
        if value is None:
            return
        if not self._lo <= value <= self._hi:
            raise PropertyViolation(
                f"bound broken in round {event.round}: node "
                f"{event.node} {self._event}.{self._field} = {value!r} "
                f"outside [{self._lo}, {self._hi}]"
            )


class ChainConsistencyMonitor(TraceMonitor):
    """Raises when two nodes finalize different entries for one round.

    Consumes the ``to-chain`` events of
    :class:`~repro.core.total_order.TotalOrderNode` — whose ``entries``
    detail carries the chain entries that just became final — and keeps
    one canonical block per machine round.  Theorem 11.1's chain-prefix
    property holds exactly when every node's block for a round matches
    the canonical one (late joiners simply start at a later round), so
    the monitor catches a prefix violation in the round it is born,
    both on a live bus and over a rehydrated JSONL stream.
    """

    def __init__(self) -> None:
        #: machine round -> the first finalized entry block seen for it.
        self.blocks: dict[int, list] = {}

    @staticmethod
    def _normalize(entry: Any) -> tuple:
        # Live events carry (round, source, value) tuples; a JSONL
        # round-trip renders them as lists.  Either way the first
        # element is the machine round.
        return tuple(entry)

    def on_event(self, event: TraceEvent) -> None:
        if event.event != "to-chain":
            return
        per_round: dict[int, list] = {}
        for raw in event.get("entries") or ():
            entry = self._normalize(raw)
            per_round.setdefault(entry[0], []).append(entry)
        for machine_round, block in per_round.items():
            known = self.blocks.setdefault(machine_round, block)
            if known != block:
                raise PropertyViolation(
                    f"chain-prefix broken in round {event.round}: node "
                    f"{event.node} finalized {block!r} for machine round "
                    f"{machine_round} but the canonical block is "
                    f"{known!r}"
                )
