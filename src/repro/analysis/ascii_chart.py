"""ASCII line charts: the repository's "figures".

The paper has no figures; the benchmarks generate series (convergence
curves, skew trajectories, erosion cliffs) that want more than a table
row.  This renderer produces dependency-free ASCII charts that live
happily inside Markdown code fences in EXPERIMENTS.md::

    range
    8.00 |*
         |
    4.00 | *
         |
    2.00 |  *
    1.00 |   *  *
         +---------
          round ->

Marks are placed per (x, y) sample; multiple series get distinct glyphs
and a legend.
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Default per-series glyphs.
GLYPHS = "*o+x#@"


def render_chart(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more equally-sampled series as an ASCII chart.

    Args:
        series: name -> samples (all series share the x axis; shorter
            series simply stop early).
        width/height: plot area in characters.
        x_label/y_label: axis captions.
    """
    if not series:
        return "(no data)"
    all_values = [v for samples in series.values() for v in samples]
    if not all_values:
        return "(no data)"
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0
    max_len = max(len(samples) for samples in series.values())
    if max_len < 2:
        x_scale = 0.0
    else:
        x_scale = (width - 1) / (max_len - 1)

    grid = [[" "] * width for _ in range(height)]
    for index, (name, samples) in enumerate(sorted(series.items())):
        glyph = GLYPHS[index % len(GLYPHS)]
        for sample_index, value in enumerate(samples):
            column = int(round(sample_index * x_scale))
            row = int(round((hi - value) / span * (height - 1)))
            row = max(0, min(height - 1, row))
            column = max(0, min(width - 1, column))
            grid[row][column] = glyph

    label_width = max(len(f"{hi:.3g}"), len(f"{lo:.3g}"), len(y_label))
    lines = [f"{y_label.rjust(label_width)}"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{hi:.3g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{lo:.3g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    lines.append(f"{' ' * label_width}  {x_label} ->")
    if len(series) > 1:
        legend = "  ".join(
            f"{GLYPHS[i % len(GLYPHS)]} {name}"
            for i, name in enumerate(sorted(series))
        )
        lines.append(f"{' ' * label_width}  [{legend}]")
    return "\n".join(lines)
