"""ASCII table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Sequence


def format_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as a GitHub-flavoured markdown table."""
    rows = list(rows)
    if not rows:
        return f"## {title}\n(no data)\n" if title else "(no data)\n"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        return str(value)

    widths = {
        c: max(len(c), *(len(cell(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(f"## {title}")
        lines.append("")
    header = "| " + " | ".join(c.ljust(widths[c]) for c in columns) + " |"
    rule = "|" + "|".join("-" * (widths[c] + 2) for c in columns) + "|"
    lines.append(header)
    lines.append(rule)
    for row in rows:
        lines.append(
            "| "
            + " | ".join(cell(row.get(c, "")).ljust(widths[c]) for c in columns)
            + " |"
        )
    lines.append("")
    return "\n".join(lines)


#: Eight-level block glyphs for sparklines.
_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(series, lo: float | None = None, hi: float | None = None) -> str:
    """Render a numeric series as a compact block-glyph sparkline.

    Useful for showing convergence/erosion trajectories inside a table
    cell, e.g. the per-round range of approximate agreement::

        >>> sparkline([8, 4, 2, 1, 0.5, 0.25])
        '█▄▂▁▁▁'
    """
    values = [float(v) for v in series]
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[0] * len(values)
    glyphs = []
    for value in values:
        level = int((value - lo) / span * (len(_SPARK_GLYPHS) - 1))
        level = max(0, min(len(_SPARK_GLYPHS) - 1, level))
        glyphs.append(_SPARK_GLYPHS[level])
    return "".join(glyphs)


def print_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> None:
    """Print :func:`format_table` (the benchmarks' reporting primitive)."""
    print(format_table(rows, columns, title))
