"""Run analysis: property checkers, statistics, sweeps, and reports.

* :mod:`~repro.analysis.checkers` — machine-checkable versions of every
  guarantee the paper proves (agreement, validity, the three
  reliable-broadcast properties, the rotor's good round, approximate
  agreement's range conditions, chain prefix/growth);
* :mod:`~repro.analysis.stats` — aggregate many runs into summary rows;
* :mod:`~repro.analysis.sweep` — parameter grids over (n, f, adversary,
  seed);
* :mod:`~repro.analysis.campaign` — Monte Carlo churn campaigns: many
  seed-derived RunSpecs in a worker pool, per-monitor violation rates;
* :mod:`~repro.analysis.report` — ASCII tables for EXPERIMENTS.md.
"""

from repro.analysis.campaign import (
    CampaignReport,
    build_specs,
    derive_seed,
    evaluate_spec,
    format_campaign_report,
    run_campaign,
)
from repro.analysis.checkers import (
    CheckReport,
    check_agreement,
    check_approx_agreement,
    check_chain_prefix,
    check_parallel_outputs,
    check_reliable_broadcast,
    check_rotor_good_round,
    check_validity,
)
from repro.analysis.stats import RunStats, summarize_runs
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.complexity import classify_growth, fit_line
from repro.analysis.monitor import (
    AgreementMonitor,
    BoundMonitor,
    ChainConsistencyMonitor,
    RelayMonitor,
    TraceMonitor,
)
from repro.analysis.oracle import (
    OracleReport,
    OracleVerdict,
    check_sampled_agreement,
    compare_with_oracle,
)
from repro.analysis.report import format_table
from repro.analysis.timeline import render_timeline

__all__ = [
    "AgreementMonitor",
    "BoundMonitor",
    "CampaignReport",
    "ChainConsistencyMonitor",
    "CheckReport",
    "OracleReport",
    "OracleVerdict",
    "RelayMonitor",
    "RunStats",
    "SweepResult",
    "TraceMonitor",
    "build_specs",
    "check_agreement",
    "check_approx_agreement",
    "check_chain_prefix",
    "check_parallel_outputs",
    "check_reliable_broadcast",
    "check_rotor_good_round",
    "check_sampled_agreement",
    "check_validity",
    "classify_growth",
    "compare_with_oracle",
    "derive_seed",
    "evaluate_spec",
    "fit_line",
    "format_campaign_report",
    "format_table",
    "render_timeline",
    "run_campaign",
    "summarize_runs",
    "sweep",
]
