"""Complexity-curve fitting for the round/message claims.

The paper states asymptotics — rotor `O(n)`, consensus `O(f)`, renaming
`O(f)` — and the benchmarks measure finite sweeps.  This module turns a
sweep into a verdict: fit linear and constant models to the measured
series and report which one explains it, with the fitted slope.  Pure
least squares over the stdlib; no scipy needed for a line.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = slope * x + intercept``."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_line(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares with the coefficient of determination."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mean_x = statistics.fmean(xs)
    mean_y = statistics.fmean(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("xs are constant")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)


@dataclass(frozen=True)
class GrowthVerdict:
    """Classification of a measured series' growth."""

    kind: str  # "constant" | "linear" | "superlinear"
    fit: LinearFit
    relative_slope: float  # slope normalised by mean(y)/mean(x)

    @property
    def is_linear_or_better(self) -> bool:
        return self.kind in ("constant", "linear")


def classify_growth(
    xs: Sequence[float],
    ys: Sequence[float],
    constant_tolerance: float = 0.15,
) -> GrowthVerdict:
    """Classify a series as constant / linear / superlinear in ``x``.

    ``constant``: the fitted slope explains less than
    ``constant_tolerance`` of the mean value per unit of the x-range —
    i.e. y barely moves over the sweep.  ``superlinear``: a quadratic
    term improves on the line by a wide margin.
    """
    fit = fit_line(xs, ys)
    x_span = max(xs) - min(xs)
    mean_y = statistics.fmean(ys)
    movement = abs(fit.slope) * x_span
    if mean_y > 0 and movement / mean_y < constant_tolerance:
        kind = "constant"
    else:
        # compare the line against a quadratic fit on log-ratio terms:
        # for a clean power law y ~ x^p, the slope of log y vs log x
        # estimates p.
        if min(xs) > 0 and min(ys) > 0:
            log_fit = fit_line(
                [math.log(x) for x in xs], [math.log(y) for y in ys]
            )
            kind = "superlinear" if log_fit.slope > 1.5 else "linear"
        else:
            kind = "linear"
    rel = (
        fit.slope / (mean_y / statistics.fmean(xs))
        if mean_y and statistics.fmean(xs)
        else 0.0
    )
    return GrowthVerdict(kind=kind, fit=fit, relative_slope=rel)
