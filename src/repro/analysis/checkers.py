"""Machine-checkable versions of the paper's guarantees.

Each checker inspects a finished :class:`~repro.sim.runner.ScenarioResult`
(or raw protocols/traces) and returns a :class:`CheckReport`; call
:meth:`CheckReport.raise_if_failed` to turn violations into
:class:`~repro.errors.PropertyViolation`.  Benchmarks report the pass
rate; tests assert it is 100% for ``n > 3f``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.errors import PropertyViolation
from repro.sim.runner import ScenarioResult
from repro.types import NodeId


@dataclass
class CheckReport:
    """Outcome of one property check."""

    name: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def raise_if_failed(self) -> "CheckReport":
        if not self.ok:
            raise PropertyViolation(
                f"{self.name}: " + "; ".join(self.violations)
            )
        return self

    def merged_with(self, other: "CheckReport") -> "CheckReport":
        merged = CheckReport(f"{self.name}+{other.name}")
        merged.violations = [*self.violations, *other.violations]
        return merged


# ---------------------------------------------------------------------------
# Consensus-shaped protocols
# ---------------------------------------------------------------------------
def check_agreement(result: ScenarioResult) -> CheckReport:
    """Every correct node decided, and on a single common value."""
    report = CheckReport("agreement")
    missing = [n for n in result.correct_ids if n not in result.outputs]
    if missing:
        report.add(f"nodes never decided: {sorted(missing)}")
    if len(result.distinct_outputs) > 1:
        report.add(f"conflicting outputs: {result.outputs}")
    return report


def check_validity(
    result: ScenarioResult, correct_inputs: Iterable[Hashable]
) -> CheckReport:
    """Outputs must be an input of some correct node; unanimous inputs
    force that exact output."""
    report = CheckReport("validity")
    inputs = list(correct_inputs)
    allowed = set(inputs)
    for node, output in result.outputs.items():
        if output not in allowed:
            report.add(f"node {node} output {output!r} not a correct input")
    if len(allowed) == 1:
        (only,) = allowed
        for node, output in result.outputs.items():
            if output != only:
                report.add(
                    f"unanimous input {only!r} but node {node} output "
                    f"{output!r}"
                )
    return report


# ---------------------------------------------------------------------------
# Reliable broadcast (correctness / unforgeability / relay)
# ---------------------------------------------------------------------------
def check_reliable_broadcast(
    result: ScenarioResult,
    sender_id: NodeId,
    message: Hashable,
    sender_correct: bool,
) -> CheckReport:
    """All three Algorithm-1 properties, from the run's trace and state.

    * correctness — a correct sender's message is accepted by every
      correct node (the proof shows: by round 3);
    * unforgeability — a tag ``(m, s)`` with correct ``s`` is accepted
      only if ``s`` really broadcast ``m`` (trace event ``rb-sent``);
    * relay — per tag, the earliest and latest correct acceptance rounds
      differ by at most one.
    """
    report = CheckReport("reliable-broadcast")
    protocols = {
        n: result.protocols[n]
        for n in result.correct_ids
        if n in result.protocols
    }
    tag = (message, sender_id)

    if sender_correct:
        for node, protocol in protocols.items():
            accepted_round = protocol.accepted.get(tag)
            if accepted_round is None:
                report.add(f"correctness: node {node} never accepted {tag}")
            elif accepted_round > 3:
                report.add(
                    f"correctness: node {node} accepted {tag} only in "
                    f"round {accepted_round}"
                )

    sent_events = result.trace.of("rb-sent", node=sender_id)
    sent_payloads = {e.get("message") for e in sent_events}
    if sender_correct:
        for node, protocol in protocols.items():
            for (payload, origin), _round in protocol.accepted.items():
                if origin == sender_id and payload not in sent_payloads:
                    report.add(
                        f"unforgeability: node {node} accepted "
                        f"({payload!r}, {origin}) never sent by the sender"
                    )

    acceptance_rounds: dict[Hashable, list[int]] = {}
    for protocol in protocols.values():
        for accepted_tag, round_no in protocol.accepted.items():
            acceptance_rounds.setdefault(accepted_tag, []).append(round_no)
    for accepted_tag, rounds in acceptance_rounds.items():
        if len(rounds) < len(protocols):
            report.add(
                f"relay: {accepted_tag} accepted by only {len(rounds)}/"
                f"{len(protocols)} correct nodes"
            )
        elif max(rounds) - min(rounds) > 1:
            report.add(
                f"relay: {accepted_tag} acceptance spread over rounds "
                f"{min(rounds)}..{max(rounds)}"
            )
    return report


# ---------------------------------------------------------------------------
# Parallel consensus / interactive consistency (Theorem 10.1)
# ---------------------------------------------------------------------------
def check_parallel_outputs(
    result: ScenarioResult,
    inputs_by_node: dict[NodeId, dict],
) -> CheckReport:
    """Theorem 10.1's three conditions over pair-set outputs.

    ``inputs_by_node`` maps each correct node to its ``{id: value}``
    input pairs.  Checks: agreement (identical output sets — implied by
    :func:`check_agreement`, repeated here for a self-contained
    verdict); validity (a pair input identically at *every* correct node
    appears in every output); no fabrication (an output id was input by
    at least one correct node, with that node's value).
    """
    report = CheckReport("parallel-consensus")
    agreement = check_agreement(result)
    report.violations.extend(agreement.violations)
    if not result.outputs:
        return report

    outputs = {node: dict(out) for node, out in result.outputs.items()}
    correct = [n for n in result.correct_ids if n in outputs]

    # validity: universally-held pairs must be everywhere
    if correct:
        common = dict(inputs_by_node.get(correct[0], {}))
        for node in correct[1:]:
            other = inputs_by_node.get(node, {})
            common = {
                k: v for k, v in common.items() if other.get(k) == v
            }
        for instance_id, value in common.items():
            for node in correct:
                if outputs[node].get(instance_id) != value:
                    report.add(
                        f"validity: pair ({instance_id!r}, {value!r}) "
                        f"held by all correct nodes but missing/changed "
                        f"at {node}"
                    )

    # no fabrication: every output pair traces to some correct input
    claimed = {}
    for node, pairs in inputs_by_node.items():
        for instance_id, value in pairs.items():
            claimed.setdefault(instance_id, set()).add(value)
    for node in correct:
        for instance_id, value in outputs[node].items():
            if value not in claimed.get(instance_id, set()):
                report.add(
                    f"fabrication: node {node} output ({instance_id!r}, "
                    f"{value!r}) never input by a correct node"
                )
    return report


# ---------------------------------------------------------------------------
# Rotor-coordinator (Theorem 6.3's good round)
# ---------------------------------------------------------------------------
def check_rotor_good_round(result: ScenarioResult) -> CheckReport:
    """Some round saw every correct node accept the opinion of one common,
    correct coordinator."""
    report = CheckReport("rotor-good-round")
    correct = set(result.correct_ids)
    per_round: dict[int, dict[NodeId, tuple[NodeId, Any]]] = {}
    for node in result.correct_ids:
        protocol = result.protocols[node]
        for round_no, coordinator, opinion in protocol.accepted_opinions:
            per_round.setdefault(round_no, {})[node] = (coordinator, opinion)

    for round_no, entries in sorted(per_round.items()):
        if set(entries) != correct:
            continue
        coordinators = {coordinator for coordinator, _ in entries.values()}
        if len(coordinators) == 1 and coordinators <= correct:
            return report  # found a good round
    report.add("no round with a common, correct, universally-heard coordinator")
    return report


# ---------------------------------------------------------------------------
# Approximate agreement
# ---------------------------------------------------------------------------
def check_approx_agreement(
    result: ScenarioResult,
    correct_inputs: Iterable[float],
    expect_halving: bool = True,
) -> CheckReport:
    """Outputs inside the correct input range; range at most halved."""
    report = CheckReport("approximate-agreement")
    inputs = list(correct_inputs)
    lo, hi = min(inputs), max(inputs)
    outputs = [result.outputs[n] for n in result.correct_ids]
    for node, output in zip(result.correct_ids, outputs):
        if not lo <= output <= hi:
            report.add(
                f"node {node} output {output} outside input range "
                f"[{lo}, {hi}]"
            )
    spread = max(outputs) - min(outputs)
    input_spread = hi - lo
    if input_spread > 0:
        limit = input_spread / 2 if expect_halving else input_spread
        if spread > limit + 1e-12:
            report.add(
                f"output range {spread} exceeds {limit} "
                f"(input range {input_spread})"
            )
    return report


# ---------------------------------------------------------------------------
# Total ordering (Theorem 11.1)
# ---------------------------------------------------------------------------
def check_chain_prefix(chains: dict[NodeId, list]) -> CheckReport:
    """Pairwise prefix consistency, on the nodes' common range of rounds.

    Full members must be strict prefixes of one another; a late joiner's
    chain (starting at some round ``r0 > 1``) is compared against the
    same-round suffix of the longer chains.
    """
    report = CheckReport("chain-prefix")
    if not chains:
        return report
    reference = max(chains.values(), key=len)
    for node, chain in chains.items():
        if not chain:
            continue
        first_round = chain[0][0]
        segment = [e for e in reference if e[0] >= first_round]
        # A node with a smaller membership view (a late joiner that
        # never saw a long-departed member) has a lower finality
        # threshold and can be final *beyond* the reference chain's
        # horizon; entries past that horizon have nothing to be
        # compared against, so only the overlap must match.
        overlap = min(len(segment), len(chain))
        if segment[:overlap] != chain[:overlap]:
            report.add(
                f"node {node} chain diverges from the longest chain "
                f"(first differing entry at index "
                f"{_first_divergence(segment, chain)})"
            )
    return report


def _first_divergence(a: list, b: list) -> int:
    for index, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return index
    return min(len(a), len(b))
