"""repro.obs — the one event plane shared by all three runtimes.

Producers (:mod:`repro.sim.network`, :mod:`repro.net.runner`,
:mod:`repro.asyncsim.engine`) publish the typed events of
:mod:`repro.obs.events` onto an :class:`EventBus`; consumers —
:class:`~repro.sim.metrics.Metrics`, :class:`~repro.sim.trace.Trace`,
the online monitors, timelines, replay recorders, and JSONL files —
subscribe.  See docs/observability.md.
"""

from repro.obs.bus import EventBus, Subscriber
from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    EnginePhase,
    FramesDropped,
    InboxDelivered,
    MessageSent,
    ProtocolEvent,
    RoundEnded,
    RoundStarted,
    RunStarted,
)
from repro.obs.jsonl import (
    JsonlSink,
    event_to_json,
    load_protocol_events,
    read_jsonl,
)

__all__ = [
    "EventBus",
    "Subscriber",
    "EVENT_TYPES",
    "SCHEMA_VERSION",
    "EnginePhase",
    "FramesDropped",
    "InboxDelivered",
    "MessageSent",
    "ProtocolEvent",
    "RoundEnded",
    "RoundStarted",
    "RunStarted",
    "JsonlSink",
    "event_to_json",
    "load_protocol_events",
    "read_jsonl",
]
