"""The event taxonomy: one typed vocabulary for all three runtimes.

Every observable thing a runtime does is an event object with a stable
``topic`` string.  Events are plain slotted dataclasses, *not* frozen:
``frozen=True`` routes every field assignment through
``object.__setattr__`` and makes construction ~5x slower, which matters
on the hot path (one :class:`MessageSent` per logical send).  Treat
events as immutable by convention — publishers recycle nothing, but
subscribers must never mutate what they receive.  The sync simulator (:mod:`repro.sim.network`),
the TCP lock-step runner (:mod:`repro.net.runner`) and the discrete-event
engine (:mod:`repro.asyncsim.engine`) all publish the *same* classes onto
an :class:`~repro.obs.bus.EventBus`, so every consumer — traces, metrics,
online monitors, timelines, replay recorders, JSONL files — works
unchanged whichever runtime drove the run.

Topics
======

========== =============================== ===============================
topic       event class                    emitted by
========== =============================== ===============================
run-start   :class:`RunStarted`            all runtimes, once per run
round-start :class:`RoundStarted`          sim + net, each round
round-end   :class:`RoundEnded`            sim + net, each round
send        :class:`MessageSent`           all runtimes, per logical send
deliver     :class:`InboxDelivered`        all runtimes, per recipient
drop        :class:`FramesDropped`         net, per purged frame batch
engine-phase :class:`EnginePhase`          sim, when a clock is injected
protocol    :class:`ProtocolEvent`         protocol code via NodeApi.emit
========== =============================== ===============================

Round-less runtimes (asyncsim) publish with ``round=0`` and carry the
simulated time in the event's ``time`` field (or ``detail["time"]`` for
protocol events); round-structured runtimes leave ``time`` as ``None``.

The JSONL rendering of this taxonomy is versioned by
:data:`SCHEMA_VERSION` (see :mod:`repro.obs.jsonl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Hashable, Sequence

from repro.types import NodeId, Round

#: Version of the event vocabulary *and* its JSONL rendering.  Bump on
#: any field/topic change and document the migration in
#: docs/observability.md.
SCHEMA_VERSION = 1


@dataclass(slots=True)
class ProtocolEvent:
    """One semantic event emitted by a node (``NodeApi.emit``).

    This is the *semantic* stream — ``accept``, ``decide``,
    ``good-round`` — the paper's timing claims quantify over, and the
    one the cross-runtime parity test pins: the same protocol run must
    produce the same ordered ``ProtocolEvent`` stream on any runtime.
    (Exported from :mod:`repro.sim.trace` as ``TraceEvent`` for
    backward compatibility.)
    """

    round: Round
    node: NodeId
    event: str
    detail: dict[str, Any]

    topic: ClassVar[str] = "protocol"

    def get(self, key: str, default: Any = None) -> Any:
        return self.detail.get(key, default)


@dataclass(slots=True)
class RunStarted:
    """A runtime began executing a run."""

    runtime: str  # "sim" | "net" | "asyncsim"
    seed: int | None = None

    topic: ClassVar[str] = "run-start"


@dataclass(slots=True)
class RoundStarted:
    """A synchronous round began (before delivery)."""

    round: Round

    topic: ClassVar[str] = "round-start"


@dataclass(slots=True)
class RoundEnded:
    """A synchronous round finished (all sends staged/transmitted)."""

    round: Round

    topic: ClassVar[str] = "round-end"


@dataclass(slots=True)
class EnginePhase:
    """Wall time one engine phase took (observability only; emitted
    only when the engine was built with an injected clock)."""

    round: Round
    phase: str  # "deliver" | "correct" | "adversary" | "stage"
    seconds: float

    topic: ClassVar[str] = "engine-phase"


@dataclass(slots=True)
class MessageSent:
    """One logical send (a ``broadcast`` or ``send`` call).

    ``dest is None`` means broadcast.  ``staged`` is True when the sync
    engine accepted the send into a staging queue (False for per-round
    duplicates, dead destinations, and for runtimes without staging).
    """

    round: Round
    sender: NodeId
    kind: str
    payload: Hashable = None
    instance: Hashable = None
    dest: NodeId | None = None
    wire_bytes: int = 0
    staged: bool = False
    time: float | None = None

    topic: ClassVar[str] = "send"


@dataclass(slots=True)
class MessageBatchSent:
    """One batched broadcast fan-out (a ``broadcast_many`` call).

    Semantically equivalent to ``len(payloads)`` :class:`MessageSent`
    events (all broadcasts, one kind/instance); the sync engine emits
    one of these instead so an n-payload echo storm costs one event.
    ``staged`` is the number of payloads accepted into staging;
    ``staged_flags`` is a per-payload bool tuple, or ``None`` when every
    payload staged (the hot path).  ``wire_bytes`` totals the batch.

    Process-local convenience topic: the JSONL sink renders it as the
    equivalent per-payload ``send`` lines, so the on-disk vocabulary
    (and :data:`SCHEMA_VERSION`) is unchanged, and it is deliberately
    not in :data:`EVENT_TYPES`.  Subscribers that want per-send events
    and batches must subscribe to both ``send`` and ``send-batch``.
    """

    round: Round
    sender: NodeId
    kind: str
    payloads: Sequence[Hashable]
    instance: Hashable = None
    wire_bytes: int = 0
    staged: int = 0
    staged_flags: Sequence[bool] | None = None
    time: float | None = None

    topic: ClassVar[str] = "send-batch"

    def expanded(self) -> "tuple[MessageSent, ...]":
        """The equivalent per-payload ``send`` events."""
        flags = self.staged_flags
        per_payload = (
            self.wire_bytes // len(self.payloads) if self.payloads else 0
        )
        return tuple(
            MessageSent(
                round=self.round,
                sender=self.sender,
                kind=self.kind,
                payload=payload,
                instance=self.instance,
                dest=None,
                wire_bytes=per_payload,
                staged=bool(flags[i]) if flags is not None else True,
                time=self.time,
            )
            for i, payload in enumerate(self.payloads)
        )


@dataclass(slots=True)
class PlaneStats:
    """Cumulative columnar-plane counters for one run.

    Emitted by the sync engine at each round end when the columnar
    plane is active, carrying run-cumulative values (last one wins).
    When the plane is *inactive* — a subclass overrode delivery
    filtering, or the engine was built with ``columnar=False`` — one
    event with ``columnar=False`` and the downgrade ``fallback`` reason
    is emitted at the first round end instead, so subscribers can tell
    "object path" from "no stats yet".  ``materialized_messages``
    counts Message objects the plane actually built (at most once per
    round, only when somebody iterated); the gap to the logical
    delivery count is the columnar path's saving.  Process-local
    observability — not part of the JSONL vocabulary (the sink skips
    it) and not in :data:`EVENT_TYPES`.
    """

    round: Round
    payload_intern_hits: int
    unique_payloads: int
    columnar: bool = True
    fallback: str | None = None
    materialized_messages: int = 0

    topic: ClassVar[str] = "plane-stats"


@dataclass(slots=True)
class DecisionEconomy:
    """Message economy of one finished run: what each decision cost.

    Emitted once by the sync engine at the end of ``run()``, after the
    last round.  ``decisions`` counts correct nodes that halted with an
    output; the per-decision ratios divide the run totals by it (zero
    decisions leaves them at 0.0 rather than dividing).  The sampled
    consensus variants exist to shrink ``messages_per_decision``; the
    benchmark harness compares this event against committed baselines.
    Process-local — not in :data:`EVENT_TYPES`.
    """

    rounds: Round
    decisions: int
    sends_total: int
    bytes_total: int
    messages_per_decision: float
    bytes_per_decision: float

    topic: ClassVar[str] = "decision-economy"


@dataclass(slots=True)
class InboxDelivered:
    """One recipient's deliveries for one round (or one asyncsim
    delivery, as a singleton batch).

    ``messages`` aliases the runtime's own delivery sequence — for the
    sync engine's all-broadcast path that is the round's *shared*
    message tuple, so emitting this event costs no copies.  Subscribers
    must treat it as immutable.
    """

    round: Round
    recipient: NodeId
    messages: Sequence[Any]
    time: float | None = None

    topic: ClassVar[str] = "deliver"


@dataclass(slots=True)
class FramesDropped:
    """Inbound frames discarded without delivery (net runtime: frames
    stamped outside the runner's clock window)."""

    round: Round
    node: NodeId
    count: int
    reason: str

    topic: ClassVar[str] = "drop"


#: Every event class, keyed by topic (the JSONL reader uses this).
EVENT_TYPES: dict[str, type] = {
    cls.topic: cls
    for cls in (
        ProtocolEvent,
        RunStarted,
        RoundStarted,
        RoundEnded,
        EnginePhase,
        MessageSent,
        InboxDelivered,
        FramesDropped,
    )
}
