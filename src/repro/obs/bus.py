"""The event bus: one structured stream, many consumers.

An :class:`EventBus` carries the typed events of
:mod:`repro.obs.events` from whichever runtime is executing a run to
whatever wants to observe it — :class:`~repro.sim.metrics.Metrics`
counters, the :class:`~repro.sim.trace.Trace` log, online monitors
(:mod:`repro.analysis.monitor`), replay recorders, JSONL files.

Design constraints, in order:

1. **Zero cost when detached.**  Emission sites ask for a per-topic
   :meth:`sink` once per round; when nothing subscribed to a topic the
   sink is ``None`` and the producer skips *constructing* the event
   entirely — a detached bus costs the hot path one ``None`` check per
   emission site.  :attr:`version` lets producers cache sinks across
   rounds and rebuild only when subscriptions actually changed.
2. **Dumb dispatch.**  A subscriber is any callable taking one event;
   dispatch is a plain loop, synchronous, in subscription order.  A
   subscriber that raises aborts the emitting round — monitors use
   exactly this to fail *inside* the offending round.
3. **Runtime-agnostic.**  The bus knows nothing about rounds, nodes, or
   networks; it routes on ``event.topic`` alone.

Thread-safety: subscription changes are not synchronized; attach all
subscribers before starting threaded runtimes (the net runtime's
runners publish concurrently — CPython's GIL makes the dispatch loop
itself safe for append-style subscribers).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

Subscriber = Callable[[Any], None]

_EMPTY: tuple = ()


class EventBus:
    """Topic-routed dispatch of structured events to subscribers."""

    __slots__ = ("_topic_subs", "_all_subs", "_version")

    def __init__(self) -> None:
        self._topic_subs: dict[str, tuple[Subscriber, ...]] = {}
        self._all_subs: tuple[Subscriber, ...] = ()
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every (un)subscription — cache key for sinks."""
        return self._version

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self,
        handler: Subscriber,
        topics: str | Iterable[str] | None = None,
    ) -> Subscriber:
        """Register *handler* for the given topic(s) (None = every
        event).  Returns the handler, for unsubscribe bookkeeping."""
        if topics is None:
            self._all_subs = self._all_subs + (handler,)
        else:
            if isinstance(topics, str):
                topics = (topics,)
            for topic in topics:
                existing = self._topic_subs.get(topic, _EMPTY)
                self._topic_subs[topic] = existing + (handler,)
        self._version += 1
        return handler

    def unsubscribe(self, handler: Subscriber) -> bool:
        """Remove *handler* everywhere it was subscribed; True if it
        was found (bound methods compare by equality, so passing
        ``obj.method`` again matches the original subscription)."""
        removed = False
        if handler in self._all_subs:
            self._all_subs = tuple(
                h for h in self._all_subs if h != handler
            )
            removed = True
        for topic in list(self._topic_subs):
            subs = self._topic_subs[topic]
            if handler in subs:
                remaining = tuple(h for h in subs if h != handler)
                if remaining:
                    self._topic_subs[topic] = remaining
                else:
                    del self._topic_subs[topic]
                removed = True
        if removed:
            self._version += 1
        return removed

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def wants(self, topic: str) -> bool:
        """True when at least one subscriber would see *topic*."""
        return bool(self._all_subs) or topic in self._topic_subs

    def sink(self, topic: str) -> Subscriber | None:
        """A dispatch callable for *topic*, or None when nobody
        listens.

        The sink snapshots the current subscriber set — producers cache
        it and rebuild when :attr:`version` changes.  A ``None`` sink is
        the zero-cost contract: skip building the event at all.
        """
        subs = self._topic_subs.get(topic, _EMPTY) + self._all_subs
        if not subs:
            return None
        if len(subs) == 1:
            return subs[0]

        def dispatch(event: Any, _subs=subs) -> None:
            for handler in _subs:
                handler(event)

        return dispatch

    def publish(self, event: Any) -> None:
        """Dispatch *event* to its topic's subscribers (and catch-alls)."""
        for handler in self._topic_subs.get(event.topic, _EMPTY):
            handler(event)
        for handler in self._all_subs:
            handler(event)

    # ------------------------------------------------------------------
    # Convenience sinks
    # ------------------------------------------------------------------
    def to_jsonl(self, target) -> "JsonlSink":
        """Attach a schema-versioned JSONL sink writing every event to
        *target* (a path or a text file object).  Returns the sink;
        close it (or use it as a context manager) to detach and flush.
        """
        from repro.obs.jsonl import JsonlSink

        return JsonlSink(self, target)


__all__ = ["EventBus", "Subscriber"]
