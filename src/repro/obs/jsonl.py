"""Schema-versioned JSONL rendering of the event stream.

One JSON object per line; the first line is a schema header::

    {"topic": "schema", "v": 1, "format": "repro.obs"}
    {"topic": "round-start", "round": 1}
    {"topic": "send", "round": 1, "sender": 42, "kind": "echo", ...}
    {"topic": "protocol", "round": 7, "node": 42, "event": "decide", ...}

JSON-native values pass through; dicts and sequences recurse (tuples
become JSON arrays); everything else (``⊥``, frozensets, protocol
payload objects) is rendered via ``repr`` — the same witness-not-wire
convention :mod:`repro.sim.replay` uses — so a recording is diffable
and greppable with ordinary tools without committing to a wire codec.

``deliver`` events render their message batch as a count plus a list of
``{"from", "kind", "payload", "instance"}`` objects, so post-processing
never needs the in-memory :class:`~repro.sim.message.Message` type.
"""

from __future__ import annotations

import io
import json
import pathlib
from dataclasses import fields
from typing import Any, Iterable, Iterator

from repro.obs.events import SCHEMA_VERSION, EVENT_TYPES, ProtocolEvent

__all__ = [
    "JsonlSink",
    "event_to_json",
    "load_protocol_events",
    "read_jsonl",
]

_JSON_NATIVE = (str, int, float, bool, type(None))


def _jsonable(value: Any) -> Any:
    """JSON-native passthrough; everything else degrades to ``repr``."""
    if isinstance(value, _JSON_NATIVE):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return repr(value)


def _message_to_json(message: Any) -> dict:
    """Render one delivered message (sim Message or asyncsim
    AsyncMessage) without importing either type."""
    return {
        "from": _jsonable(message.sender),
        "kind": message.kind,
        "payload": _jsonable(message.payload),
        "instance": _jsonable(getattr(message, "instance", None)),
    }


def event_to_json(event: Any) -> dict:
    """One event -> one JSON-ready dict (``topic`` first)."""
    doc: dict[str, Any] = {"topic": event.topic}
    for field in fields(event):
        value = getattr(event, field.name)
        if field.name == "messages":
            doc["count"] = len(value)
            doc["messages"] = [_message_to_json(m) for m in value]
        elif value is not None or field.name in ("payload", "instance"):
            doc[field.name] = _jsonable(value)
    return doc


class JsonlSink:
    """An all-topics subscriber streaming events to a JSONL file.

    Owns the file handle when constructed from a path (and closes it on
    :meth:`close`); borrows it when handed an open file object.  The
    schema header line is written at attach time, so even an eventless
    run produces a well-formed, versioned file.
    """

    def __init__(self, bus, target) -> None:
        self._bus = bus
        if isinstance(target, (str, pathlib.Path)):
            self._fh: io.TextIOBase = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self.count = 0
        self._fh.write(
            json.dumps(
                {"topic": "schema", "v": SCHEMA_VERSION, "format": "repro.obs"}
            )
            + "\n"
        )
        bus.subscribe(self, topics=None)

    def __call__(self, event: Any) -> None:
        topic = event.topic
        if topic == "send-batch":
            # Render a batched fan-out as the per-payload ``send`` lines
            # the legacy path would have written: the on-disk vocabulary
            # (and schema version) is independent of batching.
            for send in event.expanded():
                self._fh.write(json.dumps(event_to_json(send)) + "\n")
                self.count += 1
            return
        if topic in ("plane-stats", "decision-economy"):
            # Process-local engine counters; not part of the wire
            # vocabulary (Metrics.summary() reports them instead).
            return
        self._fh.write(json.dumps(event_to_json(event)) + "\n")
        self.count += 1

    def close(self) -> None:
        """Detach from the bus; flush (and close an owned file)."""
        self._bus.unsubscribe(self)
        if self._owns_fh:
            self._fh.close()
        else:
            self._fh.flush()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def read_jsonl(source) -> Iterator[dict]:
    """Iterate the event dicts of a JSONL recording (header included).

    *source* is a path or an iterable of lines.  Raises ``ValueError``
    on a schema version newer than this reader understands.
    """
    lines: Iterable[str]
    if isinstance(source, (str, pathlib.Path)):
        lines = pathlib.Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    for line in lines:
        line = line.strip()
        if not line:
            continue
        doc = json.loads(line)
        if doc.get("topic") == "schema" and doc.get("v", 0) > SCHEMA_VERSION:
            raise ValueError(
                f"events file has schema v{doc['v']}; this reader "
                f"understands up to v{SCHEMA_VERSION}"
            )
        yield doc


def load_protocol_events(source) -> list[ProtocolEvent]:
    """Rehydrate the semantic (``protocol``) events of a recording.

    Payload values inside ``detail`` come back as their JSONL rendering
    (JSON-native values intact, everything else as ``repr`` strings) —
    enough for timelines, monitors, and stream diffing.
    """
    events: list[ProtocolEvent] = []
    for doc in read_jsonl(source):
        if doc.get("topic") != ProtocolEvent.topic:
            continue
        events.append(
            ProtocolEvent(
                doc["round"], doc["node"], doc["event"],
                dict(doc.get("detail", {})),
            )
        )
    return events


#: Topic -> event class map, re-exported for consumers that want to
#: dispatch on rehydrated dicts.
TOPICS = dict(EVENT_TYPES)
