"""Byzantine agreement with unknown participants and failures.

A full reproduction of Khanchandani & Wattenhofer, *Byzantine Agreement
with Unknown Participants and Failures* (PODC 2020): every algorithm of
the paper's *id-only* model — reliable broadcast, rotor-coordinator,
early-terminating consensus, approximate agreement, parallel consensus,
and dynamic total ordering — plus the classical known-``n, f`` baselines
they generalize, a deterministic synchronous network simulator, a
Byzantine adversary framework, and the §9 impossibility experiments.

Quickstart::

    from repro.sim import Scenario, run_scenario
    from repro.core import EarlyConsensus
    from repro.adversary import build_strategy

    scenario = Scenario(
        correct=7,
        byzantine=2,
        protocol_factory=lambda node_id, i: EarlyConsensus(i % 2),
        strategy_factory=build_strategy("silent"),
        seed=42,
    )
    result = run_scenario(scenario)
    assert result.agreed

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
theorem-by-theorem reproduction results.
"""

from repro.types import BOTTOM, NodeId, Round, Value, is_bottom
from repro.errors import (
    ConfigurationError,
    PropertyViolation,
    ProtocolViolation,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "BOTTOM",
    "ConfigurationError",
    "NodeId",
    "PropertyViolation",
    "ProtocolViolation",
    "ReproError",
    "Round",
    "RoundLimitExceeded",
    "SimulationError",
    "Value",
    "__version__",
    "is_bottom",
]
