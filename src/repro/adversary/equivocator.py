"""Equivocation: different stories to different halves of the network.

Runs the honest protocol to stay quorum-relevant, but whenever it would
broadcast a message with a mutable payload, it sends one payload to the
lower-id half and a corrupted payload to the upper-id half.  This is exactly
the behaviour reliable broadcast exists to neutralise: the abstraction must
force a single story.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.adversary.base import ProtocolWrappingStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView
from repro.sim.node import Protocol


def _default_mutate(payload: Hashable) -> Hashable:
    """Flip binary values, negate numbers, mangle everything else."""
    if payload is None:
        return None
    if payload is True or payload is False:
        return not payload
    if isinstance(payload, bool):  # pragma: no cover - covered above
        return not payload
    if isinstance(payload, int):
        return 1 - payload if payload in (0, 1) else -payload
    if isinstance(payload, float):
        return -payload
    if isinstance(payload, str):
        return payload + "'"
    if isinstance(payload, tuple):
        return tuple(_default_mutate(p) for p in payload)
    return payload


class EquivocatorStrategy(ProtocolWrappingStrategy):
    """Sends value ``x`` to half the nodes and ``mutate(x)`` to the rest.

    ``kinds`` restricts equivocation to specific message kinds (e.g. only
    ``input``/``prefer``); by default every payload-carrying broadcast is
    split.

    ``targets`` narrows the *victims*: only the targeted ids are split
    between the two stories (everyone else gets the clean payload).
    Aiming the split at a known committee (see
    :func:`repro.core.committee.sample_committee`) is the sharpest
    attack on the sampled variants — confusing the c deciders matters,
    confusing bystanders does not.
    """

    def __init__(
        self,
        protocol: Protocol,
        kinds: frozenset[str] | None = None,
        mutate: Callable[[Hashable], Hashable] = _default_mutate,
        targets: frozenset | None = None,
    ):
        super().__init__(protocol)
        self._kinds = kinds
        self._mutate = mutate
        self._targets = targets

    def _should_split(self, send: Send) -> bool:
        if send.payload is None:
            return False
        if self._kinds is not None and send.kind not in self._kinds:
            return False
        return True

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        everyone = sorted(view.all_nodes)
        if self._targets is None:
            victims, bystanders = everyone, []
        else:
            victims = sorted(self._targets & view.all_nodes)
            bystanders = [nid for nid in everyone if nid not in self._targets]
        half = len(victims) // 2
        lower, upper = victims[:half], victims[half:]
        result: list[Send] = []
        for send in sends:
            if not self._should_split(send):
                result.append(send)
                continue
            twisted = Send(
                send.dest, send.kind, self._mutate(send.payload), send.instance
            )
            result.extend(self.explode_broadcast(send, lower))
            result.extend(self.explode_broadcast(twisted, upper))
            if bystanders:
                result.extend(self.explode_broadcast(send, bystanders))
        return result
