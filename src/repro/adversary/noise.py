"""Randomized chaos: well-formed garbage at full rate.

Useful both as a fuzzing adversary (does any protocol state machine crash
on unexpected-but-well-formed messages?) and as a baseline stressor in the
resiliency sweeps.  All randomness comes from the network's seeded RNG, so
chaos is reproducible chaos.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.adversary.base import ByzantineStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView

#: Message kinds that appear across the core protocols; the noise strategy
#: speaks the whole vocabulary by default.
DEFAULT_VOCABULARY: tuple[str, ...] = (
    "present",
    "init",
    "echo",
    "input",
    "prefer",
    "strongprefer",
    "nopreference",
    "nostrongpreference",
    "opinion",
    "value",
    "terminate",
    "ack",
    "absent",
)


class RandomNoiseStrategy(ByzantineStrategy):
    """Each round sends ``rate`` random messages with random kinds, random
    payloads, and random recipients (or broadcast)."""

    def __init__(
        self,
        rate: int = 3,
        vocabulary: Sequence[str] = DEFAULT_VOCABULARY,
        payload_pool: Sequence = (0, 1, -1, 42, None, "x", (0, 1)),
        broadcast_probability: float = 0.5,
    ):
        self._rate = rate
        self._vocabulary = tuple(vocabulary)
        self._payload_pool = tuple(payload_pool)
        self._broadcast_probability = broadcast_probability

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        rng = view.rng
        sends: list[Send] = []
        targets = sorted(view.all_nodes)
        for _ in range(self._rate):
            kind = rng.choice(self._vocabulary)
            payload = rng.choice(self._payload_pool)
            if rng.random() < self._broadcast_probability or not targets:
                sends.append(self.broadcast(kind, payload))
            else:
                sends.append(self.to(rng.choice(targets), kind, payload))
        return sends
