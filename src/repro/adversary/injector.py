"""Value injection against approximate agreement.

The classic worst case for trimmed-range agreement: Byzantine nodes report
extreme values, and *different* extremes to different nodes, trying to pull
outputs outside the correct input range or keep the range from shrinking.
Lemma aaWithin/aaMed say the trimming defeats this for ``n > 3f``.
"""

from __future__ import annotations

from typing import Iterable

from repro.adversary.base import ByzantineStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView


class ValueInjectorStrategy(ByzantineStrategy):
    """Sends ``low`` to the lower-id half and ``high`` to the rest, every
    round, for a configurable value-carrying message kind."""

    def __init__(
        self,
        kind: str = "value",
        low: float = -1e9,
        high: float = 1e9,
        announce_kind: str | None = None,
    ):
        self._kind = kind
        self._low = low
        self._high = high
        self._announce_kind = announce_kind
        self._announced = False

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        sends: list[Send] = []
        if self._announce_kind and not self._announced:
            self._announced = True
            sends.append(self.broadcast(self._announce_kind))
        ordered = sorted(view.all_nodes)
        half = len(ordered) // 2
        sends.extend(self.to(d, self._kind, self._low) for d in ordered[:half])
        sends.extend(self.to(d, self._kind, self._high) for d in ordered[half:])
        return sends
