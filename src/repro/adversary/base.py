"""Strategy base classes.

A strategy receives an :class:`~repro.sim.network.AdversaryView` each round
and returns arbitrary sends.  The network still stamps the true sender id —
the model forbids forging identifiers in direct communication — but
everything else (recipients, kinds, payloads, equivocation) is free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Iterable

from repro.sim.message import BROADCAST, Outbox, Send, expand_sends
from repro.sim.network import AdversaryView
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId


class ByzantineStrategy(ABC):
    """Base class for Byzantine behaviours."""

    @abstractmethod
    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        """Return this round's sends (possibly per-recipient, possibly none)."""

    # -- send-building helpers -----------------------------------------
    @staticmethod
    def broadcast(
        kind: str, payload: Hashable = None, instance: Hashable = None
    ) -> Send:
        return Send(BROADCAST, kind, payload, instance)

    @staticmethod
    def to(
        dest: NodeId,
        kind: str,
        payload: Hashable = None,
        instance: Hashable = None,
    ) -> Send:
        return Send(dest, kind, payload, instance)


class ProtocolWrappingStrategy(ByzantineStrategy):
    """Runs a *real* protocol internally and lets subclasses corrupt its
    output messages.

    This is the strongest practical shape of adversary for threshold
    protocols: it stays perfectly in-protocol (so it is counted in every
    quorum) while subclasses mutate, split, or suppress what goes on the
    wire.  Subclasses override :meth:`transform`.
    """

    def __init__(self, protocol: Protocol):
        self._protocol = protocol

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        outbox = Outbox()
        if not self._protocol.halted:
            api = NodeApi(
                node_id=view.node_id,
                round_no=view.round,
                # Byzantine nodes "behave as if they already know all the
                # nodes": allow direct sends anywhere.
                known_contacts=frozenset(view.all_nodes),
                outbox=outbox,
                trace_sink=None,
            )
            self._protocol.on_round(api, view.inbox)
        # Expand batched fan-outs before handing the traffic to
        # subclasses: transform() contracts on scalar Send objects.
        return self.transform(list(expand_sends(outbox.sends)), view)

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        """Corrupt the honest sends.  Default: pass through unchanged."""
        return sends

    @staticmethod
    def explode_broadcast(
        send: Send, recipients: Iterable[NodeId]
    ) -> list[Send]:
        """Turn one broadcast into per-recipient sends (for equivocation)."""
        return [
            Send(dest, send.kind, send.payload, send.instance)
            for dest in recipients
        ]
