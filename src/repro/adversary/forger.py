"""Fabrication attacks: forged echoes and phantom participants.

The model forbids forging a sender id in *direct* communication, but a
Byzantine node "can help other Byzantine nodes to do so indirectly by
claiming to have received messages from other, possibly non-existent,
nodes".  These strategies exploit exactly that seam: they emit ``echo``
messages for broadcasts that never happened and vouch for node ids that do
not exist.  Unforgeability of reliable broadcast is the property under
attack.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.adversary.base import ByzantineStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView


class EchoForgerStrategy(ByzantineStrategy):
    """Every round, echoes a message that was never sent.

    ``forged_payload`` defaults to a message attributed to a (correct)
    victim id chosen from the live population — the strongest variant,
    since a quorum-confused node would then blame an innocent sender.
    """

    def __init__(
        self,
        kind: str = "echo",
        forged_payload: Hashable | None = None,
        announce_kind: str = "present",
    ):
        self._kind = kind
        self._forged_payload = forged_payload
        self._announce_kind = announce_kind
        self._announced = False

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        sends: list[Send] = []
        if not self._announced:
            self._announced = True
            sends.append(self.broadcast(self._announce_kind))
        payload = self._forged_payload
        if payload is None:
            victim = min(view.correct_nodes) if view.correct_nodes else 0
            payload = ("forged", victim)
        sends.append(self.broadcast(self._kind, payload))
        return sends


class MembershipLiarStrategy(ByzantineStrategy):
    """Lies about who participates.

    Two lies per round, both allowed by the model:

    * vouches for ``phantoms`` non-existent node ids (broadcast
      ``echo(phantom)`` as if those nodes had announced themselves);
    * reveals *itself* to only the lower half of the network (sends
      ``present`` to half), so different correct nodes hold permanently
      inconsistent ``n_v``.

    This is the adversary the introduction warns about: "the correct nodes
    never have a consistent information about the number of participants".
    """

    def __init__(
        self,
        phantoms: int = 2,
        echo_kind: str = "echo",
        present_kind: str = "present",
        phantom_base: int = 10**7,
    ):
        self._phantoms = phantoms
        self._echo_kind = echo_kind
        self._present_kind = present_kind
        self._phantom_base = phantom_base
        self._announced = False

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        sends: list[Send] = []
        if not self._announced:
            self._announced = True
            lower_half = sorted(view.all_nodes)[
                : max(1, len(view.all_nodes) // 2)
            ]
            sends.extend(
                self.to(dest, self._present_kind) for dest in lower_half
            )
        for k in range(self._phantoms):
            phantom_id = self._phantom_base + view.node_id + k
            sends.append(self.broadcast(self._echo_kind, phantom_id))
        return sends
