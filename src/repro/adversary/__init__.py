"""Byzantine adversary strategies.

The paper's proofs quantify over *arbitrary* Byzantine behaviour; tests and
benchmarks cannot, so this package supplies the concrete attack families the
proofs have to survive:

* under-participation (:class:`SilentStrategy`,
  :class:`PresentOnlyStrategy`) — Byzantine nodes reveal themselves to
  nobody or to everyone-then-vanish, skewing every ``n_v``;
* crash-like behaviour (:class:`CrashStrategy`) — correct until a chosen
  round, then silent;
* equivocation (:class:`EquivocatorStrategy`) — runs the real protocol but
  tells different halves of the network different values;
* fabrication (:class:`EchoForgerStrategy`,
  :class:`MembershipLiarStrategy`) — echoes for messages never sent and
  phantom participants;
* targeted attacks (:class:`ValueInjectorStrategy` against approximate
  agreement, :class:`QuorumSplitterStrategy` against consensus quorums,
  :class:`CoordinatorUsurperStrategy` against the rotor);
* chaos (:class:`RandomNoiseStrategy`) — randomized well-formed garbage.

All strategies work against any protocol built on :mod:`repro.sim`; the
protocol-aware ones take the message vocabulary as configuration.
"""

from repro.adversary.adaptive import AdaptiveStrategy
from repro.adversary.base import (
    ByzantineStrategy,
    ProtocolWrappingStrategy,
)
from repro.adversary.simple import (
    CrashStrategy,
    PresentOnlyStrategy,
    SilentStrategy,
)
from repro.adversary.equivocator import EquivocatorStrategy
from repro.adversary.forger import EchoForgerStrategy, MembershipLiarStrategy
from repro.adversary.injector import ValueInjectorStrategy
from repro.adversary.noise import RandomNoiseStrategy
from repro.adversary.splitter import (
    CoordinatorUsurperStrategy,
    QuorumSplitterStrategy,
)
from repro.adversary.registry import STRATEGY_BUILDERS, build_strategy

__all__ = [
    "AdaptiveStrategy",
    "ByzantineStrategy",
    "CoordinatorUsurperStrategy",
    "CrashStrategy",
    "EchoForgerStrategy",
    "EquivocatorStrategy",
    "MembershipLiarStrategy",
    "PresentOnlyStrategy",
    "ProtocolWrappingStrategy",
    "QuorumSplitterStrategy",
    "RandomNoiseStrategy",
    "STRATEGY_BUILDERS",
    "SilentStrategy",
    "ValueInjectorStrategy",
    "build_strategy",
]
