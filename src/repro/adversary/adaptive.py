"""An adaptive adversary: infers the protocol from the wire, then attacks.

All other strategies are told which protocol they face.  The adaptive
strategy is protocol-agnostic: it watches the message kinds flowing by
and picks the matching attack —

* `value` traffic (approximate agreement)  -> split extreme values;
* `input`/`prefer`/`strongprefer` (consensus family) -> mirror the
  observed kinds back, split between the two most popular payloads;
* `echo` traffic (RB / rotor / renaming)   -> echo-forge for phantoms;
* anything else -> stay merely present.

It is deliberately a *heuristic* adversary — the interesting result is
that it still cannot break anything at n > 3f (the integration tests run
it against every protocol).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.adversary.base import ByzantineStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView

QUORUM_KINDS = ("input", "prefer", "strongprefer")


class AdaptiveStrategy(ByzantineStrategy):
    """Watch, classify, attack."""

    def __init__(self, phantom_base: int = 10**8):
        self._announced = False
        self._phantom_base = phantom_base

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        sends: list[Send] = []
        if not self._announced:
            self._announced = True
            sends.append(self.broadcast("init"))
            sends.append(self.broadcast("present"))

        kinds = Counter(m.kind for m in view.inbox)
        ordered = sorted(view.all_nodes)
        half = len(ordered) // 2
        lower, upper = ordered[:half], ordered[half:]

        if kinds.get("value"):
            sends.extend(self.to(d, "value", -1e9) for d in lower)
            sends.extend(self.to(d, "value", 1e9) for d in upper)

        for kind in QUORUM_KINDS:
            if not kinds.get(kind):
                continue
            payloads = Counter(
                m.payload for m in view.inbox.filter(kind)
            ).most_common(2)
            value_a = payloads[0][0]
            value_b = payloads[1][0] if len(payloads) > 1 else value_a
            instance = next(
                iter(
                    m.instance
                    for m in view.inbox.filter(kind)
                ),
                None,
            )
            sends.extend(
                self.to(d, kind, value_a, instance=instance) for d in lower
            )
            sends.extend(
                self.to(d, kind, value_b, instance=instance) for d in upper
            )

        if kinds.get("echo"):
            phantom = self._phantom_base + view.node_id
            sends.append(self.broadcast("echo", phantom))

        return sends
