"""Named strategy registry for the CLI, sweeps, and benchmarks.

:func:`build_strategy` turns a strategy name into the
``(node_id, index) -> strategy`` factory that
:class:`repro.sim.runner.Scenario` expects.  Protocol-wrapping strategies
(crash, equivocator, splitter, usurper) need a ``protocol_factory`` that
builds a fresh honest protocol for the wrapped node.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.adversary.adaptive import AdaptiveStrategy
from repro.adversary.equivocator import EquivocatorStrategy
from repro.adversary.forger import EchoForgerStrategy, MembershipLiarStrategy
from repro.adversary.injector import ValueInjectorStrategy
from repro.adversary.noise import RandomNoiseStrategy
from repro.adversary.simple import (
    CrashStrategy,
    PresentOnlyStrategy,
    SilentStrategy,
)
from repro.adversary.splitter import (
    CoordinatorUsurperStrategy,
    QuorumSplitterStrategy,
)
from repro.errors import ConfigurationError
from repro.sim.node import Protocol
from repro.types import NodeId

ProtocolFactory = Callable[[], Protocol]
StrategyFactory = Callable[[NodeId, int], Any]

#: Strategy names that require a protocol_factory.
WRAPPING_STRATEGIES: frozenset[str] = frozenset(
    {"crash", "equivocator", "splitter", "usurper"}
)

#: All registered strategy names.
STRATEGY_BUILDERS: tuple[str, ...] = (
    "silent",
    "present-only",
    "crash",
    "equivocator",
    "echo-forger",
    "membership-liar",
    "value-injector",
    "noise",
    "splitter",
    "usurper",
    "adaptive",
)


def build_strategy(
    name: str,
    protocol_factory: ProtocolFactory | None = None,
    **kwargs: Any,
) -> StrategyFactory:
    """Return a Scenario-compatible factory for the named strategy."""
    if name in WRAPPING_STRATEGIES and protocol_factory is None:
        raise ConfigurationError(
            f"strategy {name!r} wraps an honest protocol; pass "
            "protocol_factory"
        )

    def factory(node_id: NodeId, index: int) -> Any:
        if name == "silent":
            return SilentStrategy()
        if name == "present-only":
            return PresentOnlyStrategy(**kwargs)
        if name == "crash":
            crash_round = kwargs.get("crash_round", 3 + index)
            return CrashStrategy(protocol_factory(), crash_round)
        if name == "equivocator":
            return EquivocatorStrategy(protocol_factory(), **kwargs)
        if name == "echo-forger":
            return EchoForgerStrategy(**kwargs)
        if name == "membership-liar":
            return MembershipLiarStrategy(**kwargs)
        if name == "value-injector":
            return ValueInjectorStrategy(**kwargs)
        if name == "noise":
            return RandomNoiseStrategy(**kwargs)
        if name == "splitter":
            return QuorumSplitterStrategy(protocol_factory(), **kwargs)
        if name == "usurper":
            return CoordinatorUsurperStrategy(protocol_factory(), **kwargs)
        if name == "adaptive":
            return AdaptiveStrategy(**kwargs)
        raise ConfigurationError(
            f"unknown strategy {name!r}; known: {', '.join(STRATEGY_BUILDERS)}"
        )

    return factory
