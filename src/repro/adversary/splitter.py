"""Targeted attacks on the consensus quorums and the rotor-coordinator.

:class:`QuorumSplitterStrategy` plays the honest consensus protocol but
splits every opinion-carrying message between two values, trying to push
two correct nodes into conflicting ``2n_v/3`` quorums — the situation
Lemma ``quorum`` proves impossible for ``n > 3f``.

:class:`CoordinatorUsurperStrategy` plays the rotor honestly (so it gets
added to every candidate set and is eventually selected coordinator) and
then, in its coordinator round, equivocates its opinion.  Theorem ``rc``
says a *correct* common coordinator round still happens before termination.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.adversary.base import ProtocolWrappingStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView
from repro.sim.node import Protocol

#: Consensus message kinds that carry opinions.
OPINION_KINDS: frozenset[str] = frozenset(
    {"input", "prefer", "strongprefer", "opinion"}
)


class QuorumSplitterStrategy(ProtocolWrappingStrategy):
    """Split every opinion message between ``value_a`` and ``value_b``.

    ``targets`` narrows the split to specific ids (a sampled committee,
    say); non-targets uniformly receive ``value_a`` so the attacker
    still looks single-voiced to bystanders.
    """

    def __init__(
        self,
        protocol: Protocol,
        value_a: Hashable = 0,
        value_b: Hashable = 1,
        kinds: frozenset[str] = OPINION_KINDS,
        targets: frozenset | None = None,
    ):
        super().__init__(protocol)
        self._value_a = value_a
        self._value_b = value_b
        self._kinds = kinds
        self._targets = targets

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        everyone = sorted(view.all_nodes)
        if self._targets is None:
            victims, bystanders = everyone, []
        else:
            victims = sorted(self._targets & view.all_nodes)
            bystanders = [nid for nid in everyone if nid not in self._targets]
        half = len(victims) // 2
        lower, upper = victims[:half], victims[half:]
        result: list[Send] = []
        for send in sends:
            if send.kind not in self._kinds:
                result.append(send)
                continue
            side_a = Send(send.dest, send.kind, self._value_a, send.instance)
            side_b = Send(send.dest, send.kind, self._value_b, send.instance)
            result.extend(self.explode_broadcast(side_a, lower))
            result.extend(self.explode_broadcast(side_b, upper))
            if bystanders:
                result.extend(self.explode_broadcast(side_a, bystanders))
        return result


class CoordinatorUsurperStrategy(ProtocolWrappingStrategy):
    """Honest rotor participant that equivocates its coordinator opinion.

    Every ``opinion`` message it would send is split: opinion ``value_a``
    to the lower half, ``value_b`` to the upper half.  Everything else is
    passed through so the node remains a plausible candidate coordinator.
    """

    def __init__(
        self,
        protocol: Protocol,
        value_a: Hashable = 0,
        value_b: Hashable = 1,
    ):
        super().__init__(protocol)
        self._value_a = value_a
        self._value_b = value_b

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        ordered = sorted(view.all_nodes)
        half = len(ordered) // 2
        lower, upper = ordered[:half], ordered[half:]
        result: list[Send] = []
        for send in sends:
            if send.kind != "opinion":
                result.append(send)
                continue
            side_a = Send(send.dest, send.kind, self._value_a, send.instance)
            side_b = Send(send.dest, send.kind, self._value_b, send.instance)
            result.extend(self.explode_broadcast(side_a, lower))
            result.extend(self.explode_broadcast(side_b, upper))
        return result
