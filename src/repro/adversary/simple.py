"""Under-participation and crash-style strategies.

These attack the paper's central quantity ``n_v`` (the number of nodes a
correct node has ever heard from).  A silent Byzantine node keeps itself out
of some nodes' ``n_v`` while other Byzantine nodes may still vouch for it; a
present-only node inflates every ``n_v`` and then contributes nothing to any
quorum; a crashing node flips between the two mid-protocol.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.adversary.base import ByzantineStrategy, ProtocolWrappingStrategy
from repro.sim.message import Send
from repro.sim.network import AdversaryView
from repro.sim.node import Protocol


class SilentStrategy(ByzantineStrategy):
    """Never sends anything.

    The weakest adversary, but not a no-op: a correct node's ``n_v`` then
    counts only the other participants, which shifts every ``n_v/3``
    threshold relative to the true ``n``.
    """

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        return ()


class PresentOnlyStrategy(ByzantineStrategy):
    """Broadcasts ``present`` in its first round, then stays silent.

    Inflates every correct node's ``n_v`` by one while never helping any
    quorum — the proofs' ``f_v'`` (counted faulty) with ``f_v'' = 0``
    (contributing faulty) case.
    """

    def __init__(self, kind: str = "present"):
        self._kind = kind
        self._announced = False

    def on_round(self, view: AdversaryView) -> Iterable[Send]:
        if self._announced:
            return ()
        self._announced = True
        return (self.broadcast(self._kind),)


class CrashStrategy(ProtocolWrappingStrategy):
    """Runs the correct protocol, then fail-stops at ``crash_round``.

    A clean benign-fault injection: the node is in every quorum up to the
    crash and in none after, without ever lying.
    """

    def __init__(self, protocol: Protocol, crash_round: int):
        super().__init__(protocol)
        self.crash_round = crash_round

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        if view.round >= self.crash_round:
            return ()
        return sends


class HalfCrashStrategy(ProtocolWrappingStrategy):
    """Crashes *mid-broadcast*: from ``crash_round`` on, each broadcast
    reaches only the lower-id half of the network.

    The classic "crash during send" behaviour that distinguishes Byzantine
    reliable broadcast from best-effort broadcast.
    """

    def __init__(self, protocol: Protocol, crash_round: int):
        super().__init__(protocol)
        self.crash_round = crash_round

    def transform(
        self, sends: list[Send], view: AdversaryView
    ) -> Iterable[Send]:
        if view.round < self.crash_round:
            return sends
        if view.round > self.crash_round:
            return ()
        lower_half = sorted(view.all_nodes)[: max(1, len(view.all_nodes) // 2)]
        partial: list[Send] = []
        for send in sends:
            partial.extend(self.explode_broadcast(send, lower_half))
        return partial


def crash_factory(
    protocol_factory: Callable[[], Protocol], crash_round: int
) -> Callable[[], CrashStrategy]:
    """Convenience: a zero-arg factory producing fresh crash strategies."""

    def build() -> CrashStrategy:
        return CrashStrategy(protocol_factory(), crash_round)

    return build
