"""Shared primitive types for the id-only model.

The paper's model gives every node a unique but *not necessarily
consecutive* identifier and nothing else: no knowledge of ``n`` (number of
participants) or ``f`` (upper bound on Byzantine participants).  To make
that explicit throughout the codebase, node identifiers are plain integers
drawn from an arbitrary (sparse) space, and the aliases below are used in
signatures instead of bare ``int``.
"""

from __future__ import annotations

from typing import TypeAlias

#: A node identifier.  Unique, not necessarily consecutive, not necessarily
#: small.  The simulator assigns these; protocols must never assume density.
NodeId: TypeAlias = int

#: A round number.  Rounds are 1-based in the simulator (round 1 delivers
#: nothing and carries the initial sends).
Round: TypeAlias = int

#: Values carried by agreement protocols.  The paper uses binary values for
#: classic consensus, reals for early-terminating consensus and approximate
#: agreement, and opaque event payloads for total ordering.  Any hashable,
#: comparable value works.
Value: TypeAlias = object

#: The ``bottom`` value used by parallel consensus for "no opinion".  A
#: dedicated singleton keeps it distinct from every user value including
#: ``None``.


class _Bottom:
    """Singleton marker for the paper's ``⊥`` (no opinion)."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


#: The canonical ``⊥`` instance.
BOTTOM = _Bottom()


def is_bottom(value: object) -> bool:
    """Return True when *value* is the ``⊥`` marker."""
    return value is BOTTOM
