"""Dynamic membership schedules.

The paper's dynamic model (§ Application to Dynamic Networks) lets the
adversary decide, before each round, which nodes join — subject to
``n > 3f`` holding when the round starts.  Correct nodes decide themselves
when to leave (announcing ``absent``); the adversary decides when faulty
nodes leave.  A :class:`MembershipSchedule` captures the adversary's side of
that: scheduled joins and scheduled (forced) leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.types import NodeId, Round


@dataclass(frozen=True)
class JoinSpec:
    """One node joining the network at the start of *round*.

    ``factory`` builds the node's behaviour: a
    :class:`~repro.sim.node.Protocol` for a correct node, or a Byzantine
    strategy when ``byzantine`` is True.
    """

    round: Round
    node_id: NodeId
    factory: Callable[[], Any]
    byzantine: bool = False


@dataclass(frozen=True)
class LeaveSpec:
    """A forced departure (adversary removing a faulty node, or a crash)."""

    round: Round
    node_id: NodeId


@dataclass
class MembershipSchedule:
    """Scheduled joins and forced leaves for one run.

    The engine asks :meth:`joins_at`/:meth:`leaves_at` once per round;
    both answer out of round-keyed buckets, so a 10k-entry campaign
    schedule costs O(1) per round instead of an O(schedule) scan.  The
    buckets are rebuilt lazily whenever the entry counts change, so
    callers that extend ``joins``/``leaves`` directly (rather than via
    :meth:`join`/:meth:`leave`) stay correct.
    """

    joins: list[JoinSpec] = field(default_factory=list)
    leaves: list[LeaveSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._join_buckets: dict[Round, list[JoinSpec]] = {}
        self._leave_buckets: dict[Round, list[LeaveSpec]] = {}
        self._bucketed = (-1, -1)  # force a build on first query

    def _rebucket(self) -> None:
        counts = (len(self.joins), len(self.leaves))
        if counts == self._bucketed:
            return
        self._join_buckets = {}
        for join in self.joins:
            self._join_buckets.setdefault(join.round, []).append(join)
        self._leave_buckets = {}
        for leave in self.leaves:
            self._leave_buckets.setdefault(leave.round, []).append(leave)
        self._bucketed = counts

    def join(
        self,
        round_no: Round,
        node_id: NodeId,
        factory: Callable[[], Any],
        byzantine: bool = False,
    ) -> "MembershipSchedule":
        self.joins.append(JoinSpec(round_no, node_id, factory, byzantine))
        return self

    def leave(self, round_no: Round, node_id: NodeId) -> "MembershipSchedule":
        self.leaves.append(LeaveSpec(round_no, node_id))
        return self

    def joins_at(self, round_no: Round) -> list[JoinSpec]:
        self._rebucket()
        return list(self._join_buckets.get(round_no, ()))

    def leaves_at(self, round_no: Round) -> list[LeaveSpec]:
        self._rebucket()
        return list(self._leave_buckets.get(round_no, ()))

    def is_empty(self) -> bool:
        return not self.joins and not self.leaves
