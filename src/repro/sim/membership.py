"""Dynamic membership schedules.

The paper's dynamic model (§ Application to Dynamic Networks) lets the
adversary decide, before each round, which nodes join — subject to
``n > 3f`` holding when the round starts.  Correct nodes decide themselves
when to leave (announcing ``absent``); the adversary decides when faulty
nodes leave.  A :class:`MembershipSchedule` captures the adversary's side of
that: scheduled joins and scheduled (forced) leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.types import NodeId, Round


@dataclass(frozen=True)
class JoinSpec:
    """One node joining the network at the start of *round*.

    ``factory`` builds the node's behaviour: a
    :class:`~repro.sim.node.Protocol` for a correct node, or a Byzantine
    strategy when ``byzantine`` is True.
    """

    round: Round
    node_id: NodeId
    factory: Callable[[], Any]
    byzantine: bool = False


@dataclass(frozen=True)
class LeaveSpec:
    """A forced departure (adversary removing a faulty node, or a crash)."""

    round: Round
    node_id: NodeId


@dataclass
class MembershipSchedule:
    """Scheduled joins and forced leaves for one run."""

    joins: list[JoinSpec] = field(default_factory=list)
    leaves: list[LeaveSpec] = field(default_factory=list)

    def join(
        self,
        round_no: Round,
        node_id: NodeId,
        factory: Callable[[], Any],
        byzantine: bool = False,
    ) -> "MembershipSchedule":
        self.joins.append(JoinSpec(round_no, node_id, factory, byzantine))
        return self

    def leave(self, round_no: Round, node_id: NodeId) -> "MembershipSchedule":
        self.leaves.append(LeaveSpec(round_no, node_id))
        return self

    def joins_at(self, round_no: Round) -> list[JoinSpec]:
        return [j for j in self.joins if j.round == round_no]

    def leaves_at(self, round_no: Round) -> list[LeaveSpec]:
        return [l for l in self.leaves if l.round == round_no]

    def is_empty(self) -> bool:
        return not self.joins and not self.leaves
