"""The synchronous round engine.

Executes the id-only model exactly:

* lock-step rounds; messages sent in round ``r`` arrive at round ``r + 1``;
* broadcasts reach every participant alive at delivery time (including the
  sender — the paper's approximate agreement broadcasts "to all the nodes
  (including self)", and including nodes that join between send and
  delivery: the broadcast recipient set is resolved when the messages are
  handed out, not when they are queued);
* a correct node may direct-send only to prior contacts; the engine stamps
  sender ids so they cannot be forged;
* duplicate messages from one sender within one round are discarded;
* Byzantine actors run *after* the correct nodes each round and — in rushing
  mode — see the correct nodes' current-round traffic before choosing their
  own, the strongest adversary the model admits.

The engine knows nothing about any particular protocol; it moves messages,
tracks contacts, applies membership changes, and publishes everything
observable onto the run's :class:`~repro.obs.bus.EventBus` — the default
:class:`~repro.sim.metrics.Metrics` and :class:`~repro.sim.trace.Trace`
are ordinary subscribers of that bus, as are monitors, recorders, and
JSONL sinks (see docs/observability.md).  Per-topic sinks are cached
against the bus version, so a topic nobody subscribed to costs the hot
path one ``None`` check per emission site.

Staging is O(logical sends), not O(sends x recipients): each ``Send`` is
stamped into its immutable :class:`~repro.sim.message.Message` exactly once,
broadcasts go into one per-round shared queue (every recipient's inbox
aliases the same tuple of message objects), and only direct sends occupy
per-node queues.  Duplicate suppression happens against the precomputed
broadcast key set plus a small per-recipient set over the direct queue, so
the all-broadcast hot path performs no per-recipient hashing at all.

Delivery is O(quorum work), not O(nodes x quorum work): recipients of the
shared broadcast tuple also alias one shared
:class:`~repro.sim.inbox.InboxIndex`, so each per-kind distinct-sender
count the protocols ask for is computed once per round, not once per node;
recipients with surviving direct messages get a private overlay index
layered on the shared one.  The protocols' *quorum-tally plane* rides the
same sharing one layer up: per-instance decoded vote bases, membership
back-fill sets and membership restrictions are memoized on the round's
shared index (:meth:`~repro.sim.inbox.InboxIndex.derive` /
:meth:`~repro.sim.inbox.InboxIndex.restricted`), so even full
parallel-consensus tallies are built once per round and only per-node
substitution deltas remain per recipient.  Per-node engine state that is
identical from round to round (the contacts frozenset handed to NodeApi,
the sorted alive-node lists) is cached and invalidated only when it can
change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence
from typing import Protocol as TypingProtocol

from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.obs.bus import EventBus
from repro.obs.events import (
    DecisionEconomy,
    EnginePhase,
    InboxDelivered,
    MessageBatchSent,
    MessageSent,
    PlaneStats,
    ProtocolEvent,
    RoundEnded,
    RoundStarted,
    RunStarted,
)
from repro.sim.columnar import ColumnarIndex, ColumnarMessages, ColumnarPlane
from repro.sim.inbox import Inbox, InboxIndex
from repro.sim.membership import MembershipSchedule
from repro.sim.message import (
    BROADCAST,
    BatchSend,
    Message,
    Outbox,
    Send,
)
from repro.sim.metrics import Metrics
from repro.sim.node import NodeApi, Protocol
from repro.sim.rng import Random, make_rng
from repro.sim.trace import Trace
from repro.types import NodeId, Round


#: Shared empty inbox for nodes with no deliveries this round.  Inboxes
#: are immutable views, so one instance serves every such node.
_EMPTY_INBOX = Inbox()


class ByzantineActor(TypingProtocol):
    """Structural interface for Byzantine strategies (see repro.adversary)."""

    def on_round(self, view: "AdversaryView") -> Iterable[Send]:
        """Return this round's (arbitrary) sends."""
        ...


@dataclass
class AdversaryView:
    """Everything a Byzantine node gets to see in one round.

    The adversary is omniscient about membership ("it can behave as if it
    already knows all the nodes") and, in rushing mode, also sees what every
    correct node just sent this round before speaking itself.
    """

    node_id: NodeId
    round: Round
    inbox: Inbox
    all_nodes: frozenset[NodeId]
    correct_nodes: frozenset[NodeId]
    byzantine_nodes: frozenset[NodeId]
    rng: Random
    #: (sender, send) pairs from correct nodes this round; empty unless the
    #: network runs in rushing mode.
    correct_traffic: tuple[tuple[NodeId, Send], ...] = ()


@dataclass
class _NodeState:
    """Engine-internal per-node bookkeeping."""

    node_id: NodeId
    behaviour: Any  # Protocol or ByzantineActor
    byzantine: bool
    alive: bool = True
    joined_round: Round = 1
    left_round: Round | None = None
    contacts: set[NodeId] = field(default_factory=set)
    #: Stamped direct messages queued for delivery at the next round.
    #: Broadcasts never appear here — they live in the network's shared
    #: per-round broadcast queue and are resolved at delivery time.
    direct: list[Message] = field(default_factory=list)
    #: Cached frozenset view of ``contacts`` for NodeApi construction.
    #: Contacts only ever grow (delivery-time ``update`` calls), so a
    #: length match proves the cache is current — the steady-state round
    #: rebuilds nothing.
    contacts_frozen: frozenset[NodeId] = frozenset()
    #: On the columnar path, a founding node's contacts are exactly the
    #: engine's cumulative broadcast-sender pool — shared as one
    #: frozenset across all such nodes, no per-node set at all.  The
    #: flag drops (and ``contacts`` takes over, seeded from the pool)
    #: the first time the node receives a direct message.
    contacts_shared: bool = False
    #: Recycled per-node NodeApi (round / contacts / outbox fields are
    #: refreshed each round before ``on_round`` runs).  The engine drains
    #: the outbox within the same round, so reuse is unobservable to a
    #: well-behaved protocol and saves two allocations per node-round.
    api: NodeApi | None = None

    @property
    def protocol(self) -> Protocol:
        return self.behaviour

    def contacts_view(self) -> frozenset[NodeId]:
        frozen = self.contacts_frozen
        if len(frozen) != len(self.contacts):
            frozen = self.contacts_frozen = frozenset(self.contacts)
        return frozen


class SyncNetwork:
    """A synchronous network of correct protocols and Byzantine actors."""

    def __init__(
        self,
        seed: int | None = 0,
        rushing: bool = False,
        membership: MembershipSchedule | None = None,
        measure_bytes: bool = False,
        clock: Callable[[], float] | None = None,
        bus: EventBus | None = None,
        columnar: bool = True,
    ):
        self.seed = seed
        self._rng = make_rng(seed)
        self.rushing = rushing
        self.membership = membership or MembershipSchedule()
        #: The run's event plane.  Pass a shared bus to observe several
        #: networks on one stream; by default each network gets its own,
        #: pre-wired with a Metrics and a Trace subscriber (detach them
        #: via metrics.detach(bus) / trace.detach(bus) for a bare bus).
        self.bus = bus if bus is not None else EventBus()
        self.metrics = Metrics().attach(self.bus)
        self.trace = Trace().attach(self.bus)
        self.round: Round = 0
        #: When set, every logical send is also costed in wire bytes
        #: using the repro.net frame codec (see Metrics.bytes_total).
        self.measure_bytes = measure_bytes
        #: Optional monotonic-time source for per-phase engine timing
        #: (Metrics.engine_time_by_phase).  The simulation itself never
        #: reads a clock — timing is observability only, injected by
        #: benchmarks, so determinism is untouched.
        self._clock = clock
        self._nodes: dict[NodeId, _NodeState] = {}
        #: The columnar round plane (docs/model.md "Columnar delivery"):
        #: broadcasts stage into per-round struct-of-arrays columns, and
        #: recipients get counting views instead of message objects.
        #: Disabled when a subclass overrides ``_filter_deliveries`` —
        #: per-recipient delivery filtering needs real per-message
        #: objects, so e.g. LossyNetwork rides the object path.
        self._columnar = (
            columnar
            and type(self)._filter_deliveries
            is SyncNetwork._filter_deliveries
        )
        self._plane = ColumnarPlane() if self._columnar else None
        #: Why the plane is off ("disabled" / "filter-override"), None
        #: when it is on.  Reported once via a downgraded PlaneStats
        #: event at the first round end, so observers can tell the
        #: object path from "no stats yet".
        self._plane_fallback = (
            None
            if self._columnar
            else ("disabled" if not columnar else "filter-override")
        )
        self._fallback_reported = False
        #: The columns this round's broadcasts stage into (columnar
        #: mode), swapped for a fresh instance at each delivery.
        self._staging_cols = (
            self._plane.new_round() if self._plane is not None else None
        )
        #: Cumulative broadcast-sender pool: the shared contacts
        #: frozenset for founding nodes on the columnar path.
        self._contact_pool: frozenset[NodeId] = frozenset()
        #: Round-r broadcast queue (object path): one shared Message per
        #: logical broadcast, delivered to every node alive at r + 1.
        self._broadcasts: list[Message] = []
        #: Value-equality keys of the queued broadcasts, for O(1)
        #: duplicate suppression at stage and delivery time.
        self._broadcast_keys: set[Message] = set()
        #: Sorted alive-node lists keyed by byzantine flag, rebuilt only
        #: when the population changes (join / leave / removal).
        self._alive_cache: dict[bool, list[_NodeState]] = {}
        #: Per-topic emission sinks, snapshotted from the bus and
        #: rebuilt only when its version changes (see _refresh_sinks).
        self._bus_version = -1
        self._emit_round_start = None
        self._emit_round_end = None
        self._emit_send = None
        self._emit_batch = None
        self._emit_deliver = None
        self._emit_phase = None
        self._emit_plane = None
        self._protocol_sink = None
        self._refresh_sinks()

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------
    def add_correct(self, node_id: NodeId, protocol: Protocol) -> None:
        """Register a correct node before (or during) the run."""
        self._register(node_id, protocol, byzantine=False)

    def add_byzantine(self, node_id: NodeId, strategy: ByzantineActor) -> None:
        """Register a Byzantine node before (or during) the run."""
        self._register(node_id, strategy, byzantine=True)

    def _register(self, node_id: NodeId, behaviour: Any, byzantine: bool) -> None:
        existing = self._nodes.get(node_id)
        if existing is not None:
            if existing.alive:
                raise ConfigurationError(f"duplicate node id {node_id}")
            # A departed id may rejoin (crash-recover churn): the node
            # comes back as a brand-new participant — fresh behaviour,
            # empty contacts, joiner handshake — its pre-crash state and
            # outputs are gone.
            del self._nodes[node_id]
        self._nodes[node_id] = _NodeState(
            node_id=node_id,
            behaviour=behaviour,
            byzantine=byzantine,
            joined_round=max(self.round + 1, 1),
            # Founding nodes see every broadcast round, so their
            # contacts are exactly the engine's cumulative sender pool;
            # joiners miss earlier rounds and track contacts privately.
            contacts_shared=self._columnar and self.round == 0,
        )
        self._alive_cache.clear()

    def remove(self, node_id: NodeId) -> None:
        """Forcibly remove a node (adversary-driven leave / crash)."""
        state = self._nodes.get(node_id)
        if state is not None and state.alive:
            state.alive = False
            state.left_round = self.round
            self._alive_cache.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> frozenset[NodeId]:
        return frozenset(self._nodes)

    @property
    def alive_ids(self) -> frozenset[NodeId]:
        return frozenset(nid for nid, s in self._nodes.items() if s.alive)

    @property
    def correct_ids(self) -> frozenset[NodeId]:
        return frozenset(
            nid for nid, s in self._nodes.items() if not s.byzantine
        )

    @property
    def byzantine_ids(self) -> frozenset[NodeId]:
        return frozenset(nid for nid, s in self._nodes.items() if s.byzantine)

    def protocol_of(self, node_id: NodeId) -> Protocol:
        state = self._nodes[node_id]
        if state.byzantine:
            raise ConfigurationError(f"node {node_id} is Byzantine")
        return state.protocol

    def protocols(self) -> dict[NodeId, Protocol]:
        """Map of correct node id -> protocol instance."""
        return {
            nid: s.protocol
            for nid, s in self._nodes.items()
            if not s.byzantine
        }

    def outputs(self) -> dict[NodeId, Any]:
        """Outputs of the correct nodes that have decided so far."""
        return {
            nid: s.protocol.output
            for nid, s in self._nodes.items()
            if not s.byzantine and s.protocol.halted
        }

    def all_correct_halted(self) -> bool:
        return all(
            s.protocol.halted
            for s in self._nodes.values()
            if not s.byzantine and s.alive
        )

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, until_all_halted: bool = True) -> int:
        """Run rounds until every live correct node halts (or the budget
        runs out).  Returns the number of the last executed round.

        With ``until_all_halted=False`` the engine always runs exactly
        ``max_rounds`` rounds (for non-terminating abstractions).
        """
        for _ in range(max_rounds):
            self.step()
            if until_all_halted and self.all_correct_halted():
                self._emit_economy()
                return self.round
        if until_all_halted and not self.all_correct_halted():
            running = [
                s.node_id
                for s in self._nodes.values()
                if not s.byzantine and s.alive and not s.protocol.halted
            ]
            raise RoundLimitExceeded(max_rounds, running)
        self._emit_economy()
        return self.round

    def _emit_economy(self) -> None:
        """Publish the run's message economy (once, at run end).

        Totals come from this network's default Metrics subscriber; a
        caller that detached it gets zero totals (the decisions count is
        the engine's own).
        """
        sink = self.bus.sink(DecisionEconomy.topic)
        if sink is None:
            return
        decisions = sum(
            1
            for s in self._nodes.values()
            if not s.byzantine
            and s.protocol.halted
            and s.protocol.output is not None
        )
        sends = self.metrics.sends_total
        wire = self.metrics.bytes_total
        sink(
            DecisionEconomy(
                self.round,
                decisions,
                sends,
                wire,
                sends / decisions if decisions else 0.0,
                wire / decisions if decisions else 0.0,
            )
        )

    def _refresh_sinks(self) -> None:
        """Re-snapshot the per-topic dispatchers.

        A ``None`` sink is the zero-cost contract: nobody listens, so
        the emission site skips constructing the event entirely.
        """
        bus = self.bus
        self._bus_version = bus.version
        self._emit_round_start = bus.sink(RoundStarted.topic)
        self._emit_round_end = bus.sink(RoundEnded.topic)
        self._emit_send = bus.sink(MessageSent.topic)
        self._emit_batch = bus.sink(MessageBatchSent.topic)
        self._emit_deliver = bus.sink(InboxDelivered.topic)
        self._emit_phase = bus.sink(EnginePhase.topic)
        self._emit_plane = bus.sink(PlaneStats.topic)
        sink = bus.sink(ProtocolEvent.topic)
        if sink is None:
            self._protocol_sink = None
        else:
            def protocol_sink(round_no, node, event, detail, _sink=sink):
                _sink(ProtocolEvent(round_no, node, event, dict(detail)))

            self._protocol_sink = protocol_sink

    def step(self) -> None:
        """Execute one synchronous round."""
        if self.bus.version != self._bus_version:
            self._refresh_sinks()
        self.round += 1
        if self.round == 1:
            run_start = self.bus.sink(RunStarted.topic)
            if run_start is not None:
                run_start(RunStarted("sim", self.seed))
        if self._emit_round_start is not None:
            self._emit_round_start(RoundStarted(self.round))
        clock = self._clock
        t0 = clock() if clock else 0.0
        self._apply_membership()

        if self._columnar:
            inboxes = self._collect_columnar()
        else:
            inboxes = self._collect_inboxes()
        t1 = clock() if clock else 0.0

        correct_sends: list[tuple[NodeId, Send]] = []
        run_correct = self._run_correct
        get_inbox = inboxes.get
        for state in self._iter_alive(byzantine=False):
            sends = run_correct(
                state, get_inbox(state.node_id, _EMPTY_INBOX)
            )
            if sends:
                node_id = state.node_id
                correct_sends.extend([(node_id, s) for s in sends])
        t2 = clock() if clock else 0.0

        byz_sends: list[tuple[NodeId, Send]] = []
        byzantine_states = self._iter_alive(byzantine=True)
        if byzantine_states:
            if self.rushing:
                # Adversary strategies see per-send granularity: batched
                # fan-outs expand to their equivalent scalar broadcasts.
                rushing_traffic = tuple(
                    (node_id, sub)
                    for node_id, send in correct_sends
                    for sub in (
                        send.expanded()
                        if type(send) is BatchSend
                        else (send,)
                    )
                )
            else:
                rushing_traffic = ()
            alive = self.alive_ids
            correct_alive = self.correct_ids & alive
            byzantine_alive = self.byzantine_ids & alive
            for state in byzantine_states:
                view = AdversaryView(
                    node_id=state.node_id,
                    round=self.round,
                    inbox=inboxes.get(state.node_id, _EMPTY_INBOX),
                    all_nodes=alive,
                    correct_nodes=correct_alive,
                    byzantine_nodes=byzantine_alive,
                    rng=self._rng,
                    correct_traffic=rushing_traffic,
                )
                for send in state.behaviour.on_round(view):
                    byz_sends.append((state.node_id, send))
        t3 = clock() if clock else 0.0

        if self._columnar:
            self._stage_columnar(correct_sends)
            self._stage_columnar(byz_sends)
        else:
            self._stage(correct_sends)
            self._stage(byz_sends)
        emit_phase = self._emit_phase
        if clock and emit_phase is not None:
            t4 = clock()
            round_no = self.round
            emit_phase(EnginePhase(round_no, "deliver", t1 - t0))
            emit_phase(EnginePhase(round_no, "correct", t2 - t1))
            emit_phase(EnginePhase(round_no, "adversary", t3 - t2))
            emit_phase(EnginePhase(round_no, "stage", t4 - t3))
        emit_plane = self._emit_plane
        if emit_plane is not None:
            plane = self._plane
            if plane is not None:
                emit_plane(
                    PlaneStats(
                        self.round,
                        plane.payload_intern_hits,
                        plane.unique_payloads,
                        True,
                        None,
                        plane.messages_materialized,
                    )
                )
            elif not self._fallback_reported:
                # Object path: say so once, with the downgrade reason.
                self._fallback_reported = True
                emit_plane(
                    PlaneStats(
                        self.round, 0, 0, False, self._plane_fallback, 0
                    )
                )
        if self._emit_round_end is not None:
            self._emit_round_end(RoundEnded(self.round))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _iter_alive(self, byzantine: bool) -> list[_NodeState]:
        # Deterministic order: ascending node id.  The sorted list is
        # cached until the population changes (register / remove), so
        # the steady-state round pays no per-round sort.
        cached = self._alive_cache.get(byzantine)
        if cached is None:
            cached = sorted(
                (
                    s
                    for s in self._nodes.values()
                    if s.alive and s.byzantine == byzantine
                ),
                key=lambda s: s.node_id,
            )
            self._alive_cache[byzantine] = cached
        return cached

    def _apply_membership(self) -> None:
        for spec in self.membership.joins_at(self.round):
            behaviour = spec.factory()
            self._register(spec.node_id, behaviour, byzantine=spec.byzantine)
            # _register sets joined_round to round+1; fix to this round.
            self._nodes[spec.node_id].joined_round = self.round
        for spec in self.membership.leaves_at(self.round):
            self.remove(spec.node_id)

    def _collect_inboxes(self) -> dict[NodeId, Inbox]:
        """Deliver the previous round's traffic.

        The broadcast recipient set is resolved *here* — after this
        round's membership changes — so a node joining at round ``r + 1``
        receives the round-``r`` broadcasts (the model's "reaches every
        node, including ones it has never heard of").  Every recipient's
        inbox shares one tuple of broadcast message objects *and one
        query index over it*: per-kind buckets and distinct-sender
        tallies are built once per round, by whichever recipient asks
        first, instead of once per node.  Recipients whose delivery adds
        direct messages get a private overlay index layered on the
        shared one; only those direct extras need per-recipient work.
        """
        broadcasts = tuple(self._broadcasts)
        broadcast_keys = self._broadcast_keys
        self._broadcasts = []
        self._broadcast_keys = set()
        broadcast_senders = {m.sender for m in broadcasts}
        shared_index: InboxIndex | None = None

        inboxes: dict[NodeId, Inbox] = {}
        round_no = self.round
        emit_deliver = self._emit_deliver
        for state in self._nodes.values():
            direct = state.direct
            if direct:
                state.direct = []
            if not state.alive:
                continue
            extras: tuple[Message, ...] = ()
            if direct:
                seen: set[Message] = set()
                fresh: list[Message] = []
                for message in direct:
                    # Per-round duplicate suppression, keyed on the
                    # stamped message: identical directs, and a direct
                    # repeating one of this round's broadcasts, collapse.
                    if message in broadcast_keys or message in seen:
                        continue
                    seen.add(message)
                    fresh.append(message)
                extras = tuple(fresh)
            # When every direct deduplicated against this round's
            # broadcasts, the recipient rides the shared tuple/index and
            # the cheap broadcast-contacts path like everyone else.
            raw: Sequence[Message] = (
                broadcasts + extras if extras else broadcasts
            )
            delivered = self._filter_deliveries(state, raw)
            if not delivered:
                continue
            if delivered is raw:
                if extras and broadcasts:
                    if shared_index is None:
                        shared_index = InboxIndex(broadcasts)
                    inbox = Inbox(
                        index=InboxIndex.layered(shared_index, extras)
                    )
                    state.contacts.update(broadcast_senders)
                    state.contacts.update(m.sender for m in extras)
                elif extras:
                    inbox = Inbox(extras)
                    state.contacts.update(m.sender for m in extras)
                else:
                    if shared_index is None:
                        shared_index = InboxIndex(broadcasts)
                    inbox = Inbox(index=shared_index)
                    state.contacts.update(broadcast_senders)
            else:
                inbox = Inbox(delivered)
                state.contacts.update(m.sender for m in delivered)
            if emit_deliver is not None:
                # ``delivered`` equals the inbox's message sequence in
                # every branch above; the shared-broadcast path emits
                # the round's shared tuple itself, so the event costs
                # no copies.
                emit_deliver(
                    InboxDelivered(
                        round_no,
                        state.node_id,
                        delivered
                        if type(delivered) is tuple
                        else tuple(delivered),
                    )
                )
            inboxes[state.node_id] = inbox
        return inboxes

    def _collect_columnar(self) -> dict[NodeId, Inbox]:
        """Columnar-plane delivery: views over columns, no message objects.

        Same delivery semantics as :meth:`_collect_inboxes` (resolved
        recipient set, direct-vs-broadcast dedup, contact tracking), but
        the round's broadcasts live in frozen struct-of-arrays columns:
        every recipient shares one :class:`ColumnarIndex` view, contact
        tracking is one cumulative pool update per round instead of a
        per-node set union, and ``deliver`` events carry a lazy message
        sequence that only materializes if somebody iterates it.
        """
        cols = self._staging_cols
        self._staging_cols = self._plane.new_round()
        has_broadcasts = len(cols) > 0
        broadcast_senders: frozenset[NodeId] = frozenset()
        if has_broadcasts:
            broadcast_senders = cols.distinct_senders()
            if not broadcast_senders <= self._contact_pool:
                self._contact_pool = self._contact_pool | broadcast_senders

        shared_index: ColumnarIndex | None = None
        shared_inbox: Inbox | None = None
        shared_view: ColumnarMessages | None = None
        inboxes: dict[NodeId, Inbox] = {}
        round_no = self.round
        emit_deliver = self._emit_deliver
        pool = self._contact_pool
        for state in self._nodes.values():
            direct = state.direct
            if direct:
                state.direct = []
            if not state.alive:
                continue
            extras: tuple[Message, ...] = ()
            if direct:
                seen: set[Message] = set()
                fresh: list[Message] = []
                for message in direct:
                    if cols.contains_message(message) or message in seen:
                        continue
                    seen.add(message)
                    fresh.append(message)
                extras = tuple(fresh)
            if extras:
                # Direct deliveries are the rare, genuinely per-node
                # case: take the object path (materializing the shared
                # columns once if broadcasts ride along).
                if state.contacts_shared:
                    state.contacts_shared = False
                    state.contacts = set(pool)
                if has_broadcasts:
                    if shared_index is None:
                        shared_index = ColumnarIndex(cols)
                        shared_inbox = Inbox(index=shared_index)
                        shared_view = shared_index.message_view()
                    inbox = Inbox(
                        index=InboxIndex.layered(shared_index, extras)
                    )
                    delivered: Sequence[Message] = (
                        shared_index.messages + extras
                    )
                    state.contacts.update(broadcast_senders)
                else:
                    inbox = Inbox(extras)
                    delivered = extras
                state.contacts.update(m.sender for m in extras)
            elif has_broadcasts:
                if shared_inbox is None:
                    shared_index = ColumnarIndex(cols)
                    shared_inbox = Inbox(index=shared_index)
                    shared_view = shared_index.message_view()
                inbox = shared_inbox
                delivered = shared_view
                if not state.contacts_shared:
                    state.contacts.update(broadcast_senders)
            else:
                continue
            if emit_deliver is not None:
                emit_deliver(
                    InboxDelivered(round_no, state.node_id, delivered)
                )
            inboxes[state.node_id] = inbox
        return inboxes

    def _filter_deliveries(
        self, state: _NodeState, messages: Sequence[Message]
    ) -> Sequence[Message]:
        """Hook: the messages actually handed to *state* this round.

        The base engine delivers everything (the model's synchrony
        guarantee); :class:`~repro.sim.lossy.LossyNetwork` overrides this
        to drop deliveries.  ``messages`` may be the shared broadcast
        tuple — implementations must not mutate it.
        """
        return messages

    def _run_correct(
        self, state: _NodeState, inbox: Inbox
    ) -> list[Send] | tuple[Send, ...]:
        protocol = state.behaviour
        if protocol.halted:
            return ()
        api = state.api
        if api is None:
            api = state.api = NodeApi(
                state.node_id,
                self.round,
                self._contact_pool
                if state.contacts_shared
                else state.contacts_view(),
                Outbox(),
                self._protocol_sink,
            )
        else:
            api.round = self.round
            # Re-point at the current protocol sink: subscriptions may
            # have changed between rounds (None = nobody listens).
            api._trace_sink = self._protocol_sink
            if state.contacts_shared:
                # Columnar path: founding nodes alias the engine's
                # cumulative broadcast-sender pool — O(1) per node.
                api._known_contacts = self._contact_pool
            else:
                # contacts_view() inlined: runs once per node per round.
                frozen = state.contacts_frozen
                if len(frozen) != len(state.contacts):
                    frozen = state.contacts_frozen = frozenset(
                        state.contacts
                    )
                api._known_contacts = frozen
        outbox = api._outbox
        if outbox.sends:
            # A fresh list, not clear(): last round's sends were already
            # consumed by _stage, but anything still holding that list
            # must not see it emptied under its feet.
            outbox.sends = []
        protocol.on_round(api, inbox)
        return outbox.sends

    def _wire_cost(self, sender: NodeId, send: Send) -> int:
        """Size of the send as a repro.net frame (0 when not measuring)."""
        if not self.measure_bytes:
            return 0
        from repro.net.wire import encode_frame

        try:
            return len(
                encode_frame(
                    self.round, sender, send.kind, send.payload, send.instance
                )
            )
        except Exception:
            # Non-wire-representable payloads (test doubles etc.): fall
            # back to a repr-based estimate rather than failing the run.
            return len(repr((send.kind, send.payload, send.instance)))

    def _stage(self, sends: list[tuple[NodeId, Send]]) -> None:
        """Queue sends for delivery at the next round.

        O(len(sends)): each send is stamped into its Message exactly
        once.  Broadcasts join the shared per-round queue (recipients are
        resolved at delivery time); direct sends join the destination's
        queue if the destination currently exists and is alive.
        """
        round_no = self.round
        emit_send = self._emit_send
        for sender, send in sends:
            if type(send) is BatchSend:
                # Object path: a batch is indistinguishable from its
                # expansion (per-send staging, events and dedup).
                for sub in send.expanded():
                    self._stage_one(sender, sub, round_no, emit_send)
                continue
            self._stage_one(sender, send, round_no, emit_send)

    def _stage_one(
        self, sender: NodeId, send: Send, round_no: Round, emit_send
    ) -> None:
        message = send.stamped(sender)
        dest = send.dest
        if dest is BROADCAST:
            staged = message not in self._broadcast_keys
            if staged:
                self._broadcast_keys.add(message)
                self._broadcasts.append(message)
        else:
            state = self._nodes.get(dest)
            staged = state is not None and state.alive
            if staged:
                state.direct.append(message)
        if emit_send is not None:
            emit_send(
                MessageSent(
                    round_no,
                    sender,
                    send.kind,
                    send.payload,
                    send.instance,
                    None if dest is BROADCAST else dest,
                    self._wire_cost(sender, send),
                    staged,
                )
            )

    def _stage_columnar(self, sends: list[tuple[NodeId, Send]]) -> None:
        """Queue sends into the round's columns (columnar mode).

        Scalar broadcasts are four list appends; a batched fan-out is
        one interned segment per sender.  Direct sends still stamp real
        Message objects into the destination's queue — they are the
        per-node case the columns don't model.
        """
        round_no = self.round
        emit_send = self._emit_send
        emit_batch = self._emit_batch
        cols = self._staging_cols
        plane = self._plane
        measuring = self.measure_bytes
        for sender, send in sends:
            if type(send) is BatchSend:
                batch = plane.intern_batch(
                    send.kind, send.payloads, send.instance
                )
                staged_count, flags = cols.stage_batch(sender, batch)
                if emit_batch is not None and not measuring:
                    emit_batch(
                        MessageBatchSent(
                            round_no,
                            sender,
                            send.kind,
                            send.payloads,
                            send.instance,
                            0,
                            staged_count,
                            flags,
                        )
                    )
                elif emit_send is not None:
                    # No batch subscriber (or byte accounting, which is
                    # per-frame): emit the equivalent per-send events.
                    for i, payload in enumerate(send.payloads):
                        sub = Send(
                            BROADCAST, send.kind, payload, send.instance
                        )
                        emit_send(
                            MessageSent(
                                round_no,
                                sender,
                                send.kind,
                                payload,
                                send.instance,
                                None,
                                self._wire_cost(sender, sub),
                                bool(flags[i]) if flags is not None else True,
                            )
                        )
                continue
            dest = send.dest
            if dest is BROADCAST:
                staged = cols.stage(
                    sender, send.kind, send.payload, send.instance
                )
            else:
                state = self._nodes.get(dest)
                staged = state is not None and state.alive
                if staged:
                    state.direct.append(send.stamped(sender))
            if emit_send is not None:
                emit_send(
                    MessageSent(
                        round_no,
                        sender,
                        send.kind,
                        send.payload,
                        send.instance,
                        None if dest is BROADCAST else dest,
                        self._wire_cost(sender, send),
                        staged,
                    )
                )
