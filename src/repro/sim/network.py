"""The synchronous round engine.

Executes the id-only model exactly:

* lock-step rounds; messages sent in round ``r`` arrive at round ``r + 1``;
* broadcasts reach every participant alive at delivery time (including the
  sender — the paper's approximate agreement broadcasts "to all the nodes
  (including self)");
* a correct node may direct-send only to prior contacts; the engine stamps
  sender ids so they cannot be forged;
* duplicate messages from one sender within one round are discarded;
* Byzantine actors run *after* the correct nodes each round and — in rushing
  mode — see the correct nodes' current-round traffic before choosing their
  own, the strongest adversary the model admits.

The engine knows nothing about any particular protocol; it moves messages,
tracks contacts, applies membership changes, and records metrics/traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol as TypingProtocol

from repro.errors import ConfigurationError, RoundLimitExceeded
from repro.sim.inbox import Inbox
from repro.sim.membership import MembershipSchedule
from repro.sim.message import BROADCAST, Message, Outbox, Send
from repro.sim.metrics import Metrics
from repro.sim.node import NodeApi, Protocol
from repro.sim.rng import Random, make_rng
from repro.sim.trace import Trace
from repro.types import NodeId, Round


class ByzantineActor(TypingProtocol):
    """Structural interface for Byzantine strategies (see repro.adversary)."""

    def on_round(self, view: "AdversaryView") -> Iterable[Send]:
        """Return this round's (arbitrary) sends."""
        ...


@dataclass
class AdversaryView:
    """Everything a Byzantine node gets to see in one round.

    The adversary is omniscient about membership ("it can behave as if it
    already knows all the nodes") and, in rushing mode, also sees what every
    correct node just sent this round before speaking itself.
    """

    node_id: NodeId
    round: Round
    inbox: Inbox
    all_nodes: frozenset[NodeId]
    correct_nodes: frozenset[NodeId]
    byzantine_nodes: frozenset[NodeId]
    rng: Random
    #: (sender, send) pairs from correct nodes this round; empty unless the
    #: network runs in rushing mode.
    correct_traffic: tuple[tuple[NodeId, Send], ...] = ()


@dataclass
class _NodeState:
    """Engine-internal per-node bookkeeping."""

    node_id: NodeId
    behaviour: Any  # Protocol or ByzantineActor
    byzantine: bool
    alive: bool = True
    joined_round: Round = 1
    left_round: Round | None = None
    contacts: set[NodeId] = field(default_factory=set)
    pending: list[tuple[NodeId, Send]] = field(default_factory=list)

    @property
    def protocol(self) -> Protocol:
        return self.behaviour


class SyncNetwork:
    """A synchronous network of correct protocols and Byzantine actors."""

    def __init__(
        self,
        seed: int | None = 0,
        rushing: bool = False,
        membership: MembershipSchedule | None = None,
        measure_bytes: bool = False,
    ):
        self._rng = make_rng(seed)
        self.rushing = rushing
        self.membership = membership or MembershipSchedule()
        self.metrics = Metrics()
        self.trace = Trace()
        self.round: Round = 0
        #: When set, every logical send is also costed in wire bytes
        #: using the repro.net frame codec (see Metrics.bytes_total).
        self.measure_bytes = measure_bytes
        self._nodes: dict[NodeId, _NodeState] = {}

    # ------------------------------------------------------------------
    # Population management
    # ------------------------------------------------------------------
    def add_correct(self, node_id: NodeId, protocol: Protocol) -> None:
        """Register a correct node before (or during) the run."""
        self._register(node_id, protocol, byzantine=False)

    def add_byzantine(self, node_id: NodeId, strategy: ByzantineActor) -> None:
        """Register a Byzantine node before (or during) the run."""
        self._register(node_id, strategy, byzantine=True)

    def _register(self, node_id: NodeId, behaviour: Any, byzantine: bool) -> None:
        if node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node_id}")
        self._nodes[node_id] = _NodeState(
            node_id=node_id,
            behaviour=behaviour,
            byzantine=byzantine,
            joined_round=max(self.round + 1, 1),
        )

    def remove(self, node_id: NodeId) -> None:
        """Forcibly remove a node (adversary-driven leave / crash)."""
        state = self._nodes.get(node_id)
        if state is not None and state.alive:
            state.alive = False
            state.left_round = self.round

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> frozenset[NodeId]:
        return frozenset(self._nodes)

    @property
    def alive_ids(self) -> frozenset[NodeId]:
        return frozenset(nid for nid, s in self._nodes.items() if s.alive)

    @property
    def correct_ids(self) -> frozenset[NodeId]:
        return frozenset(
            nid for nid, s in self._nodes.items() if not s.byzantine
        )

    @property
    def byzantine_ids(self) -> frozenset[NodeId]:
        return frozenset(nid for nid, s in self._nodes.items() if s.byzantine)

    def protocol_of(self, node_id: NodeId) -> Protocol:
        state = self._nodes[node_id]
        if state.byzantine:
            raise ConfigurationError(f"node {node_id} is Byzantine")
        return state.protocol

    def protocols(self) -> dict[NodeId, Protocol]:
        """Map of correct node id -> protocol instance."""
        return {
            nid: s.protocol
            for nid, s in self._nodes.items()
            if not s.byzantine
        }

    def outputs(self) -> dict[NodeId, Any]:
        """Outputs of the correct nodes that have decided so far."""
        return {
            nid: s.protocol.output
            for nid, s in self._nodes.items()
            if not s.byzantine and s.protocol.halted
        }

    def all_correct_halted(self) -> bool:
        return all(
            s.protocol.halted
            for s in self._nodes.values()
            if not s.byzantine and s.alive
        )

    # ------------------------------------------------------------------
    # The round loop
    # ------------------------------------------------------------------
    def run(self, max_rounds: int, until_all_halted: bool = True) -> int:
        """Run rounds until every live correct node halts (or the budget
        runs out).  Returns the number of the last executed round.

        With ``until_all_halted=False`` the engine always runs exactly
        ``max_rounds`` rounds (for non-terminating abstractions).
        """
        for _ in range(max_rounds):
            self.step()
            if until_all_halted and self.all_correct_halted():
                return self.round
        if until_all_halted and not self.all_correct_halted():
            running = [
                s.node_id
                for s in self._nodes.values()
                if not s.byzantine and s.alive and not s.protocol.halted
            ]
            raise RoundLimitExceeded(max_rounds, running)
        return self.round

    def step(self) -> None:
        """Execute one synchronous round."""
        self.round += 1
        self.metrics.record_round(self.round)
        self._apply_membership()

        inboxes = self._collect_inboxes()

        correct_sends: list[tuple[NodeId, Send]] = []
        for state in self._iter_alive(byzantine=False):
            sends = self._run_correct(state, inboxes.get(state.node_id, Inbox()))
            correct_sends.extend((state.node_id, s) for s in sends)

        byz_sends: list[tuple[NodeId, Send]] = []
        rushing_traffic = tuple(correct_sends) if self.rushing else ()
        for state in self._iter_alive(byzantine=True):
            view = AdversaryView(
                node_id=state.node_id,
                round=self.round,
                inbox=inboxes.get(state.node_id, Inbox()),
                all_nodes=self.alive_ids,
                correct_nodes=self.correct_ids & self.alive_ids,
                byzantine_nodes=self.byzantine_ids & self.alive_ids,
                rng=self._rng,
                correct_traffic=rushing_traffic,
            )
            for send in state.behaviour.on_round(view):
                byz_sends.append((state.node_id, send))

        self._stage(correct_sends)
        self._stage(byz_sends)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _iter_alive(self, byzantine: bool) -> list[_NodeState]:
        # Deterministic order: ascending node id.
        return sorted(
            (
                s
                for s in self._nodes.values()
                if s.alive and s.byzantine == byzantine
            ),
            key=lambda s: s.node_id,
        )

    def _apply_membership(self) -> None:
        for spec in self.membership.joins_at(self.round):
            behaviour = spec.factory()
            self._register(spec.node_id, behaviour, byzantine=spec.byzantine)
            # _register sets joined_round to round+1; fix to this round.
            self._nodes[spec.node_id].joined_round = self.round
        for spec in self.membership.leaves_at(self.round):
            self.remove(spec.node_id)

    def _collect_inboxes(self) -> dict[NodeId, Inbox]:
        inboxes: dict[NodeId, Inbox] = {}
        for state in self._nodes.values():
            if not state.alive or not state.pending:
                state.pending.clear()
                continue
            seen: set[Message] = set()
            ordered: list[Message] = []
            for sender, send in state.pending:
                message = send.stamped(sender)
                if message not in seen:  # per-round duplicate suppression
                    seen.add(message)
                    ordered.append(message)
            state.pending.clear()
            state.contacts.update(m.sender for m in ordered)
            self.metrics.record_delivery(self.round, len(ordered))
            inboxes[state.node_id] = Inbox(ordered)
        return inboxes

    def _run_correct(self, state: _NodeState, inbox: Inbox) -> Outbox:
        outbox = Outbox()
        if state.protocol.halted:
            return outbox
        api = NodeApi(
            node_id=state.node_id,
            round_no=self.round,
            known_contacts=frozenset(state.contacts),
            outbox=outbox,
            trace_sink=self.trace.record,
        )
        state.protocol.on_round(api, inbox)
        return outbox

    def _wire_cost(self, sender: NodeId, send: Send) -> int:
        """Size of the send as a repro.net frame (0 when not measuring)."""
        if not self.measure_bytes:
            return 0
        from repro.net.wire import encode_frame

        try:
            return len(
                encode_frame(
                    self.round, sender, send.kind, send.payload, send.instance
                )
            )
        except Exception:
            # Non-wire-representable payloads (test doubles etc.): fall
            # back to a repr-based estimate rather than failing the run.
            return len(repr((send.kind, send.payload, send.instance)))

    def _stage(self, sends: list[tuple[NodeId, Send]]) -> None:
        """Queue sends for delivery at the next round."""
        alive = [s for s in self._nodes.values() if s.alive]
        for sender, send in sends:
            self.metrics.record_send(
                self.round, sender, send.kind, self._wire_cost(sender, send)
            )
            if send.dest is BROADCAST:
                for state in alive:
                    state.pending.append((sender, send))
            else:
                state = self._nodes.get(send.dest)
                if state is not None and state.alive:
                    state.pending.append((sender, send))
