"""Per-round inbox with the quorum-counting helpers the paper's proofs use.

Every count is a count of *distinct senders*: the model discards duplicate
messages from the same sender within a round, and all threshold arguments
("received at least ``n_v/3`` echo messages") quantify over senders.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Hashable, Iterable, Iterator

from repro.sim.message import Message
from repro.types import NodeId


class Inbox:
    """The set of messages a node received at the start of a round."""

    def __init__(self, messages: Iterable[Message] = ()):
        self._messages: tuple[Message, ...] = tuple(messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._messages)

    def __len__(self) -> int:
        return len(self._messages)

    def __bool__(self) -> bool:
        return bool(self._messages)

    def filter(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> "Inbox":
        """Return a sub-inbox of the messages matching the filters."""
        return Inbox(
            m for m in self._messages if m.matches(kind, payload, instance)
        )

    def senders(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> set[NodeId]:
        """Distinct senders of matching messages."""
        return {
            m.sender for m in self._messages if m.matches(kind, payload, instance)
        }

    def count(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> int:
        """Number of distinct senders of matching messages."""
        return len(self.senders(kind, payload, instance))

    def payload_counts(
        self, kind: str, instance: Any = ...
    ) -> Counter:
        """Map payload -> distinct sender count, for one message kind.

        This is the primitive behind "if received at least ``2n_v/3``
        ``input(x)`` for some value ``x``": take the max of the counter.
        """
        per_payload: dict[Hashable, set[NodeId]] = {}
        for m in self._messages:
            if m.matches(kind, instance=instance):
                per_payload.setdefault(m.payload, set()).add(m.sender)
        return Counter({p: len(s) for p, s in per_payload.items()})

    def best_payload(
        self, kind: str, instance: Any = ...
    ) -> tuple[Hashable, int]:
        """The payload with the most distinct senders and its count.

        Ties break deterministically on the payload repr so that runs are
        reproducible.  Returns ``(None, 0)`` when nothing matches.
        """
        counts = self.payload_counts(kind, instance=instance)
        if not counts:
            return None, 0
        best = max(counts.items(), key=lambda item: (item[1], repr(item[0])))
        return best

    def from_sender(self, sender: NodeId) -> "Inbox":
        """Messages received from one specific node."""
        return Inbox(m for m in self._messages if m.sender == sender)

    def received_from(
        self,
        sender: NodeId,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> bool:
        """True when *sender* sent a matching message this round."""
        return any(
            m.sender == sender and m.matches(kind, payload, instance)
            for m in self._messages
        )

    def kinds(self, instance: Any = ...) -> set[str]:
        """The set of message kinds present (optionally within an instance)."""
        return {
            m.kind for m in self._messages if m.matches(None, instance=instance)
        }

    def instances(self) -> set[Hashable]:
        """The set of instance tags present (excluding untagged messages)."""
        return {m.instance for m in self._messages if m.instance is not None}

    def merged_with(self, extra: Iterable[Message]) -> "Inbox":
        """A new inbox with *extra* messages appended (used for the paper's
        missing-message substitution rule)."""
        return Inbox((*self._messages, *extra))
