"""Per-round inbox with the quorum-counting helpers the paper's proofs use.

Every count is a count of *distinct senders*: the model discards duplicate
messages from the same sender within a round, and all threshold arguments
("received at least ``n_v/3`` echo messages") quantify over senders.

Counting is backed by a lazily-built :class:`InboxIndex`.  The engine hands
every recipient of the round's shared broadcast tuple an :class:`Inbox`
view that *aliases one shared index*, so per-kind buckets, sender sets and
payload tallies are materialized once per round instead of once per node —
the paper's protocols are all distinct-sender threshold counts over a
common view, which is exactly the shape this amortizes.

Shared-index invariant: an index (and every bucket, set and counter it
caches) is a pure *view* over one immutable tuple of
:class:`~repro.sim.message.Message` objects.  Nothing may mutate a message
or a cached structure after it is handed out; the query methods therefore
return fresh ``set``/``Counter`` copies wherever callers could mutate the
result.  Mutating an index internal is a bug, not a feature request.

The *quorum-tally plane* extends the sharing one layer up, into the
protocols' counting: :meth:`InboxIndex.derive` memoizes arbitrary derived
views (decoded vote bases, membership back-fill sets) per round, so the
per-instance tallies every recipient of a shared index would rebuild are
computed exactly once; :meth:`InboxIndex.restricted` shares one
membership-restricted sub-inbox per ``(index, membership)``; and
:func:`best_with_extra` layers the genuinely per-node parts (own-message
substitution, ``⊥`` back-fill) as O(1) deltas on a shared tally.  Derived
values obey the same invariant: they are pure functions of the index
contents, shared by every aliasing recipient, and must never be mutated.
"""

from __future__ import annotations

from collections import Counter
from types import MappingProxyType
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

from repro.sim.message import Message
from repro.types import NodeId

#: Query-key sentinel: ``...`` (Ellipsis) means "don't care", so ``None``
#: stays a matchable payload / instance value.
_ANY = ...


class InboxIndex:
    """Lazily-built, cached query structures over one message tuple.

    One index may be shared by many :class:`Inbox` views (the engine's
    all-broadcast hot path); every cache therefore fills in at most once
    per round, on first demand, whichever recipient asks first.

    A *layered* index (:meth:`layered`) stacks a small tuple of extra
    messages on top of a base index without re-scanning the base: the
    engine uses it for recipients whose delivery adds direct messages to
    the shared broadcasts, and :meth:`Inbox.merged_with` uses it for the
    paper's missing-message substitution rule.
    """

    __slots__ = (
        "messages",
        "_base",
        "_extra",
        "_by_kind",
        "_by_sender",
        "_by_instance",
        "_all_senders",
        "_sender_sets",
        "_payload_senders",
        "_best",
        "_kinds",
        "_instances",
        "_instance_tags",
        "_subs",
        "_derived",
        "_restrictions",
        "_covered",
    )

    def __init__(
        self,
        messages: Iterable[Message] = (),
        *,
        _base: "InboxIndex | None" = None,
        _extra: tuple[Message, ...] = (),
    ):
        self.messages: tuple[Message, ...] = tuple(messages)
        self._base = _base
        self._extra = _extra
        self._by_kind: dict[str, tuple[Message, ...]] | None = None
        self._by_sender: dict[NodeId, tuple[Message, ...]] | None = None
        self._by_instance: dict[Hashable, tuple[Message, ...]] | None = None
        self._all_senders: frozenset[NodeId] | None = None
        #: (kind, payload, instance) -> frozenset of matching senders.
        self._sender_sets: dict[tuple, frozenset[NodeId]] = {}
        #: (kind, instance) -> {payload: frozenset of senders}, in first-
        #: occurrence order (the tie-break in best_payload depends on it),
        #: stored behind read-only proxies so shared tallies cannot be
        #: mutated by any recipient.
        self._payload_senders: dict[tuple, Mapping[Hashable, frozenset]] = {}
        #: (kind, instance) -> cached best_payload result.
        self._best: dict[tuple, tuple[Hashable, int]] = {}
        self._kinds: frozenset[str] | None = None
        self._instances: frozenset[Hashable] | None = None
        self._instance_tags: tuple[Hashable, ...] | None = None
        #: Cached sub-Inbox views for kind/sender/instance buckets, so
        #: repeated ``filter(kind)`` calls across recipients share one
        #: sub-index too.
        self._subs: dict[tuple, "Inbox"] = {}
        #: The quorum-tally plane: key -> derived view, built at most
        #: once per index by whichever recipient asks first.
        self._derived: dict[Hashable, Any] = {}
        #: membership -> shared membership-restricted sub-inbox.
        self._restrictions: dict[frozenset, "Inbox"] = {}
        #: membership -> "every sender is inside it" (the restricted_to
        #: fast-path check, paid once per membership per round instead
        #: of once per recipient).
        self._covered: dict[frozenset, bool] = {}

    @classmethod
    def layered(
        cls, base: "InboxIndex", extra: Iterable[Message]
    ) -> "InboxIndex":
        """An index over ``base.messages + extra`` reusing base caches.

        Returns *base* itself when ``extra`` is empty (the overlay would
        be indistinguishable from it).
        """
        extra = tuple(extra)
        if not extra:
            return base
        return cls(base.messages + extra, _base=base, _extra=extra)

    # ------------------------------------------------------------------
    # Buckets
    # ------------------------------------------------------------------
    def _bucket_map(
        self, field: str, key_of
    ) -> dict[Hashable, tuple[Message, ...]]:
        """Build (once) a first-occurrence-ordered bucket dict."""
        buckets = getattr(self, field)
        if buckets is None:
            base = self._base
            if base is not None:
                # Copy only the dict; base buckets are immutable tuples,
                # so the overlay appends extras per affected key without
                # re-scanning (or copying) the base messages.
                buckets = dict(base._bucket_map(field, key_of))
                for message in self._extra:
                    key = key_of(message)
                    buckets[key] = buckets.get(key, ()) + (message,)
            else:
                grouped: dict[Hashable, list[Message]] = {}
                for message in self.messages:
                    grouped.setdefault(key_of(message), []).append(message)
                buckets = {key: tuple(ms) for key, ms in grouped.items()}
            setattr(self, field, buckets)
        return buckets

    def kind_bucket(self, kind: str) -> tuple[Message, ...]:
        return self._bucket_map("_by_kind", lambda m: m.kind).get(kind, ())

    def sender_bucket(self, sender: NodeId) -> tuple[Message, ...]:
        return self._bucket_map("_by_sender", lambda m: m.sender).get(
            sender, ()
        )

    def instance_bucket(self, instance: Hashable) -> tuple[Message, ...]:
        return self._bucket_map("_by_instance", lambda m: m.instance).get(
            instance, ()
        )

    # ------------------------------------------------------------------
    # Sender sets and payload tallies
    # ------------------------------------------------------------------
    @property
    def all_senders(self) -> frozenset[NodeId]:
        senders = self._all_senders
        if senders is None:
            base = self._base
            if base is not None:
                senders = base.all_senders | {
                    m.sender for m in self._extra
                }
            else:
                senders = frozenset(m.sender for m in self.messages)
            self._all_senders = senders
        return senders

    def sender_set(
        self, kind: str | None, payload: Any, instance: Any
    ) -> frozenset[NodeId]:
        """Distinct senders of messages matching the filters (cached)."""
        if kind is None and payload is _ANY and instance is _ANY:
            return self.all_senders
        key = (kind, payload, instance)
        cached = self._sender_sets.get(key)
        if cached is None:
            base = self._base
            if base is not None:
                cached = base.sender_set(kind, payload, instance) | {
                    m.sender
                    for m in self._extra
                    if m.matches(kind, payload, instance)
                }
            else:
                pool = (
                    self.kind_bucket(kind)
                    if kind is not None
                    else self.messages
                )
                cached = frozenset(
                    m.sender
                    for m in pool
                    if m.matches(kind, payload, instance)
                )
            self._sender_sets[key] = cached
        return cached

    def payload_senders(
        self, kind: str, instance: Any
    ) -> Mapping[Hashable, frozenset[NodeId]]:
        """``payload -> distinct senders`` for one kind (cached).

        Insertion order is the first occurrence of each payload among the
        matching messages — :meth:`best_payload` relies on it so that
        exact ties (equal count *and* equal repr) resolve identically to
        the historical linear scan.  The mapping is a read-only view of
        the shared cache; every recipient aliasing this index gets the
        same object.
        """
        key = (kind, instance)
        cached = self._payload_senders.get(key)
        if cached is None:
            base = self._base
            if base is not None:
                built = dict(base.payload_senders(kind, instance))
                for m in self._extra:
                    if not m.matches(kind, instance=instance):
                        continue
                    existing = built.get(m.payload)
                    if existing is None:
                        built[m.payload] = frozenset((m.sender,))
                    elif m.sender not in existing:
                        built[m.payload] = existing | {m.sender}
            else:
                grouped: dict[Hashable, set[NodeId]] = {}
                for m in self.kind_bucket(kind):
                    if m.matches(kind, instance=instance):
                        grouped.setdefault(m.payload, set()).add(m.sender)
                built = {
                    payload: frozenset(senders)
                    for payload, senders in grouped.items()
                }
            cached = self._payload_senders[key] = MappingProxyType(built)
        return cached

    def best_payload(
        self, kind: str, instance: Any
    ) -> tuple[Hashable, int]:
        key = (kind, instance)
        cached = self._best.get(key)
        if cached is None:
            tallies = self.payload_senders(kind, instance)
            if not tallies:
                cached = (None, 0)
            else:
                payload, senders = max(
                    tallies.items(),
                    key=lambda item: (len(item[1]), repr(item[0])),
                )
                cached = (payload, len(senders))
            self._best[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Kind / instance surveys
    # ------------------------------------------------------------------
    @property
    def all_kinds(self) -> frozenset[str]:
        kinds = self._kinds
        if kinds is None:
            base = self._base
            if base is not None:
                kinds = base.all_kinds | {m.kind for m in self._extra}
            else:
                kinds = frozenset(m.kind for m in self.messages)
            self._kinds = kinds
        return kinds

    @property
    def all_instances(self) -> frozenset[Hashable]:
        instances = self._instances
        if instances is None:
            base = self._base
            if base is not None:
                instances = base.all_instances | {
                    m.instance
                    for m in self._extra
                    if m.instance is not None
                }
            else:
                instances = frozenset(
                    m.instance
                    for m in self.messages
                    if m.instance is not None
                )
            self._instances = instances
        return instances

    def instance_tags(self) -> tuple[Hashable, ...]:
        """Instance tags in first-occurrence order (untagged excluded).

        The deterministic counterpart of :attr:`all_instances`: callers
        that *iterate* instances (parallel consensus walking per-instance
        buckets for join decisions) need an order independent of set
        hashing.
        """
        tags = self._instance_tags
        if tags is None:
            tags = self._instance_tags = tuple(
                tag
                for tag in self._bucket_map("_by_instance", lambda m: m.instance)
                if tag is not None
            )
        return tags

    def message_count(self) -> int:
        """Number of messages (overridable without materializing them)."""
        return len(self.messages)

    def covered_by(self, members: frozenset[NodeId]) -> bool:
        """True when every sender is in *members* (cached per membership).

        :meth:`Inbox.restricted_to` asks this every round for every
        recipient; the subset test is O(senders), so the answer is
        cached once per membership on the (shared) index.
        """
        if not isinstance(members, frozenset):
            return self.all_senders <= members
        cached = self._covered.get(members)
        if cached is None:
            cached = self._covered[members] = self.all_senders <= members
        return cached

    # ------------------------------------------------------------------
    # The quorum-tally plane: shared derived views
    # ------------------------------------------------------------------
    def derive(self, key: Hashable, build: Callable[["InboxIndex"], Any]) -> Any:
        """Memoize ``build(self)`` under *key* on this index.

        This is the extension point of the quorum-tally plane: protocol
        layers use it to share per-round derived tallies (decoded vote
        bases, membership back-fill sets) across every recipient aliasing
        the index, instead of rebuilding them once per node.

        ``build`` must be a pure function of the index contents — the
        result is cached on first demand and handed, unchanged, to every
        later caller of the same key.  Callers must treat the result as
        immutable (the shared-index invariant) and namespace their keys
        (e.g. ``("pc-votes", kind)``) so independent protocol layers
        cannot collide.
        """
        derived = self._derived
        try:
            return derived[key]
        except KeyError:
            value = derived[key] = build(self)
            return value

    def restricted(self, members: frozenset[NodeId]) -> "Inbox":
        """The shared sub-inbox of messages whose sender is in *members*.

        Cached per membership value: two hundred nodes restricting one
        round's shared index to the same frozen membership get one
        filtered sub-inbox (and one sub-index) between them.
        """
        if not isinstance(members, frozenset):
            members = frozenset(members)
        sub = self._restrictions.get(members)
        if sub is None:
            sub = Inbox(m for m in self.messages if m.sender in members)
            self._restrictions[members] = sub
        return sub

    # ------------------------------------------------------------------
    # Shared sub-views
    # ------------------------------------------------------------------
    def _sub(self, key: tuple, bucket: tuple[Message, ...]) -> "Inbox":
        sub = self._subs.get(key)
        if sub is None:
            sub = Inbox(bucket)
            self._subs[key] = sub
        return sub

    def sub_by_kind(self, kind: str) -> "Inbox":
        return self._sub(("kind", kind), self.kind_bucket(kind))

    def sub_by_sender(self, sender: NodeId) -> "Inbox":
        return self._sub(("sender", sender), self.sender_bucket(sender))

    def sub_by_instance(self, instance: Hashable) -> "Inbox":
        return self._sub(
            ("instance", instance), self.instance_bucket(instance)
        )


class Inbox:
    """The set of messages a node received at the start of a round.

    An inbox is an immutable view: either over its own message tuple, or
    (``index=``) over a prebuilt — possibly shared — :class:`InboxIndex`.
    All query methods route through the index and return results
    identical to a naive linear scan (pinned by
    ``tests/properties/test_index_coherence.py``).

    When built over an index the message tuple is fetched lazily: a
    columnar index answers counts and tallies straight from its columns,
    and materializes message objects only if somebody iterates.
    """

    __slots__ = ("_messages", "_index")

    def __init__(
        self,
        messages: Iterable[Message] = (),
        *,
        index: InboxIndex | None = None,
    ):
        if index is not None:
            self._messages = None
        else:
            self._messages = tuple(messages)
        self._index = index

    def _seq(self) -> tuple[Message, ...]:
        seq = self._messages
        if seq is None:
            seq = self._messages = self._index.messages
        return seq

    @property
    def index(self) -> InboxIndex:
        """The (lazily created) query index backing this inbox."""
        idx = self._index
        if idx is None:
            idx = self._index = InboxIndex(self._messages)
        return idx

    def __iter__(self) -> Iterator[Message]:
        return iter(self._seq())

    def __len__(self) -> int:
        if self._messages is None:
            return self._index.message_count()
        return len(self._messages)

    def __bool__(self) -> bool:
        return len(self) > 0

    def filter(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> "Inbox":
        """Return a sub-inbox of the messages matching the filters.

        The common single-axis filters (by kind, by instance) return a
        view over the index's cached bucket, so every recipient of a
        shared round index gets the *same* sub-inbox object — and one
        shared sub-index with it.
        """
        if payload is _ANY:
            if kind is not None and instance is _ANY:
                return self.index.sub_by_kind(kind)
            if kind is None and instance is not _ANY:
                return self.index.sub_by_instance(instance)
            if kind is None and instance is _ANY:
                return self
        pool = (
            self.index.kind_bucket(kind)
            if kind is not None
            else self._seq()
        )
        return Inbox(
            m for m in pool if m.matches(kind, payload, instance)
        )

    def senders(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> set[NodeId]:
        """Distinct senders of matching messages."""
        return set(self.index.sender_set(kind, payload, instance))

    def distinct_senders(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> frozenset[NodeId]:
        """Like :meth:`senders`, but returns the index's shared frozenset.

        Zero-copy: every recipient aliasing the round's index gets the
        same cached object, so callers must not rely on mutating it
        (they cannot — it is a frozenset).
        """
        return self.index.sender_set(kind, payload, instance)

    def count(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> int:
        """Number of distinct senders of matching messages."""
        return len(self.index.sender_set(kind, payload, instance))

    def payload_counts(
        self, kind: str, instance: Any = ...
    ) -> Counter:
        """Map payload -> distinct sender count, for one message kind.

        This is the primitive behind "if received at least ``2n_v/3``
        ``input(x)`` for some value ``x``": take the max of the counter.
        """
        return Counter(
            {
                payload: len(senders)
                for payload, senders in self.index.payload_senders(
                    kind, instance
                ).items()
            }
        )

    def payload_sender_sets(
        self, kind: str, instance: Any = ...
    ) -> Mapping[Hashable, frozenset[NodeId]]:
        """``payload -> frozenset(distinct senders)`` for one kind.

        The quorum-tally plane's raw material: a *shared read-only*
        mapping cached on the (possibly round-shared) index, in
        first-occurrence payload order.  Use :meth:`payload_counts` when
        a mutable counter is wanted; use this when only reading, so all
        recipients pay for the tally once.
        """
        return self.index.payload_senders(kind, instance)

    def best_payload(
        self, kind: str, instance: Any = ...
    ) -> tuple[Hashable, int]:
        """The payload with the most distinct senders and its count.

        Ties break deterministically on the payload repr so that runs are
        reproducible.  Returns ``(None, 0)`` when nothing matches.
        """
        return self.index.best_payload(kind, instance)

    def from_sender(self, sender: NodeId) -> "Inbox":
        """Messages received from one specific node."""
        return self.index.sub_by_sender(sender)

    def received_from(
        self,
        sender: NodeId,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> bool:
        """True when *sender* sent a matching message this round."""
        return any(
            m.matches(kind, payload, instance)
            for m in self.index.sender_bucket(sender)
        )

    def has_kind(self, kind: str) -> bool:
        """True when any message of *kind* is present.

        Unlike ``kinds()`` this returns no copy, and on the columnar
        plane it answers straight off the kind column without
        materializing a single message — the sampled-consensus
        non-members poll for decision announcements with this, keeping
        their per-round work O(1).
        """
        return kind in self.index.all_kinds

    def kinds(self, instance: Any = ...) -> set[str]:
        """The set of message kinds present (optionally within an instance)."""
        if instance is _ANY:
            return set(self.index.all_kinds)
        return {m.kind for m in self.index.instance_bucket(instance)}

    def instances(self) -> set[Hashable]:
        """The set of instance tags present (excluding untagged messages)."""
        return set(self.index.all_instances)

    def instance_tags(self) -> tuple[Hashable, ...]:
        """Instance tags in first-occurrence order (untagged excluded)."""
        return self.index.instance_tags()

    def derive(self, key: Hashable, build: Callable[[InboxIndex], Any]) -> Any:
        """Memoize a derived view on this inbox's (possibly shared) index.

        Delegates to :meth:`InboxIndex.derive`; see there for the purity
        and namespacing contract.
        """
        return self.index.derive(key, build)

    def restricted_to(self, members: frozenset[NodeId]) -> "Inbox":
        """The sub-inbox of messages whose sender is in *members*.

        Returns *self* when no sender falls outside *members* — the
        common case for frozen-membership protocols after
        initialization, which keeps the round's shared index shared.
        Otherwise the restriction is cached per ``(index, members)``, so
        all recipients of a shared index restricting to one frozen
        membership share a single filtered sub-inbox.
        """
        if self.index.covered_by(members):
            return self
        return self.index.restricted(members)

    def merged_with(self, extra: Iterable[Message]) -> "Inbox":
        """A new inbox with *extra* messages appended (used for the paper's
        missing-message substitution rule).

        The result layers the extras over this inbox's index, so counting
        the merged view never re-scans (or re-indexes) the base messages.
        """
        return Inbox(index=InboxIndex.layered(self.index, extra))


def best_with_extra(
    tallies: Mapping[Hashable, frozenset[NodeId]],
    best: tuple[Hashable, int],
    payload: Hashable,
    extra: int,
) -> tuple[Hashable, int]:
    """Best ``(value, count)`` of *tallies* after granting *payload* ``extra``
    additional distinct supporters.

    The per-node half of the quorum-tally plane: *tallies* is a shared
    payload→senders mapping (insertion-ordered, e.g. from
    :meth:`Inbox.payload_sender_sets` or an :meth:`InboxIndex.derive`
    value) and *best* its precomputed maximum; the delta is a node's own
    substitution or ``⊥`` back-fill.  The extra supporters must be
    *disjoint* from every sender set in *tallies* — they stand in for
    members that sent nothing, which is what makes the count a pure
    addition.

    The result is exactly what rebuilding the merged tally from scratch
    would give, including the deterministic tie-break: highest count,
    then highest payload repr, then earliest first occurrence (a payload
    absent from *tallies* counts as appended last).
    """
    if extra <= 0:
        return best
    boosted = len(tallies.get(payload, ())) + extra
    base_value, base_count = best
    if base_count == 0 or payload == base_value:
        # Empty base, or the delta boosts the incumbent: no contest.
        return payload, boosted
    delta_key = (boosted, repr(payload))
    base_key = (base_count, repr(base_value))
    if delta_key > base_key:
        return payload, boosted
    if delta_key < base_key:
        return base_value, base_count
    # Exact tie (equal count *and* equal repr on distinct payloads):
    # replicate the insertion-order max of a full rebuild.
    winner: tuple[Hashable, int] | None = None
    winner_key: tuple[int, str] | None = None
    for value, senders in tallies.items():
        count = len(senders) + (extra if value == payload else 0)
        key = (count, repr(value))
        if winner_key is None or key > winner_key:
            winner_key = key
            winner = (value, count)
    if payload not in tallies and (winner_key is None or delta_key > winner_key):
        winner = (payload, boosted)
    assert winner is not None
    return winner
