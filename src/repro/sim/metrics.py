"""Run metrics: rounds, logical sends, wire deliveries, per-kind counts.

A *logical send* is one ``broadcast``/``send`` call; a *delivery* is one
message landing in one inbox (a broadcast to ``k`` recipients is one send
and ``k`` deliveries).  The paper's message-complexity discussion counts
logical sends, so benchmarks report both.

Metrics is a *subscriber* of the run's :class:`~repro.obs.bus.EventBus`
(:meth:`Metrics.attach`): whichever runtime publishes the wire events
(sim, net, asyncsim), the same counters accumulate.  The ``record_*``
methods remain for direct use in tests and ad-hoc tooling.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.types import NodeId


@dataclass
class Metrics:
    """Aggregated counters for one run (any runtime)."""

    rounds: int = 0
    sends_total: int = 0
    deliveries_total: int = 0
    bytes_total: int = 0
    #: Entries appended to the engine's staging queues.  A broadcast
    #: stages exactly one shared entry however many nodes receive it, so
    #: this is the engine's per-round allocation footprint (the pre-O(sends)
    #: engine staged one entry per recipient, i.e. deliveries_total).
    staged_total: int = 0
    #: Inbound frames the net runtime discarded without delivery
    #: (stamped outside the runner's round window).
    frames_dropped: int = 0
    sends_by_node: Counter = field(default_factory=Counter)
    sends_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    sends_by_round: Counter = field(default_factory=Counter)
    deliveries_by_round: Counter = field(default_factory=Counter)
    staged_by_round: Counter = field(default_factory=Counter)
    #: Engine wall time by phase ("deliver", "correct", "adversary",
    #: "stage") and by round.  Populated only when the network was built
    #: with an injected clock (benchmarks); simulations themselves never
    #: read wall time, so these never influence behaviour.
    engine_time_by_phase: Counter = field(default_factory=Counter)
    engine_time_by_round: Counter = field(default_factory=Counter)
    #: Columnar-plane interning counters (cumulative; updated from
    #: ``plane-stats`` events, zero when the plane is off).
    payload_intern_hits: int = 0
    unique_payloads: int = 0
    #: Message objects the columnar plane actually built — the honest
    #: "work done" figure next to ``deliveries_total``, which counts
    #: *logical* deliveries (staged × recipients) and vastly overstates
    #: columnar-path work.  On the object path this stays 0; use
    #: ``staged_total`` (one shared object per staged entry) there.
    materialized_messages: int = 0
    #: Whether the columnar plane drove the run, and why not if not
    #: ("disabled" / "filter-override"); None until a plane-stats event
    #: arrives.
    columnar_active: bool | None = None
    plane_fallback: str | None = None
    #: Decision economy (from the run-end ``decision-economy`` event):
    #: correct nodes that halted with an output, and the run's message
    #: cost amortized over them.
    decisions: int = 0
    messages_per_decision: float = 0.0
    bytes_per_decision: float = 0.0

    # ------------------------------------------------------------------
    # Event-bus subscription
    # ------------------------------------------------------------------
    def attach(self, bus) -> "Metrics":
        """Subscribe these counters to *bus*; returns self for chaining."""
        bus.subscribe(self._on_round_start, "round-start")
        bus.subscribe(self._on_send, "send")
        bus.subscribe(self._on_send_batch, "send-batch")
        bus.subscribe(self._on_deliver, "deliver")
        bus.subscribe(self._on_phase, "engine-phase")
        bus.subscribe(self._on_drop, "drop")
        bus.subscribe(self._on_plane, "plane-stats")
        bus.subscribe(self._on_economy, "decision-economy")
        return self

    def detach(self, bus) -> None:
        """Stop counting events from *bus* (zero-cost once detached)."""
        bus.unsubscribe(self._on_round_start)
        bus.unsubscribe(self._on_send)
        bus.unsubscribe(self._on_send_batch)
        bus.unsubscribe(self._on_deliver)
        bus.unsubscribe(self._on_phase)
        bus.unsubscribe(self._on_drop)
        bus.unsubscribe(self._on_plane)
        bus.unsubscribe(self._on_economy)

    def _on_round_start(self, event) -> None:
        self.record_round(event.round)

    def _on_send(self, event) -> None:
        # Hot path (one call per logical send): counters are bumped
        # inline rather than via record_send/record_staged.
        round_no = event.round
        kind = event.kind
        self.sends_total += 1
        self.sends_by_node[event.sender] += 1
        self.sends_by_kind[kind] += 1
        self.sends_by_round[round_no] += 1
        wire_bytes = event.wire_bytes
        if wire_bytes:
            self.bytes_total += wire_bytes
            self.bytes_by_kind[kind] += wire_bytes
        if event.staged:
            self.staged_total += 1
            self.staged_by_round[round_no] += 1

    def _on_send_batch(self, event) -> None:
        # One event per batched fan-out: bump the per-send counters in
        # bulk (a batch of k payloads is k logical sends).
        round_no = event.round
        kind = event.kind
        count = len(event.payloads)
        self.sends_total += count
        self.sends_by_node[event.sender] += count
        self.sends_by_kind[kind] += count
        self.sends_by_round[round_no] += count
        wire_bytes = event.wire_bytes
        if wire_bytes:
            self.bytes_total += wire_bytes
            self.bytes_by_kind[kind] += wire_bytes
        staged = event.staged
        if staged:
            self.staged_total += staged
            self.staged_by_round[round_no] += staged

    def _on_plane(self, event) -> None:
        # Cumulative counters: the latest event carries the run totals.
        self.payload_intern_hits = event.payload_intern_hits
        self.unique_payloads = event.unique_payloads
        self.materialized_messages = event.materialized_messages
        self.columnar_active = event.columnar
        self.plane_fallback = event.fallback

    def _on_economy(self, event) -> None:
        self.decisions = event.decisions
        self.messages_per_decision = event.messages_per_decision
        self.bytes_per_decision = event.bytes_per_decision

    def _on_deliver(self, event) -> None:
        count = len(event.messages)
        self.deliveries_total += count
        self.deliveries_by_round[event.round] += count

    def _on_phase(self, event) -> None:
        self.record_engine_time(event.round, event.phase, event.seconds)

    def _on_drop(self, event) -> None:
        self.frames_dropped += event.count

    # ------------------------------------------------------------------
    # Direct recording
    # ------------------------------------------------------------------
    def record_send(
        self,
        round_no: int,
        sender: NodeId,
        kind: str,
        wire_bytes: int = 0,
    ) -> None:
        self.sends_total += 1
        self.sends_by_node[sender] += 1
        self.sends_by_kind[kind] += 1
        self.sends_by_round[round_no] += 1
        if wire_bytes:
            self.bytes_total += wire_bytes
            self.bytes_by_kind[kind] += wire_bytes

    def record_delivery(self, round_no: int, count: int = 1) -> None:
        self.deliveries_total += count
        self.deliveries_by_round[round_no] += count

    def record_staged(self, round_no: int, count: int = 1) -> None:
        """Count entries entering the engine's staging queues."""
        self.staged_total += count
        self.staged_by_round[round_no] += count

    def record_engine_time(
        self, round_no: int, phase: str, seconds: float
    ) -> None:
        """Attribute engine wall time to a phase (observability only)."""
        self.engine_time_by_phase[phase] += seconds
        self.engine_time_by_round[round_no] += seconds

    def record_round(self, round_no: int) -> None:
        self.rounds = max(self.rounds, round_no)

    @property
    def sends_per_round(self) -> float:
        """Average logical sends per executed round."""
        return self.sends_total / self.rounds if self.rounds else 0.0

    def summary(self) -> dict:
        """A plain-dict summary suitable for reports and JSON dumps."""
        summary = {
            "rounds": self.rounds,
            "sends_total": self.sends_total,
            "deliveries_total": self.deliveries_total,
            "staged_total": self.staged_total,
            "sends_per_round": round(self.sends_per_round, 2),
            "kinds": dict(self.sends_by_kind),
            "payload_intern_hits": self.payload_intern_hits,
            "unique_payloads": self.unique_payloads,
            "materialized_messages": self.materialized_messages,
        }
        if self.columnar_active is not None:
            summary["columnar_active"] = self.columnar_active
            if self.plane_fallback is not None:
                summary["plane_fallback"] = self.plane_fallback
        if self.decisions:
            summary["decisions"] = self.decisions
            summary["messages_per_decision"] = round(
                self.messages_per_decision, 2
            )
            if self.bytes_per_decision:
                summary["bytes_per_decision"] = round(
                    self.bytes_per_decision, 2
                )
        if self.bytes_total:
            summary["bytes_total"] = self.bytes_total
            summary["bytes_by_kind"] = dict(self.bytes_by_kind)
        if self.frames_dropped:
            summary["frames_dropped"] = self.frames_dropped
        if self.engine_time_by_phase:
            summary["engine_time_by_phase"] = {
                phase: round(seconds, 6)
                for phase, seconds in self.engine_time_by_phase.items()
            }
        return summary
