"""Run metrics: rounds, logical sends, wire deliveries, per-kind counts.

A *logical send* is one ``broadcast``/``send`` call; a *delivery* is one
message landing in one inbox (a broadcast to ``k`` recipients is one send
and ``k`` deliveries).  The paper's message-complexity discussion counts
logical sends, so benchmarks report both.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.types import NodeId


@dataclass
class Metrics:
    """Aggregated counters for one simulation run."""

    rounds: int = 0
    sends_total: int = 0
    deliveries_total: int = 0
    bytes_total: int = 0
    #: Entries appended to the engine's staging queues.  A broadcast
    #: stages exactly one shared entry however many nodes receive it, so
    #: this is the engine's per-round allocation footprint (the pre-O(sends)
    #: engine staged one entry per recipient, i.e. deliveries_total).
    staged_total: int = 0
    sends_by_node: Counter = field(default_factory=Counter)
    sends_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    sends_by_round: Counter = field(default_factory=Counter)
    deliveries_by_round: Counter = field(default_factory=Counter)
    staged_by_round: Counter = field(default_factory=Counter)
    #: Engine wall time by phase ("deliver", "correct", "adversary",
    #: "stage") and by round.  Populated only when the network was built
    #: with an injected clock (benchmarks); simulations themselves never
    #: read wall time, so these never influence behaviour.
    engine_time_by_phase: Counter = field(default_factory=Counter)
    engine_time_by_round: Counter = field(default_factory=Counter)

    def record_send(
        self,
        round_no: int,
        sender: NodeId,
        kind: str,
        wire_bytes: int = 0,
    ) -> None:
        self.sends_total += 1
        self.sends_by_node[sender] += 1
        self.sends_by_kind[kind] += 1
        self.sends_by_round[round_no] += 1
        if wire_bytes:
            self.bytes_total += wire_bytes
            self.bytes_by_kind[kind] += wire_bytes

    def record_delivery(self, round_no: int, count: int = 1) -> None:
        self.deliveries_total += count
        self.deliveries_by_round[round_no] += count

    def record_staged(self, round_no: int, count: int = 1) -> None:
        """Count entries entering the engine's staging queues."""
        self.staged_total += count
        self.staged_by_round[round_no] += count

    def record_engine_time(
        self, round_no: int, phase: str, seconds: float
    ) -> None:
        """Attribute engine wall time to a phase (observability only)."""
        self.engine_time_by_phase[phase] += seconds
        self.engine_time_by_round[round_no] += seconds

    def record_round(self, round_no: int) -> None:
        self.rounds = max(self.rounds, round_no)

    @property
    def sends_per_round(self) -> float:
        """Average logical sends per executed round."""
        return self.sends_total / self.rounds if self.rounds else 0.0

    def summary(self) -> dict:
        """A plain-dict summary suitable for reports and JSON dumps."""
        summary = {
            "rounds": self.rounds,
            "sends_total": self.sends_total,
            "deliveries_total": self.deliveries_total,
            "staged_total": self.staged_total,
            "sends_per_round": round(self.sends_per_round, 2),
            "kinds": dict(self.sends_by_kind),
        }
        if self.engine_time_by_phase:
            summary["engine_time_by_phase"] = {
                phase: round(seconds, 6)
                for phase, seconds in self.engine_time_by_phase.items()
            }
        return summary
