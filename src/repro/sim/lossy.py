"""A deliberately broken network: random message loss.

The synchronous model's delivery guarantee is load-bearing — §9 proves
agreement is *impossible* without it when ``n`` and ``f`` are unknown.
:class:`LossyNetwork` makes that executable: it behaves like
:class:`~repro.sim.network.SyncNetwork` but drops each staged delivery
independently with probability ``drop_rate`` (seeded, reproducible).

This is an *ablation instrument*, not a feature: protocols run on it to
demonstrate how their guarantees erode as the synchrony assumption
breaks (benchmark ``bench_ablations``/synchrony).  Nothing in
``repro.core`` is expected to survive heavy loss, and that is the point.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.membership import MembershipSchedule
from repro.sim.message import Message
from repro.sim.network import SyncNetwork, _NodeState
from repro.sim.rng import make_rng


class LossyNetwork(SyncNetwork):
    """SyncNetwork with i.i.d. per-delivery message loss."""

    def __init__(
        self,
        drop_rate: float,
        seed: int | None = 0,
        rushing: bool = False,
        membership: MembershipSchedule | None = None,
    ):
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be within [0, 1]")
        super().__init__(seed=seed, rushing=rushing, membership=membership)
        self.drop_rate = drop_rate
        self._loss_rng = make_rng(seed, salt=0x10552E55)
        self.dropped = 0

    def _filter_deliveries(
        self, state: _NodeState, messages: Sequence[Message]
    ) -> Sequence[Message]:
        # Each (recipient, message) delivery faces the loss lottery
        # exactly once, at delivery time.  Draw order follows the
        # engine's deterministic recipient iteration, so runs stay
        # reproducible per seed.
        if self.drop_rate == 0.0:
            return messages
        kept: list[Message] = []
        for message in messages:
            if self._loss_rng.random() < self.drop_rate:
                self.dropped += 1
            else:
                kept.append(message)
        return kept
