"""A deliberately broken network: random message loss.

The synchronous model's delivery guarantee is load-bearing — §9 proves
agreement is *impossible* without it when ``n`` and ``f`` are unknown.
:class:`LossyNetwork` makes that executable: it behaves like
:class:`~repro.sim.network.SyncNetwork` but drops each staged delivery
independently with probability ``drop_rate`` (seeded, reproducible).

This is an *ablation instrument*, not a feature: protocols run on it to
demonstrate how their guarantees erode as the synchrony assumption
breaks (benchmark ``bench_ablations``/synchrony).  Nothing in
``repro.core`` is expected to survive heavy loss, and that is the point.
"""

from __future__ import annotations

from repro.sim.membership import MembershipSchedule
from repro.sim.message import Send
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng
from repro.types import NodeId


class LossyNetwork(SyncNetwork):
    """SyncNetwork with i.i.d. per-delivery message loss."""

    def __init__(
        self,
        drop_rate: float,
        seed: int | None = 0,
        rushing: bool = False,
        membership: MembershipSchedule | None = None,
    ):
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be within [0, 1]")
        super().__init__(seed=seed, rushing=rushing, membership=membership)
        self.drop_rate = drop_rate
        self._loss_rng = make_rng(seed, salt=0x10552E55)
        self.dropped = 0

    def _stage(self, sends: list[tuple[NodeId, Send]]) -> None:
        # _stage runs more than once per round (correct nodes, then the
        # Byzantine batch); each delivery must face the loss lottery
        # exactly once, so only the entries this call appends are drawn.
        before = {
            node_id: len(state.pending)
            for node_id, state in self._nodes.items()
        }
        super()._stage(sends)
        if self.drop_rate == 0.0:
            return
        for node_id, state in self._nodes.items():
            start = before.get(node_id, 0)
            if len(state.pending) <= start:
                continue
            kept = state.pending[:start]
            for entry in state.pending[start:]:
                if self._loss_rng.random() < self.drop_rate:
                    self.dropped += 1
                else:
                    kept.append(entry)
            state.pending[:] = kept
