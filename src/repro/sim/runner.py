"""One-call scenario harness.

A :class:`Scenario` describes a population (how many correct nodes, which
Byzantine strategies), builds a :class:`~repro.sim.network.SyncNetwork` with
sparse random ids, runs it, and returns a :class:`ScenarioResult` with the
outputs, metrics, and trace.  Tests, examples, and benchmarks all go through
this so that every experiment is a seed away from reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.membership import MembershipSchedule
from repro.sim.metrics import Metrics
from repro.sim.network import SyncNetwork
from repro.sim.node import Protocol
from repro.sim.rng import make_rng, sparse_ids
from repro.sim.trace import Trace
from repro.types import NodeId

#: Builds a protocol given (node_id, index among correct nodes).
ProtocolFactory = Callable[[NodeId, int], Protocol]
#: Builds a Byzantine strategy given (node_id, index among Byzantine nodes).
StrategyFactory = Callable[[NodeId, int], Any]


@dataclass
class Scenario:
    """A declarative description of one run."""

    correct: int
    protocol_factory: ProtocolFactory
    byzantine: int = 0
    strategy_factory: StrategyFactory | None = None
    seed: int = 0
    rushing: bool = False
    max_rounds: int = 200
    until_all_halted: bool = True
    membership: MembershipSchedule | None = None
    id_space: int = 10**6
    #: When set, checks n > 3f at construction and refuses bad configs;
    #: resiliency experiments set this to False to venture past the bound.
    enforce_resiliency: bool = True

    def validate(self) -> None:
        if self.correct <= 0:
            raise ConfigurationError("need at least one correct node")
        if self.byzantine < 0:
            raise ConfigurationError("byzantine count must be >= 0")
        if self.byzantine > 0 and self.strategy_factory is None:
            raise ConfigurationError(
                "byzantine > 0 requires a strategy_factory"
            )
        n = self.correct + self.byzantine
        if self.enforce_resiliency and not n > 3 * self.byzantine:
            raise ConfigurationError(
                f"n={n}, f={self.byzantine} violates n > 3f; pass "
                "enforce_resiliency=False to run anyway"
            )


@dataclass
class ScenarioResult:
    """Everything observable about one finished run."""

    network: SyncNetwork
    correct_ids: list[NodeId]
    byzantine_ids: list[NodeId]
    rounds: int
    outputs: dict[NodeId, Any]
    metrics: Metrics
    trace: Trace
    protocols: dict[NodeId, Protocol] = field(default_factory=dict)

    @property
    def distinct_outputs(self) -> set[Any]:
        return set(self.outputs.values())

    @property
    def agreed(self) -> bool:
        """True when every correct node decided and on a single value."""
        return (
            len(self.outputs) == len(self.correct_ids)
            and len(self.distinct_outputs) == 1
        )

    def output_of(self, node_id: NodeId) -> Any:
        return self.outputs[node_id]


def run_scenario(scenario: Scenario, *, bus=None) -> ScenarioResult:
    """Build the network described by *scenario*, run it, return the result.

    *bus* (an :class:`~repro.obs.bus.EventBus`) lets callers observe the
    run — attach monitors or a JSONL sink before calling; ``None`` gives
    the network its own private bus as usual.
    """
    scenario.validate()
    rng = make_rng(scenario.seed)
    total = scenario.correct + scenario.byzantine
    ids = sparse_ids(total, rng, scenario.id_space)
    # Interleave correct/Byzantine ids deterministically but not by block,
    # so neither group systematically owns the smallest identifiers (the
    # rotor picks coordinators in id order — block assignment would bias it).
    shuffled = ids[:]
    rng.shuffle(shuffled)
    correct_ids = sorted(shuffled[: scenario.correct])
    byz_ids = sorted(shuffled[scenario.correct:])

    network = SyncNetwork(
        seed=scenario.seed,
        rushing=scenario.rushing,
        membership=scenario.membership,
        bus=bus,
    )
    protocols: dict[NodeId, Protocol] = {}
    for index, node_id in enumerate(correct_ids):
        protocol = scenario.protocol_factory(node_id, index)
        protocols[node_id] = protocol
        network.add_correct(node_id, protocol)
    for index, node_id in enumerate(byz_ids):
        network.add_byzantine(
            node_id, scenario.strategy_factory(node_id, index)
        )

    rounds = network.run(
        scenario.max_rounds, until_all_halted=scenario.until_all_halted
    )
    return ScenarioResult(
        network=network,
        correct_ids=correct_ids,
        byzantine_ids=byz_ids,
        rounds=rounds,
        outputs=network.outputs(),
        metrics=network.metrics,
        trace=network.trace,
        protocols=protocols,
    )
