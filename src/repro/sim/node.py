"""Correct-node protocol interface.

A protocol is a state machine driven once per round.  Round 1 is the
*initial* round (empty inbox, initial broadcasts); from round 2 on the inbox
holds the messages sent in the previous round.  The paper's pseudocode maps
onto this directly: "each iteration of the loop is a single round".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.errors import ProtocolViolation
from repro.sim.inbox import Inbox
from repro.sim.message import Outbox
from repro.types import NodeId, Round


class NodeApi:
    """Per-round capabilities handed to a protocol.

    Enforces the id-only model for correct nodes:

    * ``broadcast`` reaches every participant, known or unknown;
    * ``send`` may only target a node that previously sent us a message;
    * the sender id on the wire is stamped by the network, not the caller.
    """

    __slots__ = (
        "node_id",
        "round",
        "_known_contacts",
        "_outbox",
        "_trace_sink",
    )

    def __init__(
        self,
        node_id: NodeId,
        round_no: Round,
        known_contacts: frozenset[NodeId],
        outbox: Outbox,
        trace_sink=None,
    ):
        self.node_id = node_id
        self.round = round_no
        self._known_contacts = known_contacts
        self._outbox = outbox
        self._trace_sink = trace_sink

    def broadcast(
        self, kind: str, payload: Hashable = None, instance: Hashable = None
    ) -> None:
        """Broadcast a message to all participants (delivered next round)."""
        self._outbox.broadcast(kind, payload, instance)

    def broadcast_many(
        self,
        kind: str,
        payloads,
        instance: Hashable = None,
    ) -> None:
        """Broadcast one message per payload (delivered next round).

        Semantically identical to calling :meth:`broadcast` for each
        payload; the fan-out is staged as one batch so a round that
        re-echoes every known tag costs O(1) on the wire-staging path.
        Passing the same payload tuple object from every node (e.g. a
        shared per-round tally) lets the network intern the batch once.
        """
        self._outbox.broadcast_many(kind, payloads, instance)

    def send(
        self,
        dest: NodeId,
        kind: str,
        payload: Hashable = None,
        instance: Hashable = None,
    ) -> None:
        """Send directly to *dest*, which must be a prior contact."""
        if dest not in self._known_contacts:
            raise ProtocolViolation(
                f"node {self.node_id} tried to send directly to {dest} "
                "without having received a message from it"
            )
        self._outbox.send(dest, kind, payload, instance)

    def knows(self, node: NodeId) -> bool:
        """True when *node* has previously sent us a message."""
        return node in self._known_contacts

    def emit(self, event: str, **detail: Any) -> None:
        """Record a trace event (accepted a message, decided, ...)."""
        if self._trace_sink is not None:
            self._trace_sink(self.round, self.node_id, event, detail)


class Protocol(ABC):
    """Base class for a correct node's behaviour.

    Subclasses implement :meth:`on_round`; the simulator calls it once per
    round until :meth:`decide` (or :meth:`halt`) is called or the round
    budget is exhausted.  ``self.output`` carries the decision value for
    deciding protocols; non-terminating abstractions (plain reliable
    broadcast) simply never halt.
    """

    def __init__(self) -> None:
        self.output: Any = None
        self.halted: bool = False
        self.decided_round: Round | None = None
        self.wants_to_leave: bool = False

    @abstractmethod
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        """Handle one synchronous round.

        ``api.round == 1`` on the initial round, whose inbox is empty.
        """

    def decide(self, api: NodeApi, value: Any) -> None:
        """Record the protocol's output and stop participating."""
        self.output = value
        self.halted = True
        self.decided_round = api.round
        api.emit("decide", value=value)

    def halt(self, api: NodeApi) -> None:
        """Stop participating without producing an output."""
        self.halted = True
        self.decided_round = api.round
        api.emit("halt")

    def request_leave(self) -> None:
        """Mark this node as wanting to leave a dynamic network.

        Dynamic protocols (total ordering) check this flag and perform the
        paper's leave handshake (broadcast ``absent``, drain outstanding
        consensus instances) before actually halting.
        """
        self.wants_to_leave = True
