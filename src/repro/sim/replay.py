"""Record / replay of simulation runs.

Research claims die without reproducibility.  Runs here are already
deterministic given a seed, but a *recording* decouples reproduction
from the code version: it captures every wire delivery (round, sender,
recipient, kind, payload, instance) plus the decisions, as plain JSON
lines.  A recording can be

* compared against a re-run (:func:`verify_replay`) to prove that a
  refactor did not change any behaviour, or
* inspected/diffed with ordinary text tools when a seed misbehaves.

Payloads are serialized via ``repr`` (everything the protocols send is
built from literals, so ``repr`` is faithful and stable); the recording
is a *witness*, not a wire format.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field


from repro.sim.network import SyncNetwork
from repro.types import NodeId

__all__ = [
    "DeliveryRecord",
    "RunRecording",
    "RecordingNetwork",
    "record_scenario",
    "verify_replay",
]


@dataclass(frozen=True)
class DeliveryRecord:
    """One message landing in one inbox."""

    round: int
    sender: NodeId
    recipient: NodeId
    kind: str
    payload_repr: str
    instance_repr: str


@dataclass
class RunRecording:
    """Everything observable about one finished run."""

    seed: int | None
    deliveries: list[DeliveryRecord] = field(default_factory=list)
    outputs: dict[str, str] = field(default_factory=dict)
    rounds: int = 0

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(
                {
                    "type": "meta",
                    "seed": self.seed,
                    "rounds": self.rounds,
                    "outputs": self.outputs,
                }
            )
        ]
        lines.extend(
            json.dumps(
                {
                    "type": "delivery",
                    "round": d.round,
                    "from": d.sender,
                    "to": d.recipient,
                    "kind": d.kind,
                    "payload": d.payload_repr,
                    "instance": d.instance_repr,
                }
            )
            for d in self.deliveries
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "RunRecording":
        recording = cls(seed=None)
        for line in text.splitlines():
            if not line.strip():
                continue
            data = json.loads(line)
            if data["type"] == "meta":
                recording.seed = data["seed"]
                recording.rounds = data["rounds"]
                recording.outputs = dict(data["outputs"])
            else:
                recording.deliveries.append(
                    DeliveryRecord(
                        round=data["round"],
                        sender=data["from"],
                        recipient=data["to"],
                        kind=data["kind"],
                        payload_repr=data["payload"],
                        instance_repr=data["instance"],
                    )
                )
        return recording

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(self.to_jsonl())

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "RunRecording":
        return cls.from_jsonl(pathlib.Path(path).read_text())


class RecordingNetwork(SyncNetwork):
    """A :class:`SyncNetwork` that records every delivery it makes.

    The recorder is an ordinary ``deliver``-topic subscriber of the
    network's event bus: each :class:`~repro.obs.events.InboxDelivered`
    event carries exactly the message sequence the engine handed out,
    so the recording matches the simulation's duplicate suppression and
    recipient resolution by construction (an earlier version re-derived
    deliveries from the staging queues with its own — subtly
    different — dedup key).  The seed is read back from the constructed
    network, so it is captured correctly whether it was passed
    positionally or by keyword.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.recording = RunRecording(seed=self.seed)
        self.bus.subscribe(self._record_delivery, "deliver")

    def _record_delivery(self, event) -> None:
        append = self.recording.deliveries.append
        round_no = event.round
        recipient = event.recipient
        for message in event.messages:
            append(
                DeliveryRecord(
                    round=round_no,
                    sender=message.sender,
                    recipient=recipient,
                    kind=message.kind,
                    payload_repr=repr(message.payload),
                    instance_repr=repr(message.instance),
                )
            )

    def finalize_recording(self) -> RunRecording:
        self.recording.rounds = self.round
        self.recording.outputs = {
            str(node): repr(value) for node, value in self.outputs().items()
        }
        return self.recording


def record_scenario(scenario) -> tuple:
    """Run a scenario on a recording network.

    Returns ``(ScenarioResult, RunRecording)``.  Mirrors
    :func:`repro.sim.runner.run_scenario` but swaps the network class.
    """
    from repro.sim import runner as runner_module

    original = runner_module.SyncNetwork
    runner_module.SyncNetwork = RecordingNetwork
    try:
        result = runner_module.run_scenario(scenario)
    finally:
        runner_module.SyncNetwork = original
    recording = result.network.finalize_recording()
    return result, recording


def verify_replay(scenario, recording: RunRecording) -> list[str]:
    """Re-run *scenario* and diff against *recording*.

    Returns a list of human-readable differences (empty = identical).
    """
    _result, fresh = record_scenario(scenario)
    differences: list[str] = []
    if fresh.outputs != recording.outputs:
        differences.append(
            f"outputs differ: {fresh.outputs} != {recording.outputs}"
        )
    if fresh.rounds != recording.rounds:
        differences.append(
            f"round counts differ: {fresh.rounds} != {recording.rounds}"
        )
    old = {
        (d.round, d.sender, d.recipient, d.kind, d.payload_repr,
         d.instance_repr)
        for d in recording.deliveries
    }
    new = {
        (d.round, d.sender, d.recipient, d.kind, d.payload_repr,
         d.instance_repr)
        for d in fresh.deliveries
    }
    for missing in sorted(old - new)[:5]:
        differences.append(f"recorded delivery missing in replay: {missing}")
    for extra in sorted(new - old)[:5]:
        differences.append(f"replay produced new delivery: {extra}")
    return differences
