"""Columnar round plane: struct-of-arrays storage for broadcast rounds.

The all-broadcast hot path used to allocate one
:class:`~repro.sim.message.Message` per logical send per round.  At
n = 10⁴ nodes that is 10⁴ objects per round before a single protocol
runs — and every query over them re-hashes the same payloads.  The
columnar plane replaces the per-message objects with four parallel
columns (sender, kind-id, payload-id, instance-id; plain typed lists of
small ints, ``numpy`` only as an optional accelerator behind the
``analysis`` extra) plus a *payload intern table*, so staging one
broadcast is a handful of list appends and every tally is a counting
pass over interned ids.

Three pieces:

* :class:`ColumnarPlane` — per-network intern tables (payloads, kinds,
  instances, canonical broadcast batches).  Interning follows the same
  value-equality the legacy ``dict``-based tallies used: the first
  object seen for a value becomes canonical, exactly like the first
  occurrence kept as a dict key.
* :class:`RoundColumns` — one round's append-only store: scalar columns
  for individual broadcasts plus *batch segments* for
  ``broadcast_many`` fan-outs (one segment entry covers k logical
  sends).  Columns are append-only within a round and frozen at
  delivery; views never copy them (pinned in DESIGN.md §4).
* :class:`ColumnarIndex` — an :class:`~repro.sim.inbox.InboxIndex`
  whose sender sets, payload tallies and surveys are counting passes
  over the columns; ``messages`` materializes lazily only when a
  consumer genuinely iterates message objects (JSONL sinks, recorders,
  per-kind bucket filters).

Equivalence contract: every query answers exactly what the legacy
object path answers, including the historical (count, repr,
first-occurrence-order) tie-break — pinned by the columnar-vs-object
suites in ``tests/properties/``.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Hashable, Iterator, Mapping, Sequence

from repro.sim.inbox import InboxIndex
from repro.sim.message import Message
from repro.types import NodeId

try:  # Optional accelerator (the ``analysis`` extra); never required.
    import numpy as _np
except ImportError:  # pragma: no cover - environment without numpy
    _np = None

#: Query-key sentinel mirroring :mod:`repro.sim.inbox`.
_ANY = ...

#: Marker in the per-sender batch map: this (sender, kind, instance)
#: fell back to scalar staging (mixed batch/scalar traffic).
_SCALARIZED = object()

#: Rows below this threshold never bother converting to numpy.
_NP_MIN_ROWS = 4096

#: Stop growing the batch identity-alias map past this point (a run
#: that churns distinct payload tuples falls back to value hashing).
_MAX_BATCH_ALIASES = 65536


class Batch:
    """A canonical interned broadcast batch: one kind/instance, k payloads.

    Registered once per distinct ``(kind, payloads, instance)`` value;
    every sender broadcasting the same batch stages one O(1) segment
    referencing this object.  ``staged_payloads`` is the payload tuple
    with exact duplicates removed in first-occurrence order — the same
    messages the legacy path would have staged from the expanded sends.
    """

    __slots__ = (
        "kind",
        "instance",
        "payloads",
        "staged_payloads",
        "payload_ids",
        "kind_id",
        "instance_id",
        "dup_flags",
    )

    def __init__(
        self,
        plane: "ColumnarPlane",
        kind: str,
        payloads: tuple[Hashable, ...],
        instance: Hashable,
    ):
        self.kind = kind
        self.instance = instance
        self.payloads = payloads
        staged = payloads
        dup_flags: tuple[bool, ...] | None = None
        if len(set(payloads)) != len(payloads):
            unique = dict.fromkeys(payloads)
            staged = tuple(unique)
            seen: set = set()
            flags = []
            for payload in payloads:
                fresh = payload not in seen
                seen.add(payload)
                flags.append(fresh)
            dup_flags = tuple(flags)
        self.staged_payloads = staged
        self.dup_flags = dup_flags
        self.payload_ids = tuple(
            plane.intern_payload(p) for p in staged
        )
        self.kind_id = plane.intern_kind(kind)
        self.instance_id = plane.intern_instance(instance)

    def __len__(self) -> int:
        return len(self.staged_payloads)


class ColumnarPlane:
    """Per-network intern tables shared by every round's columns.

    Interning is keyed by *value equality* — the exact semantics of the
    dicts the legacy tally path used — so the first object seen for a
    value becomes the canonical one for the rest of the run.  The
    tables only grow; ids are stable across rounds, which is what lets
    tallies in later rounds reuse earlier counting passes' ids.
    """

    __slots__ = (
        "payloads",
        "kinds",
        "instances",
        "payload_intern_hits",
        "messages_materialized",
        "_payload_ids",
        "_kind_ids",
        "_instance_ids",
        "_batches",
        "_batch_aliases",
    )

    def __init__(self) -> None:
        #: id -> canonical payload object (position == intern id).
        self.payloads: list[Hashable] = []
        self.kinds: list[str] = []
        self.instances: list[Hashable] = []
        #: Lookups that found an existing entry (the interning win the
        #: benchmarks otherwise only show as timing).
        self.payload_intern_hits: int = 0
        #: Message objects actually built across the run (each round's
        #: columns materialize at most once, and only when somebody
        #: iterates messages) — the honest "work done" counter next to
        #: the logical staged×recipients delivery figure.
        self.messages_materialized: int = 0
        self._payload_ids: dict[Hashable, int] = {}
        self._kind_ids: dict[str, int] = {}
        self._instance_ids: dict[Hashable, int] = {}
        #: (kind, payloads, instance) -> canonical Batch.
        self._batches: dict[tuple, Batch] = {}
        #: id(payload_tuple) -> (referent, Batch): identity fast path
        #: for the shared tuples the quorum plane hands every node.
        self._batch_aliases: dict[int, tuple[tuple, Batch]] = {}

    @property
    def unique_payloads(self) -> int:
        return len(self.payloads)

    def intern_payload(self, payload: Hashable) -> int:
        ids = self._payload_ids
        pid = ids.get(payload)
        if pid is None:
            pid = len(self.payloads)
            self.payloads.append(payload)
            ids[payload] = pid
        else:
            self.payload_intern_hits += 1
        return pid

    def intern_kind(self, kind: str) -> int:
        ids = self._kind_ids
        kid = ids.get(kind)
        if kid is None:
            kid = len(self.kinds)
            self.kinds.append(kind)
            ids[kind] = kid
        return kid

    def intern_instance(self, instance: Hashable) -> int:
        ids = self._instance_ids
        iid = ids.get(instance)
        if iid is None:
            iid = len(self.instances)
            self.instances.append(instance)
            ids[instance] = iid
        return iid

    def kind_id_of(self, kind: str) -> int | None:
        return self._kind_ids.get(kind)

    def instance_id_of(self, instance: Hashable) -> int | None:
        return self._instance_ids.get(instance)

    def intern_batch(
        self,
        kind: str,
        payloads: tuple[Hashable, ...],
        instance: Hashable,
    ) -> Batch:
        """The canonical batch for this fan-out (identity fast path).

        Nodes broadcasting the round's shared payload tuple (e.g. the
        quorum plane's sorted-announcers tuple) hit the id() alias and
        skip hashing the tuple entirely.
        """
        alias = self._batch_aliases.get(id(payloads))
        if alias is not None and alias[0] is payloads:
            return alias[1]
        key = (kind, payloads, instance)
        batch = self._batches.get(key)
        if batch is None:
            batch = self._batches[key] = Batch(
                self, kind, payloads, instance
            )
        if len(self._batch_aliases) < _MAX_BATCH_ALIASES:
            self._batch_aliases[id(payloads)] = (payloads, batch)
        return batch

    def new_round(self) -> "RoundColumns":
        return RoundColumns(self)


class RoundColumns:
    """One round's append-only struct-of-arrays broadcast store.

    Scalar broadcasts append one entry to each of the four parallel
    columns; ``broadcast_many`` batches append one *segment* record
    ``(scalar_boundary, sender, batch)`` covering k logical sends.
    Pinned invariant (DESIGN.md §4): columns are append-only within the
    round and frozen once delivery starts; every view (indexes, lazy
    message sequences, tallies) reads them in place and never copies.

    Duplicate suppression matches the legacy per-round Message-set
    exactly: a (sender, kind, payload, instance) already staged this
    round — scalar or inside one of the sender's batches — is dropped.
    """

    __slots__ = (
        "plane",
        "senders",
        "kind_ids",
        "payload_ids",
        "instance_ids",
        "segments",
        "batch_rows",
        "_dedup",
        "_sender_batches",
        "_scalar_ki",
        "_sender_scalar_keys",
        "_materialized",
        "_np_kind_ids",
    )

    def __init__(self, plane: ColumnarPlane) -> None:
        self.plane = plane
        self.senders: list[NodeId] = []
        self.kind_ids: list[int] = []
        self.payload_ids: list[int] = []
        self.instance_ids: list[int] = []
        #: (scalar rows staged before this segment, sender, batch).
        self.segments: list[tuple[int, NodeId, Batch]] = []
        #: Logical rows contributed by segments (sum of batch lengths).
        self.batch_rows: int = 0
        #: (sender, kind_id, instance_id, payload) for every staged
        #: scalar row — the raw payload keeps the legacy Message
        #: value-equality dedup semantics.
        self._dedup: set[tuple] = set()
        #: (sender, kind_id, instance_id) -> [Batch, ...] | _SCALARIZED.
        self._sender_batches: dict[tuple, Any] = {}
        #: Distinct (kind_id, instance_id) pairs among scalar rows.
        self._scalar_ki: set[tuple[int, int]] = set()
        #: (sender, kind_id, instance_id) triples with at least one
        #: scalar row: a later batch on the same triple must fall back
        #: to scalar staging so cross-form duplicates are suppressed.
        self._sender_scalar_keys: set[tuple] = set()
        self._materialized: tuple[Message, ...] | None = None
        self._np_kind_ids = None

    def __len__(self) -> int:
        return len(self.senders) + self.batch_rows

    # ------------------------------------------------------------------
    # Staging
    # ------------------------------------------------------------------
    def stage(
        self,
        sender: NodeId,
        kind: str,
        payload: Hashable,
        instance: Hashable,
    ) -> bool:
        """Stage one scalar broadcast; False when it is a duplicate."""
        plane = self.plane
        kid = plane.intern_kind(kind)
        iid = plane.intern_instance(instance)
        if self._sender_batches:
            prior = self._sender_batches.get((sender, kid, iid))
            if prior is not None and prior is not _SCALARIZED:
                self._scalarize(sender, kid, iid, prior)
        self._sender_scalar_keys.add((sender, kid, iid))
        key = (sender, kid, iid, payload)
        if key in self._dedup:
            return False
        self._dedup.add(key)
        self.senders.append(sender)
        self.kind_ids.append(kid)
        self.payload_ids.append(plane.intern_payload(payload))
        self.instance_ids.append(iid)
        self._scalar_ki.add((kid, iid))
        return True

    def stage_batch(
        self, sender: NodeId, batch: Batch
    ) -> tuple[int, tuple[bool, ...] | None]:
        """Stage one batch fan-out as a single segment.

        Returns ``(staged_count, per_payload_flags)`` over the batch's
        *original* payload tuple; ``flags`` is None when every payload
        staged (the hot path).
        """
        skey = (sender, batch.kind_id, batch.instance_id)
        prior = self._sender_batches.get(skey)
        if prior is None:
            if skey in self._sender_scalar_keys:
                # The sender already staged a scalar on this triple:
                # stage the batch scalar-by-scalar so an exact duplicate
                # of that earlier send is suppressed, as on the legacy
                # path.
                self._sender_batches[skey] = _SCALARIZED
                return self._stage_batch_scalar(sender, batch)
            self._sender_batches[skey] = [batch]
        elif prior is _SCALARIZED:
            return self._stage_batch_scalar(sender, batch)
        else:
            for earlier in prior:
                if earlier is batch:
                    # The sender re-broadcast the identical batch: every
                    # payload is a duplicate of its first staging.
                    return 0, (False,) * len(batch.payloads)
            # Distinct batches on one (sender, kind, instance): fall
            # back to scalar staging so segments stay overlap-free.
            self._scalarize(sender, batch.kind_id, batch.instance_id, prior)
            return self._stage_batch_scalar(sender, batch)
        self.segments.append((len(self.senders), sender, batch))
        self.batch_rows += len(batch.staged_payloads)
        if batch.dup_flags is None:
            return len(batch.payloads), None
        return len(batch.staged_payloads), batch.dup_flags

    def _scalarize(
        self, sender: NodeId, kid: int, iid: int, batches: list[Batch]
    ) -> None:
        """Fold a sender's staged batches into the scalar dedup set.

        Taken only when one sender mixes batches and scalars (or two
        distinct batches) on the same kind/instance — never on the
        all-correct hot path.  The already-staged segments stay where
        they are; this only arms exact duplicate detection for the
        sends that follow.
        """
        dedup = self._dedup
        for batch in batches:
            for payload in batch.staged_payloads:
                dedup.add((sender, kid, iid, payload))
        self._sender_batches[(sender, kid, iid)] = _SCALARIZED

    def _stage_batch_scalar(
        self, sender: NodeId, batch: Batch
    ) -> tuple[int, tuple[bool, ...] | None]:
        flags = []
        staged_count = 0
        for payload in batch.payloads:
            staged = self.stage(sender, batch.kind, payload, batch.instance)
            flags.append(staged)
            staged_count += staged
        return staged_count, tuple(flags)

    def contains_message(self, message: Message) -> bool:
        """Was an equal broadcast staged this round? (delivery dedup)."""
        plane = self.plane
        kid = plane.kind_id_of(message.kind)
        if kid is None:
            return False
        iid = plane.instance_id_of(message.instance)
        if iid is None:
            return False
        sender = message.sender
        if (sender, kid, iid, message.payload) in self._dedup:
            return True
        batches = self._sender_batches.get((sender, kid, iid))
        if batches is None or batches is _SCALARIZED:
            return False
        return any(
            message.payload in b.staged_payloads for b in batches
        )

    # ------------------------------------------------------------------
    # Views (read-only; the columns are frozen once delivery starts)
    # ------------------------------------------------------------------
    def _walk(self) -> Iterator[tuple]:
        """Yield ``("s", row_index)`` / ``("b", sender, batch)`` in exact
        staging order (segments interleave with scalar runs by their
        recorded scalar boundary)."""
        pos = 0
        for boundary, sender, batch in self.segments:
            while pos < boundary:
                yield ("s", pos)
                pos += 1
            yield ("b", sender, batch)
        total = len(self.senders)
        while pos < total:
            yield ("s", pos)
            pos += 1

    def materialize(self) -> tuple[Message, ...]:
        """The round's messages as objects, built once and cached."""
        cached = self._materialized
        if cached is None:
            plane = self.plane
            kinds = plane.kinds
            payloads = plane.payloads
            instances = plane.instances
            senders = self.senders
            kind_ids = self.kind_ids
            payload_ids = self.payload_ids
            instance_ids = self.instance_ids
            out: list[Message] = []
            for entry in self._walk():
                if entry[0] == "s":
                    j = entry[1]
                    out.append(
                        Message(
                            senders[j],
                            kinds[kind_ids[j]],
                            payloads[payload_ids[j]],
                            instances[instance_ids[j]],
                        )
                    )
                else:
                    _, sender, batch = entry
                    kind = batch.kind
                    instance = batch.instance
                    out.extend(
                        Message(sender, kind, payload, instance)
                        for payload in batch.staged_payloads
                    )
            cached = self._materialized = tuple(out)
            plane.messages_materialized += len(cached)
        return cached

    def _scalar_matches(self, kid: int, iid_filter: Any) -> Iterator[int]:
        """Scalar row indices with the given kind (and instance) id."""
        kind_ids = self.kind_ids
        if _np is not None and len(kind_ids) >= _NP_MIN_ROWS:
            arr = self._np_kind_ids
            if arr is None:
                arr = self._np_kind_ids = _np.array(
                    kind_ids, dtype=_np.int64
                )
            elif len(arr) != len(kind_ids):  # pragma: no cover - frozen
                arr = self._np_kind_ids = _np.array(
                    kind_ids, dtype=_np.int64
                )
            hits = _np.nonzero(arr == kid)[0].tolist()
        else:
            hits = [j for j, k in enumerate(kind_ids) if k == kid]
        if iid_filter is _ANY:
            return iter(hits)
        instance_ids = self.instance_ids
        return (j for j in hits if instance_ids[j] == iid_filter)

    def payload_tally(
        self, kind: str, instance: Any
    ) -> dict[Hashable, frozenset[NodeId]]:
        """payload -> distinct senders, in first-occurrence order.

        Matches the legacy linear scan exactly, including ordering.
        The all-segments case groups by canonical batch so homogeneous
        echo rounds cost O(senders + payloads), not O(senders x
        payloads) — every tag then shares one sender frozenset, which
        the quorum plane's threshold caches key on by identity.
        """
        plane = self.plane
        kid = plane.kind_id_of(kind)
        if kid is None:
            return {}
        iid = _ANY
        if instance is not _ANY:
            iid = plane.instance_id_of(instance)
            if iid is None:
                return {}
        scalars_match = (
            any(k == kid for k, _ in self._scalar_ki)
            if iid is _ANY
            else (kid, iid) in self._scalar_ki
        )
        seg_match = [
            (sender, batch)
            for _, sender, batch in self.segments
            if batch.kind_id == kid
            and (iid is _ANY or batch.instance_id == iid)
        ]
        if not scalars_match:
            if not seg_match:
                return {}
            # Group segments by canonical batch (insertion order is the
            # batches' first occurrence, which reproduces the stream's
            # first-occurrence payload order).
            by_batch: dict[Batch, list[NodeId]] = {}
            for sender, batch in seg_match:
                group = by_batch.get(batch)
                if group is None:
                    by_batch[batch] = [sender]
                else:
                    group.append(sender)
            out: dict[Hashable, frozenset[NodeId]] = {}
            for batch, group in by_batch.items():
                shared = frozenset(group)
                for payload in batch.staged_payloads:
                    existing = out.get(payload)
                    out[payload] = (
                        shared if existing is None else existing | shared
                    )
            return out
        grouped: dict[Hashable, set[NodeId]] = {}
        payloads = plane.payloads
        payload_ids = self.payload_ids
        senders = self.senders
        kind_ids = self.kind_ids
        instance_ids = self.instance_ids
        for entry in self._walk():
            if entry[0] == "s":
                j = entry[1]
                if kind_ids[j] != kid:
                    continue
                if iid is not _ANY and instance_ids[j] != iid:
                    continue
                grouped.setdefault(payloads[payload_ids[j]], set()).add(
                    senders[j]
                )
            else:
                _, sender, batch = entry
                if batch.kind_id != kid:
                    continue
                if iid is not _ANY and batch.instance_id != iid:
                    continue
                for payload in batch.staged_payloads:
                    grouped.setdefault(payload, set()).add(sender)
        return {
            payload: frozenset(group)
            for payload, group in grouped.items()
        }

    def distinct_senders(self) -> frozenset[NodeId]:
        senders = set(self.senders)
        senders.update(sender for _, sender, _ in self.segments)
        return frozenset(senders)

    def kind_senders(self, kind: str, instance: Any) -> frozenset[NodeId]:
        plane = self.plane
        kid = plane.kind_id_of(kind)
        if kid is None:
            return frozenset()
        iid = _ANY
        if instance is not _ANY:
            iid = plane.instance_id_of(instance)
            if iid is None:
                return frozenset()
        senders = self.senders
        out = {senders[j] for j in self._scalar_matches(kid, iid)}
        out.update(
            sender
            for _, sender, batch in self.segments
            if batch.kind_id == kid
            and (iid is _ANY or batch.instance_id == iid)
        )
        return frozenset(out)

    def present_kinds(self) -> frozenset[str]:
        kinds = self.plane.kinds
        out = {kinds[kid] for kid, _ in self._scalar_ki}
        out.update(batch.kind for _, _, batch in self.segments)
        return frozenset(out)

    def instance_survey(self) -> tuple[Hashable, ...]:
        """Instance tags (None excluded) in first-occurrence order."""
        seen: set[int] = set()
        ordered: list[Hashable] = []
        instances = self.plane.instances
        instance_ids = self.instance_ids
        for entry in self._walk():
            if entry[0] == "s":
                iid = instance_ids[entry[1]]
            else:
                iid = entry[2].instance_id
            if iid not in seen:
                seen.add(iid)
                tag = instances[iid]
                if tag is not None:
                    ordered.append(tag)
        return tuple(ordered)

    def sender_rows(self, sender: NodeId) -> tuple[Message, ...]:
        """All of one sender's messages, in staging order, without
        materializing anyone else's."""
        plane = self.plane
        kinds = plane.kinds
        payloads = plane.payloads
        instances = plane.instances
        senders = self.senders
        out: list[Message] = []
        for entry in self._walk():
            if entry[0] == "s":
                j = entry[1]
                if senders[j] != sender:
                    continue
                out.append(
                    Message(
                        sender,
                        kinds[self.kind_ids[j]],
                        payloads[self.payload_ids[j]],
                        instances[self.instance_ids[j]],
                    )
                )
            elif entry[1] == sender:
                batch = entry[2]
                out.extend(
                    Message(sender, batch.kind, payload, batch.instance)
                    for payload in batch.staged_payloads
                )
        return tuple(out)

    def instance_rows(self, instance: Hashable) -> tuple[Message, ...]:
        """One instance's messages in staging order (lazy per tag)."""
        plane = self.plane
        iid = plane.instance_id_of(instance)
        if iid is None:
            return ()
        kinds = plane.kinds
        payloads = plane.payloads
        senders = self.senders
        instance_ids = self.instance_ids
        out: list[Message] = []
        for entry in self._walk():
            if entry[0] == "s":
                j = entry[1]
                if instance_ids[j] != iid:
                    continue
                out.append(
                    Message(
                        senders[j],
                        kinds[self.kind_ids[j]],
                        payloads[self.payload_ids[j]],
                        instance,
                    )
                )
            else:
                _, sender, batch = entry
                if batch.instance_id != iid:
                    continue
                out.extend(
                    Message(sender, batch.kind, payload, instance)
                    for payload in batch.staged_payloads
                )
        return tuple(out)


class ColumnarMessages(Sequence):
    """Lazy message sequence over one round's columns.

    ``len`` and truthiness are O(1) column reads; iteration (a JSONL
    sink rendering the delivery, a recorder) materializes the round's
    shared message tuple once and caches it on the columns — the same
    tuple the :class:`ColumnarIndex` exposes, so nothing is built
    twice.  This is what :class:`~repro.obs.events.InboxDelivered`
    carries on the columnar path; its wire shape (a sequence of
    messages) is unchanged.
    """

    __slots__ = ("_cols",)

    def __init__(self, cols: RoundColumns):
        self._cols = cols

    def __len__(self) -> int:
        return len(self._cols)

    def __bool__(self) -> bool:
        return len(self._cols) > 0

    def __iter__(self) -> Iterator[Message]:
        return iter(self._cols.materialize())

    def __getitem__(self, item):
        return self._cols.materialize()[item]

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarMessages):
            other = other._cols.materialize()
        if isinstance(other, (tuple, list)):
            return self._cols.materialize() == tuple(other)
        return NotImplemented

    def __hash__(self):
        return hash(self._cols.materialize())


class ColumnarIndex(InboxIndex):
    """An inbox index whose answers are counting passes over columns.

    Drop-in compatible with :class:`~repro.sim.inbox.InboxIndex`: the
    query methods that drive the paper's quorum counting (sender sets,
    payload tallies, surveys, per-sender buckets) read the columns
    directly; anything that genuinely needs message objects (per-kind
    bucket filters, restrictions, layering) falls through to the base
    implementation via the lazily materialized ``messages`` tuple.
    """

    __slots__ = ("_cols", "_by_sender_cols", "_by_instance_cols")

    def __init__(self, cols: RoundColumns):
        super().__init__(())
        # Unset the messages slot: reads fall into __getattr__, which
        # materializes on first genuine demand and re-fills the slot.
        del self.messages
        self._cols = cols
        self._by_sender_cols: dict[NodeId, tuple[Message, ...]] = {}
        self._by_instance_cols: dict[Hashable, tuple[Message, ...]] = {}

    def __getattr__(self, name: str):
        if name == "messages":
            materialized = self._cols.materialize()
            self.messages = materialized
            return materialized
        raise AttributeError(name)

    @property
    def columns(self) -> RoundColumns:
        return self._cols

    def message_view(self) -> ColumnarMessages:
        return ColumnarMessages(self._cols)

    # -- counting passes ------------------------------------------------
    @property
    def all_senders(self) -> frozenset[NodeId]:
        senders = self._all_senders
        if senders is None:
            senders = self._all_senders = self._cols.distinct_senders()
        return senders

    def sender_set(
        self, kind: str | None, payload: Any, instance: Any
    ) -> frozenset[NodeId]:
        if kind is None:
            if payload is _ANY and instance is _ANY:
                return self.all_senders
            return super().sender_set(kind, payload, instance)
        key = (kind, payload, instance)
        cached = self._sender_sets.get(key)
        if cached is None:
            if payload is _ANY:
                cached = self._cols.kind_senders(kind, instance)
            else:
                cached = self.payload_senders(kind, instance).get(
                    payload, frozenset()
                )
            self._sender_sets[key] = cached
        return cached

    def payload_senders(
        self, kind: str, instance: Any
    ) -> Mapping[Hashable, frozenset[NodeId]]:
        key = (kind, instance)
        cached = self._payload_senders.get(key)
        if cached is None:
            cached = self._payload_senders[key] = MappingProxyType(
                self._cols.payload_tally(kind, instance)
            )
        return cached

    # -- surveys --------------------------------------------------------
    @property
    def all_kinds(self) -> frozenset[str]:
        kinds = self._kinds
        if kinds is None:
            kinds = self._kinds = self._cols.present_kinds()
        return kinds

    @property
    def all_instances(self) -> frozenset[Hashable]:
        instances = self._instances
        if instances is None:
            instances = self._instances = frozenset(
                self.instance_tags()
            )
        return instances

    def instance_tags(self) -> tuple[Hashable, ...]:
        tags = self._instance_tags
        if tags is None:
            tags = self._instance_tags = self._cols.instance_survey()
        return tags

    # -- buckets that avoid whole-round materialization -----------------
    def sender_bucket(self, sender: NodeId) -> tuple[Message, ...]:
        if self._by_sender is not None:
            # Someone already materialized the full bucket map.
            return self._by_sender.get(sender, ())
        bucket = self._by_sender_cols.get(sender)
        if bucket is None:
            bucket = self._by_sender_cols[sender] = self._cols.sender_rows(
                sender
            )
        return bucket

    def instance_bucket(self, instance: Hashable) -> tuple[Message, ...]:
        if self._by_instance is not None:
            return self._by_instance.get(instance, ())
        bucket = self._by_instance_cols.get(instance)
        if bucket is None:
            bucket = self._by_instance_cols[instance] = (
                self._cols.instance_rows(instance)
            )
        return bucket
