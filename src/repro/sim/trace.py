"""Event tracing.

Protocols emit semantic events (``accept``, ``decide``, ``good-round``)
through :meth:`repro.sim.node.NodeApi.emit`; the trace records them with the
round and node so that property checkers can verify timing-sensitive claims
such as the relay property ("if a correct node accepts in round ``r``, every
correct node accepts by ``r + 1``") after the run.

The event class itself lives in :mod:`repro.obs.events` as
:class:`~repro.obs.events.ProtocolEvent` (re-exported here as
``TraceEvent`` for backward compatibility), and a :class:`Trace` is one
subscriber of the run's :class:`~repro.obs.bus.EventBus`
(:meth:`Trace.attach`) — it keeps the append-only log and the query
helpers; the stream itself is the bus's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.events import ProtocolEvent
from repro.types import NodeId, Round

#: Backward-compatible alias: the semantic event type now shared by all
#: runtimes.
TraceEvent = ProtocolEvent

__all__ = ["Trace", "TraceEvent"]


@dataclass
class Trace:
    """Append-only semantic-event log for one run.

    Observers subscribed via :meth:`subscribe` see every event as it is
    recorded — the hook behind the online monitors in
    :mod:`repro.analysis.monitor` (fail fast on the round a property
    breaks, instead of diagnosing post-mortem).
    """

    events: list[TraceEvent] = field(default_factory=list)
    _observers: list = field(default_factory=list, repr=False)

    def subscribe(self, observer) -> None:
        """Register ``observer(event: TraceEvent)`` for live events."""
        self._observers.append(observer)

    def attach(self, bus) -> "Trace":
        """Log the ``protocol`` events of *bus*; returns self."""
        bus.subscribe(self.ingest, TraceEvent.topic)
        return self

    def detach(self, bus) -> None:
        """Stop logging events from *bus*."""
        bus.unsubscribe(self.ingest)

    def ingest(self, event: TraceEvent) -> None:
        """Append an already-constructed event (the bus handler)."""
        self.events.append(event)
        for observer in self._observers:
            observer(event)

    def record(
        self, round_no: Round, node: NodeId, event: str, detail: dict[str, Any]
    ) -> None:
        """Construct and append an event directly (tests, ad-hoc use)."""
        self.ingest(TraceEvent(round_no, node, event, dict(detail)))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of(self, event: str, node: NodeId | None = None) -> list[TraceEvent]:
        """All events with the given name (optionally from one node)."""
        return [
            e
            for e in self.events
            if e.event == event and (node is None or e.node == node)
        ]

    def first(self, event: str, node: NodeId | None = None) -> TraceEvent | None:
        """The earliest matching event, or None."""
        matching = self.of(event, node)
        return min(matching, key=lambda e: e.round) if matching else None

    def rounds_of(self, event: str) -> dict[NodeId, Round]:
        """Map node -> earliest round it emitted *event*."""
        earliest: dict[NodeId, Round] = {}
        for e in self.events:
            if e.event == event:
                if e.node not in earliest or e.round < earliest[e.node]:
                    earliest[e.node] = e.round
        return earliest
