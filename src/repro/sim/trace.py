"""Event tracing.

Protocols emit semantic events (``accept``, ``decide``, ``good-round``)
through :meth:`repro.sim.node.NodeApi.emit`; the trace records them with the
round and node so that property checkers can verify timing-sensitive claims
such as the relay property ("if a correct node accepts in round ``r``, every
correct node accepts by ``r + 1``") after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.types import NodeId, Round


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One semantic event emitted by a node during a run."""

    round: Round
    node: NodeId
    event: str
    detail: dict[str, Any]

    def get(self, key: str, default: Any = None) -> Any:
        return self.detail.get(key, default)


@dataclass
class Trace:
    """Append-only event log for one run.

    Observers subscribed via :meth:`subscribe` see every event as it is
    recorded — the hook behind the online monitors in
    :mod:`repro.analysis.monitor` (fail fast on the round a property
    breaks, instead of diagnosing post-mortem).
    """

    events: list[TraceEvent] = field(default_factory=list)
    _observers: list = field(default_factory=list, repr=False)

    def subscribe(self, observer) -> None:
        """Register ``observer(event: TraceEvent)`` for live events."""
        self._observers.append(observer)

    def record(
        self, round_no: Round, node: NodeId, event: str, detail: dict[str, Any]
    ) -> None:
        recorded = TraceEvent(round_no, node, event, dict(detail))
        self.events.append(recorded)
        for observer in self._observers:
            observer(recorded)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of(self, event: str, node: NodeId | None = None) -> list[TraceEvent]:
        """All events with the given name (optionally from one node)."""
        return [
            e
            for e in self.events
            if e.event == event and (node is None or e.node == node)
        ]

    def first(self, event: str, node: NodeId | None = None) -> TraceEvent | None:
        """The earliest matching event, or None."""
        matching = self.of(event, node)
        return min(matching, key=lambda e: e.round) if matching else None

    def rounds_of(self, event: str) -> dict[NodeId, Round]:
        """Map node -> earliest round it emitted *event*."""
        earliest: dict[NodeId, Round] = {}
        for e in self.events:
            if e.event == event:
                if e.node not in earliest or e.round < earliest[e.node]:
                    earliest[e.node] = e.round
        return earliest
