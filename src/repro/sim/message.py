"""Network messages.

A message carries a *kind* (protocol-level tag such as ``"echo"``), an
optional *payload*, and an optional *instance* namespace used when several
protocol instances share the wire (parallel consensus tags messages with the
round that started the instance).

Messages must be hashable: the model discards duplicate messages from the
same sender within a round, which the simulator implements with a set.  Use
tuples/frozensets rather than lists/sets in payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.types import NodeId

#: Sentinel destination meaning "broadcast to every participant".
BROADCAST: object = object()


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message as delivered to a recipient.

    The ``sender`` field is stamped by the network, never by the sending
    protocol, which is how the model guarantees that identifiers cannot be
    forged in direct communication.
    """

    sender: NodeId
    kind: str
    payload: Hashable = None
    instance: Hashable = None

    def matches(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> bool:
        """Return True when this message matches every given filter.

        ``payload``/``instance`` use ``...`` (Ellipsis) as "don't care" so
        that ``None`` remains a matchable value.
        """
        if kind is not None and self.kind != kind:
            return False
        if payload is not ... and self.payload != payload:
            return False
        if instance is not ... and self.instance != instance:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Send:
    """An outgoing message before the network stamps the sender.

    ``dest`` is either a concrete :data:`~repro.types.NodeId` or the
    :data:`BROADCAST` sentinel.
    """

    dest: Any
    kind: str
    payload: Hashable = None
    instance: Hashable = None

    def stamped(self, sender: NodeId) -> Message:
        """Produce the wire message with the network-stamped sender id."""
        return Message(
            sender=sender, kind=self.kind, payload=self.payload, instance=self.instance
        )


@dataclass(slots=True)
class Outbox:
    """Collects a node's sends within one round."""

    sends: list[Send] = field(default_factory=list)

    def broadcast(
        self, kind: str, payload: Hashable = None, instance: Hashable = None
    ) -> None:
        self.sends.append(Send(BROADCAST, kind, payload, instance))

    def send(
        self,
        dest: NodeId,
        kind: str,
        payload: Hashable = None,
        instance: Hashable = None,
    ) -> None:
        self.sends.append(Send(dest, kind, payload, instance))

    def __len__(self) -> int:
        return len(self.sends)

    def __iter__(self):
        return iter(self.sends)
