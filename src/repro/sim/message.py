"""Network messages.

A message carries a *kind* (protocol-level tag such as ``"echo"``), an
optional *payload*, and an optional *instance* namespace used when several
protocol instances share the wire (parallel consensus tags messages with the
round that started the instance).

Messages must be hashable: the model discards duplicate messages from the
same sender within a round, which the simulator implements with a set.  Use
tuples/frozensets rather than lists/sets in payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.types import NodeId

#: Sentinel destination meaning "broadcast to every participant".
BROADCAST: object = object()


@dataclass(frozen=True, slots=True)
class Message:
    """An immutable message as delivered to a recipient.

    The ``sender`` field is stamped by the network, never by the sending
    protocol, which is how the model guarantees that identifiers cannot be
    forged in direct communication.
    """

    sender: NodeId
    kind: str
    payload: Hashable = None
    instance: Hashable = None

    def matches(
        self,
        kind: str | None = None,
        payload: Any = ...,
        instance: Any = ...,
    ) -> bool:
        """Return True when this message matches every given filter.

        ``payload``/``instance`` use ``...`` (Ellipsis) as "don't care" so
        that ``None`` remains a matchable value.
        """
        if kind is not None and self.kind != kind:
            return False
        if payload is not ... and self.payload != payload:
            return False
        if instance is not ... and self.instance != instance:
            return False
        return True


@dataclass(frozen=True, slots=True)
class Send:
    """An outgoing message before the network stamps the sender.

    ``dest`` is either a concrete :data:`~repro.types.NodeId` or the
    :data:`BROADCAST` sentinel.
    """

    dest: Any
    kind: str
    payload: Hashable = None
    instance: Hashable = None

    def stamped(self, sender: NodeId) -> Message:
        """Produce the wire message with the network-stamped sender id."""
        return Message(
            sender=sender, kind=self.kind, payload=self.payload, instance=self.instance
        )


@dataclass(frozen=True, slots=True)
class BatchSend:
    """A broadcast fan-out: one kind/instance, many payloads, one entry.

    The all-broadcast protocols regularly re-echo every known tag in one
    round; staging that as k separate :class:`Send` objects is what the
    columnar plane exists to avoid.  A batch stays a single object from
    the outbox through staging — the network registers the payload tuple
    once and records one segment per sender.  ``payloads`` must be a
    tuple of hashables; an empty batch is never created
    (:meth:`Outbox.broadcast_many` drops it).
    """

    kind: str
    payloads: tuple[Hashable, ...]
    instance: Hashable = None

    def expanded(self) -> "tuple[Send, ...]":
        """The equivalent scalar broadcasts, in payload order."""
        return tuple(
            Send(BROADCAST, self.kind, payload, self.instance)
            for payload in self.payloads
        )


def expand_sends(sends):
    """Iterate *sends* with every :class:`BatchSend` expanded in place.

    Consumers that genuinely need per-send granularity (adversary
    strategies transforming traffic, the async runtime's per-message
    queues) use this to stay batch-agnostic.
    """
    for send in sends:
        if type(send) is BatchSend:
            yield from send.expanded()
        else:
            yield send


@dataclass(slots=True)
class Outbox:
    """Collects a node's sends within one round."""

    sends: list[Send] = field(default_factory=list)

    def broadcast(
        self, kind: str, payload: Hashable = None, instance: Hashable = None
    ) -> None:
        self.sends.append(Send(BROADCAST, kind, payload, instance))

    def broadcast_many(
        self,
        kind: str,
        payloads: tuple[Hashable, ...],
        instance: Hashable = None,
    ) -> None:
        """Broadcast one message per payload as a single batched entry.

        Exactly equivalent to ``for p in payloads: broadcast(kind, p,
        instance)`` — same delivery, same duplicate suppression, same
        observable send events — but staged as one batch.
        """
        if not isinstance(payloads, tuple):
            payloads = tuple(payloads)
        if payloads:
            self.sends.append(BatchSend(kind, payloads, instance))

    def send(
        self,
        dest: NodeId,
        kind: str,
        payload: Hashable = None,
        instance: Hashable = None,
    ) -> None:
        self.sends.append(Send(dest, kind, payload, instance))

    def __len__(self) -> int:
        """Number of staged entries (a batch counts once; see ``sends``)."""
        return len(self.sends)

    def __iter__(self):
        """Iterate logical sends, expanding batches to scalar broadcasts.

        The engine reads ``sends`` directly (batches intact); everything
        else — tests, adversaries, the net runtime — iterates and sees
        the historical per-send granularity.
        """
        return expand_sends(self.sends)
