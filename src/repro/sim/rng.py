"""Deterministic randomness helpers.

Every stochastic choice in the library flows through a
:class:`random.Random` built by :func:`make_rng`, so any run is exactly
reproducible from its seed.  Node identifiers are drawn *sparsely* by
default: the paper is explicit that ids are unique but not necessarily
consecutive, and several classic algorithms silently rely on consecutive
ids — sparse ids keep us honest.
"""

from __future__ import annotations

import random

from repro.types import NodeId

#: Re-exported generator type, so the rest of the library can annotate
#: and subclass without importing ``random`` directly (the lint rule
#: R301 confines that import to this module).
Random = random.Random

#: Default id-space upper bound.  Large enough that collisions with small
#: test populations are effectively impossible, small enough to read.
DEFAULT_ID_SPACE = 10**6


def make_rng(seed: int | None, salt: int = 0) -> random.Random:
    """A fresh deterministic generator for *seed* (None -> seed 0).

    ``None`` maps to a fixed seed rather than OS entropy: experiments must
    never be accidentally irreproducible.  *salt* derives an independent
    stream from the same user-facing seed (e.g. the loss lottery of
    :class:`~repro.sim.lossy.LossyNetwork` must not perturb the engine's
    main stream); it xors into the seed, so ``salt=0`` is the identity.
    """
    return random.Random((0 if seed is None else seed) ^ salt)


def sparse_ids(
    count: int, rng: random.Random, id_space: int = DEFAULT_ID_SPACE
) -> list[NodeId]:
    """Draw *count* distinct, sorted, non-consecutive-looking node ids."""
    if count > id_space:
        raise ValueError(f"cannot draw {count} distinct ids from {id_space}")
    return sorted(rng.sample(range(1, id_space + 1), count))


def consecutive_ids(count: int, start: int = 0) -> list[NodeId]:
    """Consecutive ids ``start .. start+count-1`` (for known-n/f baselines)."""
    return list(range(start, start + count))
