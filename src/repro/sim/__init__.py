"""Synchronous round-based network simulator (the paper's execution model).

The id-only model is a lock-step synchronous message-passing system:
messages sent in round ``r`` are delivered at the start of round ``r + 1``,
a node may broadcast to everyone or send directly to a prior contact, sender
identifiers cannot be forged, and per-round duplicates are discarded.  This
package implements that model exactly, deterministically, and with full
metrics/tracing so the paper's claims can be measured rather than assumed.

Public surface:

* :class:`~repro.sim.message.Message` — immutable network message.
* :class:`~repro.sim.inbox.Inbox` — per-round received messages with
  quorum-counting helpers.
* :class:`~repro.sim.node.Protocol` / :class:`~repro.sim.node.NodeApi` —
  what a correct node implements / what it may do.
* :class:`~repro.sim.network.SyncNetwork` — the round engine.
* :class:`~repro.sim.runner.Scenario` / :func:`~repro.sim.runner.run_scenario`
  — one-call experiment harness.
"""

from repro.sim.inbox import Inbox
from repro.sim.membership import JoinSpec, MembershipSchedule
from repro.sim.message import BROADCAST, Message
from repro.sim.metrics import Metrics
from repro.sim.network import SyncNetwork
from repro.sim.node import NodeApi, Protocol
from repro.sim.rng import make_rng, sparse_ids
from repro.sim.runner import Scenario, ScenarioResult, run_scenario
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "BROADCAST",
    "Inbox",
    "JoinSpec",
    "MembershipSchedule",
    "Message",
    "Metrics",
    "NodeApi",
    "Protocol",
    "Scenario",
    "ScenarioResult",
    "SyncNetwork",
    "Trace",
    "TraceEvent",
    "make_rng",
    "run_scenario",
    "sparse_ids",
]
