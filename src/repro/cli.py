"""Command-line interface: ``repro`` (or ``python -m repro``).

Subcommands:

* ``repro run <protocol>`` — one seeded run of any core protocol against
  a chosen adversary, with the outcome and metrics printed; accepts
  ``--scenario FILE`` to replay a serialized :class:`RunSpec` instead
  (e.g. a campaign violation artifact);
* ``repro sweep <protocol>`` — a resiliency sweep over ``f`` for a fixed
  population, printing the success-rate table;
* ``repro matrix <protocol>`` — every registered adversary, one table;
* ``repro campaign [protocol]`` — a Monte Carlo churn campaign: many
  seed-derived RunSpecs in a worker pool, per-monitor violation rates;
* ``repro record <protocol>`` — record a run to JSONL, or verify one;
* ``repro demo impossibility`` — the §9 partition/embedding experiments;
* ``repro lint`` — the static model-invariant checker (``repro.lint``).

Every run is constructed through :mod:`repro.scenario` — the CLI never
assembles populations by hand (lint rule R502 enforces this), so
anything it runs can be serialized, shared, and replayed.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import Hashable

from repro.adversary import STRATEGY_BUILDERS
from repro.analysis.checkers import (
    CheckReport,
    check_agreement,
    check_chain_prefix,
)
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.asyncsim import run_async_partition, run_semisync_embedding
from repro.scenario import (
    CHURN_KINDS,
    ChurnSpec,
    PROTOCOLS,
    RunSpec,
    SAMPLED_PROTOCOLS,
    materialize,
    run_spec,
)


def _parse_params(pairs) -> dict:
    """``key=value`` pairs -> dict, values parsed as JSON when possible."""
    params: dict = {}
    for pair in pairs or ():
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SystemExit(f"expected key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _spec_from_args(
    args, f_override: int | None = None, seed: int = 0
) -> RunSpec:
    byzantine = args.f if f_override is None else f_override
    churn = None
    churn_kind = getattr(args, "churn", None)
    if churn_kind and churn_kind != "none":
        churn = ChurnSpec(
            churn_kind, _parse_params(getattr(args, "churn_param", None))
        )
    return RunSpec(
        protocol=args.protocol,
        n=args.n,
        f=byzantine,
        variant=getattr(args, "variant", "full"),
        protocol_params=_parse_params(getattr(args, "protocol_param", None)),
        adversary=args.adversary,
        churn=churn,
        seed=seed,
        rushing=args.rushing,
        max_rounds=args.max_rounds,
        enforce_resiliency=not args.force,
    )


def _judge(spec: RunSpec, result) -> CheckReport:
    """The protocol-appropriate pass/fail report for one finished run."""
    if spec.protocol == "total-order":
        chains = {
            nid: (list(p.output) if p.halted else p.chain)
            for nid, p in result.network.protocols().items()
        }
        return check_chain_prefix(chains)
    if spec.protocol == "reliable-broadcast":
        # No decide events to compare; acceptance properties have their
        # own checker requiring the sender tag — out of run's scope.
        return CheckReport("reliable-broadcast")
    return check_agreement(result)


def cmd_run(args) -> int:
    if args.scenario:
        spec = RunSpec.load(args.scenario)
        if args.seed is not None:
            spec = replace(spec, seed=args.seed)
    elif args.protocol is None:
        raise SystemExit("run: need a protocol or --scenario FILE")
    else:
        spec = _spec_from_args(args, seed=args.seed or 0)
    sink = None
    bus = None
    if args.events:
        from repro.obs import EventBus

        bus = EventBus()
        sink = bus.to_jsonl(args.events)
    try:
        result = run_spec(spec, bus=bus)
    finally:
        if sink is not None:
            sink.close()
    print(f"scenario : {spec.label()}")
    print(f"rounds   : {result.rounds}")
    print(f"messages : {result.metrics.sends_total}")
    if result.metrics.decisions:
        print(
            "economy  : "
            f"{result.metrics.messages_per_decision:.2f} msgs/decision "
            f"over {result.metrics.decisions} decisions"
        )
    print(f"outputs  : {result.outputs}")
    report = _judge(spec, result)
    print(f"{report.name}: {'OK' if report.ok else report.violations}")
    if sink is not None:
        print(f"events   : {sink.count} -> {args.events}")
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(result.trace, result.correct_ids))
    return 0 if report.ok else 1


def cmd_sweep(args) -> int:
    def build(point: Hashable, seed: int) -> RunSpec:
        return _spec_from_args(args, f_override=point, seed=seed)

    outcome = sweep(
        points=range(0, args.max_f + 1),
        build=build,
        judge=lambda r: check_agreement(r).ok,
        seeds=range(args.seeds),
    )
    for row in outcome.rows:
        row["f"] = row.pop("point")
        row["n>3f"] = "yes" if args.n > 3 * row["f"] else "no"
    print(
        format_table(
            outcome.rows,
            columns=["f", "n>3f", "ok%", "rounds(mean)", "msgs(mean)"],
            title=f"{args.protocol}, n={args.n}, adversary={args.adversary}",
        )
    )
    return 0


def cmd_matrix(args) -> int:
    """Run every registered adversary against one protocol."""
    rows = []
    for name in STRATEGY_BUILDERS:
        agreed = 0
        rounds = []
        for seed in range(args.seeds):
            spec = replace(
                _spec_from_args(args, seed=seed),
                adversary=name,
                rushing=True,
            )
            try:
                result = run_spec(spec)
            except Exception:
                rounds.append(args.max_rounds)
                continue
            agreed += check_agreement(result).ok
            rounds.append(result.rounds)
        rows.append(
            {
                "adversary": name,
                "ok%": round(100 * agreed / args.seeds, 1),
                "rounds(max)": max(rounds),
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.protocol}: adversary matrix, n={args.n} "
            f"f={args.f}, rushing",
        )
    )
    return 0 if all(r["ok%"] == 100.0 for r in rows) else 1


def cmd_campaign(args) -> int:
    from repro.analysis.campaign import format_campaign_report, run_campaign

    if args.scenario:
        base = RunSpec.load(args.scenario)
    else:
        base = _spec_from_args(args)
    report = run_campaign(
        base,
        runs=args.runs,
        campaign_seed=args.campaign_seed,
        workers=args.workers,
        artifacts_dir=args.artifacts,
    )
    print(format_campaign_report(report))
    if args.out:
        report.save(args.out)
        print(f"report   : {args.out}")
    if report.violations:
        print(f"VIOLATIONS: {len(report.violations)}")
        for record in report.violations[:10]:
            print(
                f"  run {record['index']} seed {record['seed']} "
                f"[{record['monitor']}] {record['message']}"
            )
            if "artifact" in record:
                print(f"    replay: repro run --scenario {record['artifact']}")
    return 0 if report.ok else 1


def cmd_record(args) -> int:
    from repro.sim.replay import RunRecording, record_scenario, verify_replay

    scenario = materialize(_spec_from_args(args, seed=args.seed))
    if args.verify:
        recording = RunRecording.load(args.verify)
        differences = verify_replay(scenario, recording)
        if differences:
            print("REPLAY MISMATCH:")
            for difference in differences:
                print(f"  {difference}")
            return 1
        print(
            f"replay of {args.verify} matches: "
            f"{len(recording.deliveries)} deliveries, "
            f"{recording.rounds} rounds, outputs identical"
        )
        return 0
    result, recording = record_scenario(scenario)
    recording.save(args.out)
    print(f"recorded {len(recording.deliveries)} deliveries over "
          f"{result.rounds} rounds -> {args.out}")
    return 0


def cmd_demo(args) -> int:
    if args.what == "impossibility":
        r = run_async_partition()
        print("Lemma 9.1 (asynchronous partition):")
        print(f"  decisions        : {r.decisions}")
        print(f"  disagreement     : {r.disagreement}")
        print(f"  indistinguishable: {r.indistinguishable}")
        s = run_semisync_embedding()
        print("Lemma 9.2 (semi-synchronous embedding):")
        print(f"  delta_a={s.delta_a} delta_b={s.delta_b} delta_s={s.delta_s}")
        print(f"  decisions        : {s.decisions}")
        print(f"  disagreement     : {s.disagreement}")
        print(f"  indistinguishable: {s.indistinguishable}")
        return 0
    raise SystemExit(f"unknown demo {args.what!r}")


def cmd_lint(args) -> int:
    """Delegate to :mod:`repro.lint` (``repro lint [lint options]``)."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Byzantine agreement with unknown participants and failures "
            "(PODC 2020) — simulation toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, protocol_optional: bool = False):
        if protocol_optional:
            p.add_argument("protocol", nargs="?", choices=PROTOCOLS)
        else:
            p.add_argument("protocol", choices=PROTOCOLS)
        p.add_argument("--n", type=int, default=10, help="total nodes")
        p.add_argument("--f", type=int, default=3, help="Byzantine nodes")
        p.add_argument(
            "--adversary",
            default="silent",
            choices=STRATEGY_BUILDERS,
        )
        p.add_argument("--rushing", action="store_true")
        p.add_argument("--max-rounds", type=int, default=500)
        p.add_argument(
            "--variant",
            choices=("full", "sampled"),
            default="full",
            help="'sampled' runs the committee-sampled variant "
            f"({'/'.join(SAMPLED_PROTOCOLS)} only): a polylog committee "
            "decides, everyone else adopts via implicit agreement",
        )
        p.add_argument(
            "--protocol-param",
            action="append",
            metavar="KEY=VALUE",
            help="protocol-specific knob (JSON value), repeatable",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="allow configurations violating n > 3f",
        )

    run_p = sub.add_parser("run", help="one seeded run")
    common(run_p, protocol_optional=True)
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="load the RunSpec from a JSON file (e.g. a campaign "
        "violation artifact) instead of building it from flags",
    )
    run_p.add_argument(
        "--timeline",
        action="store_true",
        help="print the round-by-round event timeline",
    )
    run_p.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="stream the run's full event plane to FILE as "
        "schema-versioned JSONL (see docs/observability.md)",
    )
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="resiliency sweep over f")
    common(sweep_p)
    sweep_p.add_argument("--max-f", type=int, default=4)
    sweep_p.add_argument("--seeds", type=int, default=10)
    sweep_p.set_defaults(func=cmd_sweep, force=True)

    matrix_p = sub.add_parser(
        "matrix", help="every adversary against one protocol"
    )
    common(matrix_p)
    matrix_p.add_argument("--seeds", type=int, default=3)
    matrix_p.set_defaults(func=cmd_matrix)

    campaign_p = sub.add_parser(
        "campaign",
        help="Monte Carlo churn campaign: many seeded runs, one "
        "violation-rate report (see docs/scenarios.md)",
    )
    campaign_p.add_argument(
        "protocol", nargs="?", default="total-order", choices=PROTOCOLS
    )
    campaign_p.add_argument("--n", type=int, default=9, help="total nodes")
    campaign_p.add_argument("--f", type=int, default=2)
    campaign_p.add_argument(
        "--adversary", default="silent", choices=STRATEGY_BUILDERS
    )
    campaign_p.add_argument("--rushing", action="store_true")
    campaign_p.add_argument("--max-rounds", type=int, default=48)
    campaign_p.add_argument(
        "--churn",
        default="rate",
        choices=(*CHURN_KINDS, "none"),
        help="churn generator for every run (default: rate)",
    )
    campaign_p.add_argument(
        "--churn-param",
        action="append",
        metavar="KEY=VALUE",
        help="churn generator parameter (JSON value), repeatable",
    )
    campaign_p.add_argument(
        "--protocol-param",
        action="append",
        metavar="KEY=VALUE",
        help="protocol-specific knob (JSON value), repeatable",
    )
    campaign_p.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help="load the base RunSpec from a JSON file instead of flags",
    )
    campaign_p.add_argument("--runs", type=int, default=1000)
    campaign_p.add_argument(
        "--campaign-seed",
        type=int,
        default=0,
        help="master seed; per-run seeds derive from (it, run index)",
    )
    campaign_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size (report bytes are worker-count-invariant)",
    )
    campaign_p.add_argument(
        "--out", default=None, metavar="FILE", help="save the JSON report"
    )
    campaign_p.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="save each violating RunSpec as a replayable JSON artifact",
    )
    campaign_p.set_defaults(
        func=cmd_campaign, variant="full", force=False
    )

    record_p = sub.add_parser(
        "record", help="record a run to JSONL, or verify one"
    )
    common(record_p)
    record_p.add_argument("--seed", type=int, default=0)
    record_p.add_argument(
        "--out", default="run.jsonl", help="recording output path"
    )
    record_p.add_argument(
        "--verify",
        default=None,
        help="verify a prior recording instead of writing one",
    )
    record_p.set_defaults(func=cmd_record)

    demo_p = sub.add_parser("demo", help="canned demonstrations")
    demo_p.add_argument("what", choices=["impossibility"])
    demo_p.set_defaults(func=cmd_demo)

    lint_p = sub.add_parser(
        "lint",
        help="statically check the model invariants (see repro.lint)",
        add_help=False,
    )
    lint_p.add_argument("rest", nargs=argparse.REMAINDER)
    lint_p.set_defaults(func=cmd_lint)  # main() intercepts before argparse
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Hand the whole tail to the lint CLI: argparse.REMAINDER cannot
        # forward leading options like --list-rules.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
