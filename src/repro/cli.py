"""Command-line interface: ``repro`` (or ``python -m repro``).

Three subcommands:

* ``repro run <protocol>`` — one seeded run of any core protocol against
  a chosen adversary, with the outcome and metrics printed;
* ``repro sweep <protocol>`` — a resiliency sweep over ``f`` for a fixed
  population, printing the success-rate table;
* ``repro demo impossibility`` — the §9 partition/embedding experiments;
* ``repro lint`` — the static model-invariant checker (``repro.lint``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Hashable

from repro.adversary import STRATEGY_BUILDERS, build_strategy
from repro.analysis.checkers import check_agreement
from repro.analysis.report import format_table
from repro.analysis.sweep import sweep
from repro.asyncsim import run_async_partition, run_semisync_embedding
from repro.core import (
    ApproximateAgreement,
    BinaryKingConsensus,
    ByzantineRenaming,
    CommitteeConsensus,
    CommitteeParallelConsensus,
    EarlyConsensus,
    InteractiveConsistency,
    ParallelConsensus,
    RotorCoordinator,
    TerminatingReliableBroadcast,
)
from repro.sim.runner import Scenario, run_scenario

PROTOCOLS = (
    "consensus",
    "binary-consensus",
    "rotor",
    "approx",
    "renaming",
    "parallel",
    "interactive-consistency",
    "trb",
)

#: Protocols with a committee-sampled variant (``--variant sampled``).
SAMPLED_PROTOCOLS = ("consensus", "parallel")


def _protocol_factory(name: str, variant: str = "full", seed: int = 0):
    """(node_id, index) -> protocol, with index-derived inputs."""
    if variant == "sampled":
        if name == "consensus":
            return lambda nid, i: CommitteeConsensus(
                i % 2, sampling_seed=seed
            )
        if name == "parallel":
            return lambda nid, i: CommitteeParallelConsensus(
                {"k": i % 2}, sampling_seed=seed
            )
        raise SystemExit(
            f"--variant sampled supports {SAMPLED_PROTOCOLS}, "
            f"not {name!r}"
        )
    if name == "consensus":
        return lambda nid, i: EarlyConsensus(i % 2)
    if name == "binary-consensus":
        return lambda nid, i: BinaryKingConsensus(i % 2)
    if name == "rotor":
        return lambda nid, i: RotorCoordinator(opinion=i)
    if name == "approx":
        return lambda nid, i: ApproximateAgreement(float(i))
    if name == "renaming":
        return lambda nid, i: ByzantineRenaming()
    if name == "parallel":
        return lambda nid, i: ParallelConsensus({"k": i % 2})
    if name == "interactive-consistency":
        return lambda nid, i: InteractiveConsistency(i)
    if name == "trb":
        # index 0's node acts as the designated sender; the factory is
        # called in index order so the first call fixes the sender id.
        sender: list = []

        def build(nid, i):
            if i == 0:
                sender.append(nid)
            return TerminatingReliableBroadcast(
                sender[0], "payload" if i == 0 else None
            )

        return build
    raise SystemExit(f"unknown protocol {name!r}; choose from {PROTOCOLS}")


def _wrapped_factory(name: str, variant: str = "full", seed: int = 0):
    """Zero-arg honest-protocol factory for wrapping strategies."""
    inner = _protocol_factory(name, variant, seed)
    return lambda: inner(0, 0)


def _build_scenario(args, f_override: int | None = None, seed: int = 0):
    byzantine = args.f if f_override is None else f_override
    variant = getattr(args, "variant", "full")
    strategy = None
    if byzantine:
        strategy = build_strategy(
            args.adversary,
            protocol_factory=_wrapped_factory(args.protocol, variant, seed),
        )
    return Scenario(
        correct=args.n - byzantine,
        byzantine=byzantine,
        protocol_factory=_protocol_factory(args.protocol, variant, seed),
        strategy_factory=strategy,
        seed=seed,
        rushing=args.rushing,
        max_rounds=args.max_rounds,
        until_all_halted=args.protocol not in ("reliable-broadcast",),
        enforce_resiliency=not args.force,
    )


def cmd_run(args) -> int:
    sink = None
    bus = None
    if args.events:
        from repro.obs import EventBus

        bus = EventBus()
        sink = bus.to_jsonl(args.events)
    try:
        result = run_scenario(_build_scenario(args, seed=args.seed), bus=bus)
    finally:
        if sink is not None:
            sink.close()
    variant = getattr(args, "variant", "full")
    label = args.protocol if variant == "full" else (
        f"{args.protocol} (sampled)"
    )
    print(f"protocol : {label}")
    print(f"n={args.n} f={args.f} adversary={args.adversary} seed={args.seed}")
    print(f"rounds   : {result.rounds}")
    print(f"messages : {result.metrics.sends_total}")
    if result.metrics.decisions:
        print(
            "economy  : "
            f"{result.metrics.messages_per_decision:.2f} msgs/decision "
            f"over {result.metrics.decisions} decisions"
        )
    print(f"outputs  : {result.outputs}")
    report = check_agreement(result)
    print(f"agreement: {'OK' if report.ok else report.violations}")
    if sink is not None:
        print(f"events   : {sink.count} -> {args.events}")
    if args.timeline:
        from repro.analysis.timeline import render_timeline

        print()
        print(render_timeline(result.trace, result.correct_ids))
    return 0 if report.ok else 1


def cmd_sweep(args) -> int:
    def build(point: Hashable, seed: int):
        return _build_scenario(args, f_override=point, seed=seed)

    outcome = sweep(
        points=range(0, args.max_f + 1),
        build=build,
        judge=lambda r: check_agreement(r).ok,
        seeds=range(args.seeds),
    )
    for row in outcome.rows:
        row["f"] = row.pop("point")
        row["n>3f"] = "yes" if args.n > 3 * row["f"] else "no"
    print(
        format_table(
            outcome.rows,
            columns=["f", "n>3f", "ok%", "rounds(mean)", "msgs(mean)"],
            title=f"{args.protocol}, n={args.n}, adversary={args.adversary}",
        )
    )
    return 0


def cmd_matrix(args) -> int:
    """Run every registered adversary against one protocol."""
    rows = []
    for name in STRATEGY_BUILDERS:
        agreed = 0
        rounds = []
        for seed in range(args.seeds):
            scenario = Scenario(
                correct=args.n - args.f,
                byzantine=args.f,
                protocol_factory=_protocol_factory(
                    args.protocol, getattr(args, "variant", "full"), seed
                ),
                strategy_factory=build_strategy(
                    name,
                    protocol_factory=_wrapped_factory(
                        args.protocol, getattr(args, "variant", "full"), seed
                    ),
                ),
                seed=seed,
                rushing=True,
                max_rounds=args.max_rounds,
            )
            try:
                result = run_scenario(scenario)
            except Exception:
                rounds.append(args.max_rounds)
                continue
            agreed += check_agreement(result).ok
            rounds.append(result.rounds)
        rows.append(
            {
                "adversary": name,
                "ok%": round(100 * agreed / args.seeds, 1),
                "rounds(max)": max(rounds),
            }
        )
    print(
        format_table(
            rows,
            title=f"{args.protocol}: adversary matrix, n={args.n} "
            f"f={args.f}, rushing",
        )
    )
    return 0 if all(r["ok%"] == 100.0 for r in rows) else 1


def cmd_record(args) -> int:
    from repro.sim.replay import RunRecording, record_scenario, verify_replay

    scenario = _build_scenario(args, seed=args.seed)
    if args.verify:
        recording = RunRecording.load(args.verify)
        differences = verify_replay(scenario, recording)
        if differences:
            print("REPLAY MISMATCH:")
            for difference in differences:
                print(f"  {difference}")
            return 1
        print(
            f"replay of {args.verify} matches: "
            f"{len(recording.deliveries)} deliveries, "
            f"{recording.rounds} rounds, outputs identical"
        )
        return 0
    result, recording = record_scenario(scenario)
    recording.save(args.out)
    print(f"recorded {len(recording.deliveries)} deliveries over "
          f"{result.rounds} rounds -> {args.out}")
    return 0


def cmd_demo(args) -> int:
    if args.what == "impossibility":
        r = run_async_partition()
        print("Lemma 9.1 (asynchronous partition):")
        print(f"  decisions        : {r.decisions}")
        print(f"  disagreement     : {r.disagreement}")
        print(f"  indistinguishable: {r.indistinguishable}")
        s = run_semisync_embedding()
        print("Lemma 9.2 (semi-synchronous embedding):")
        print(f"  delta_a={s.delta_a} delta_b={s.delta_b} delta_s={s.delta_s}")
        print(f"  decisions        : {s.decisions}")
        print(f"  disagreement     : {s.disagreement}")
        print(f"  indistinguishable: {s.indistinguishable}")
        return 0
    raise SystemExit(f"unknown demo {args.what!r}")


def cmd_lint(args) -> int:
    """Delegate to :mod:`repro.lint` (``repro lint [lint options]``)."""
    from repro.lint.cli import main as lint_main

    return lint_main(args.rest)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Byzantine agreement with unknown participants and failures "
            "(PODC 2020) — simulation toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("protocol", choices=PROTOCOLS)
        p.add_argument("--n", type=int, default=10, help="total nodes")
        p.add_argument("--f", type=int, default=3, help="Byzantine nodes")
        p.add_argument(
            "--adversary",
            default="silent",
            choices=STRATEGY_BUILDERS,
        )
        p.add_argument("--rushing", action="store_true")
        p.add_argument("--max-rounds", type=int, default=500)
        p.add_argument(
            "--variant",
            choices=("full", "sampled"),
            default="full",
            help="'sampled' runs the committee-sampled variant "
            "(consensus/parallel only): a polylog committee decides, "
            "everyone else adopts via implicit agreement",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="allow configurations violating n > 3f",
        )

    run_p = sub.add_parser("run", help="one seeded run")
    common(run_p)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument(
        "--timeline",
        action="store_true",
        help="print the round-by-round event timeline",
    )
    run_p.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="stream the run's full event plane to FILE as "
        "schema-versioned JSONL (see docs/observability.md)",
    )
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="resiliency sweep over f")
    common(sweep_p)
    sweep_p.add_argument("--max-f", type=int, default=4)
    sweep_p.add_argument("--seeds", type=int, default=10)
    sweep_p.set_defaults(func=cmd_sweep, force=True)

    matrix_p = sub.add_parser(
        "matrix", help="every adversary against one protocol"
    )
    common(matrix_p)
    matrix_p.add_argument("--seeds", type=int, default=3)
    matrix_p.set_defaults(func=cmd_matrix)

    record_p = sub.add_parser(
        "record", help="record a run to JSONL, or verify one"
    )
    common(record_p)
    record_p.add_argument("--seed", type=int, default=0)
    record_p.add_argument(
        "--out", default="run.jsonl", help="recording output path"
    )
    record_p.add_argument(
        "--verify",
        default=None,
        help="verify a prior recording instead of writing one",
    )
    record_p.set_defaults(func=cmd_record)

    demo_p = sub.add_parser("demo", help="canned demonstrations")
    demo_p.add_argument("what", choices=["impossibility"])
    demo_p.set_defaults(func=cmd_demo)

    lint_p = sub.add_parser(
        "lint",
        help="statically check the model invariants (see repro.lint)",
        add_help=False,
    )
    lint_p.add_argument("rest", nargs=argparse.REMAINDER)
    lint_p.set_defaults(func=cmd_lint)  # main() intercepts before argparse
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["lint"]:
        # Hand the whole tail to the lint CLI: argparse.REMAINDER cannot
        # forward leading options like --list-rules.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
