"""Event-driven (non-synchronous) simulation for the §9 impossibility results.

The paper proves that without knowing ``n`` and ``f``, consensus is
impossible — even with probabilistic termination — in asynchronous systems
(unbounded delays) and semi-synchronous systems (bounded delays with an
unknown bound).  Both proofs are indistinguishability arguments over delay
assignments; this package realises exactly those executions:

* :mod:`~repro.asyncsim.engine` — a deterministic discrete-event engine
  with per-message delays chosen by a scheduler;
* :mod:`~repro.asyncsim.schedulers` — uniform, jittered, and partition
  schedulers (the adversary);
* :mod:`~repro.asyncsim.naive_consensus` — the victim: a
  wait-then-majority consensus attempt, the natural design when ``n`` and
  ``f`` are unknown and no round structure exists;
* :mod:`~repro.asyncsim.impossibility` — the experiment drivers for
  Lemma 9.1 (async partition) and Lemma 9.2 (semi-sync embedding).
"""

from repro.asyncsim.engine import AsyncContext, AsyncEngine, AsyncNode
from repro.asyncsim.schedulers import (
    JitterScheduler,
    PartitionScheduler,
    UniformScheduler,
)
from repro.asyncsim.naive_consensus import StabilityDetector, WaitAndMajority
from repro.asyncsim.impossibility import (
    AsyncPartitionResult,
    ProbabilisticResult,
    SemiSyncEmbeddingResult,
    estimate_disagreement_probability,
    run_async_partition,
    run_semisync_embedding,
)

__all__ = [
    "AsyncContext",
    "AsyncEngine",
    "AsyncNode",
    "AsyncPartitionResult",
    "JitterScheduler",
    "PartitionScheduler",
    "ProbabilisticResult",
    "SemiSyncEmbeddingResult",
    "StabilityDetector",
    "UniformScheduler",
    "WaitAndMajority",
    "estimate_disagreement_probability",
    "run_async_partition",
    "run_semisync_embedding",
]
