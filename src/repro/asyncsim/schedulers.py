"""Delay schedulers — the adversary of the non-synchronous models.

A scheduler assigns each message its delivery delay.  The impossibility
arguments need exactly two shapes: arbitrary per-link delays (async) and
group-partitioned delays (the indistinguishability constructions).
"""

from __future__ import annotations

from typing import Iterable

from repro.asyncsim.engine import Scheduler
from repro.sim.rng import make_rng
from repro.types import NodeId


class UniformScheduler(Scheduler):
    """Every message takes exactly ``delay`` time units."""

    def __init__(self, delay: float = 1.0):
        self._delay = delay

    def delay(
        self, sender: NodeId, recipient: NodeId, time: float, kind: str
    ) -> float:
        return self._delay


class JitterScheduler(Scheduler):
    """Delays drawn uniformly from ``[low, high]`` (seeded)."""

    def __init__(self, low: float = 0.5, high: float = 1.5, seed: int = 0):
        if low > high:
            raise ValueError("low must not exceed high")
        self._low = low
        self._high = high
        self._rng = make_rng(seed)

    def delay(
        self, sender: NodeId, recipient: NodeId, time: float, kind: str
    ) -> float:
        return self._rng.uniform(self._low, self._high)


class PartitionScheduler(Scheduler):
    """Fast within groups, (arbitrarily) slow across them.

    This is the adversary of both §9 lemmas: within-group messages take
    ``within``, cross-group messages take ``cross``.  With ``cross``
    larger than every node's decision time, each group's execution is
    indistinguishable from a run in which the other group does not exist.
    """

    def __init__(
        self,
        groups: Iterable[Iterable[NodeId]],
        within: float = 1.0,
        cross: float = 10**6,
    ):
        self._group_of: dict[NodeId, int] = {}
        for index, group in enumerate(groups):
            for node in group:
                self._group_of[node] = index
        self.within = within
        self.cross = cross

    def delay(
        self, sender: NodeId, recipient: NodeId, time: float, kind: str
    ) -> float:
        same = self._group_of.get(sender) == self._group_of.get(recipient)
        return self.within if same else self.cross
