"""The impossibility victim: wait-then-majority consensus.

Without knowing ``n`` (how many opinions exist) or ``f`` (how many may
lie), and without a round structure, the only generic strategy is: shout
your value, listen for a while, then decide something based on what you
heard.  :class:`WaitAndMajority` is that strategy, parameterized by its
patience; relayed gossip (each node rebroadcasts first-heard values) makes
it as robust as the model allows.

The §9 lemmas say *every* algorithm of this kind — indeed every algorithm
at all — fails under some delay assignment.  The experiments in
:mod:`repro.asyncsim.impossibility` demonstrate the failure on this one.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

from repro.asyncsim.engine import AsyncContext, AsyncMessage, AsyncNode
from repro.types import NodeId

KIND_VALUE = "value"
KIND_RELAY = "relay"
TIMER_DECIDE = "decide"


class WaitAndMajority(AsyncNode):
    """Broadcast the input, wait ``patience`` time units, decide the
    majority of the values heard (own value included; ties break low).

    ``patience`` is the node's stand-in for the unknown ``Δ`` — the whole
    point of Lemma 9.2 is that no finite patience can be safe when the
    delay bound is unknown.
    """

    def __init__(self, input_value: int, patience: float = 10.0):
        super().__init__()
        self.input_value = input_value
        self.patience = patience
        self._heard: dict[NodeId, Hashable] = {}

    def on_start(self, ctx: AsyncContext) -> None:
        self._heard[ctx.node_id] = self.input_value
        ctx.broadcast(KIND_VALUE, self.input_value)
        ctx.set_timer(self.patience, TIMER_DECIDE)

    def on_message(self, ctx: AsyncContext, message: AsyncMessage) -> None:
        if self.decided:
            return
        if message.kind == KIND_VALUE:
            origin, value = message.sender, message.payload
        elif message.kind == KIND_RELAY and isinstance(
            message.payload, tuple
        ):
            origin, value = message.payload
        else:
            return
        if origin not in self._heard:
            self._heard[origin] = value
            # Gossip first-heard values onward: relaying makes the
            # victim as strong as the model allows (each node forwards
            # each origin at most once, so traffic stays bounded) — and
            # the §9 lemmas still win.
            ctx.broadcast(KIND_RELAY, (origin, value))

    def on_timer(self, ctx: AsyncContext, tag: Hashable) -> None:
        if tag != TIMER_DECIDE or self.decided:
            return
        counts = Counter(self._heard.values())
        top = max(counts.values())
        winner = min(
            (value for value, count in counts.items() if count == top),
            key=repr,
        )
        self.decide(ctx, winner)


class StabilityDetector(WaitAndMajority):
    """A smarter victim: decide only once the heard-set looks *stable*.

    Instead of a fixed patience, wait until no new participant has been
    heard from for ``quiet_period`` time units — an adaptive scheme a
    careful engineer might try in place of a hard timeout.  It fails the
    same way: a partitioned group looks exactly like a stable complete
    system, which is the entire content of Lemma 9.1.  (With a delay
    bound Δ, quiet_period > Δ *would* suffice — if you knew Δ, which is
    the semi-synchronous lemma's point.)
    """

    TIMER_QUIET = "quiet"

    def __init__(self, input_value: int, quiet_period: float = 5.0):
        super().__init__(input_value, patience=float("inf"))
        self.quiet_period = quiet_period
        self._epoch = 0

    def on_start(self, ctx: AsyncContext) -> None:
        self._heard[ctx.node_id] = self.input_value
        ctx.broadcast(KIND_VALUE, self.input_value)
        self._arm(ctx)

    def _arm(self, ctx: AsyncContext) -> None:
        self._epoch += 1
        ctx.set_timer(self.quiet_period, (self.TIMER_QUIET, self._epoch))

    def on_message(self, ctx: AsyncContext, message: AsyncMessage) -> None:
        before = len(self._heard)
        super().on_message(ctx, message)
        if len(self._heard) > before and not self.decided:
            self._arm(ctx)  # somebody new: restart the quiet window

    def on_timer(self, ctx: AsyncContext, tag: Hashable) -> None:
        if self.decided or not isinstance(tag, tuple):
            return
        kind, epoch = tag
        if kind != self.TIMER_QUIET or epoch != self._epoch:
            return  # superseded by a later arming
        super().on_timer(ctx, TIMER_DECIDE)
