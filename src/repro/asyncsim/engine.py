"""Deterministic discrete-event engine.

Nodes exchange timestamped messages whose delivery delay is chosen, per
message, by a *scheduler* — the adversary of the asynchronous model.
Nodes may also set timers (how a node "waits" without a round structure).
Everything is ordered by (time, sequence number), so runs are exactly
reproducible.

The engine publishes the shared :mod:`repro.obs` event vocabulary onto
its :class:`~repro.obs.bus.EventBus`: sends, deliveries (as singleton
batches), and decisions.  Round-less events carry ``round=0`` and the
simulated time in their ``time`` field, per the taxonomy in
:mod:`repro.obs.events`.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ConfigurationError
from repro.obs.bus import EventBus
from repro.obs.events import (
    InboxDelivered,
    MessageSent,
    ProtocolEvent,
    RunStarted,
)
from repro.types import NodeId


@dataclass(frozen=True, slots=True)
class AsyncMessage:
    """A delivered message (sender stamped by the engine)."""

    sender: NodeId
    kind: str
    payload: Hashable = None


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    recipient: NodeId = field(compare=False)
    action: str = field(compare=False)  # "message" | "timer"
    message: AsyncMessage | None = field(compare=False, default=None)
    tag: Hashable = field(compare=False, default=None)


class Scheduler(ABC):
    """Chooses the delay of every message — the delay adversary."""

    @abstractmethod
    def delay(
        self, sender: NodeId, recipient: NodeId, time: float, kind: str
    ) -> float:
        """Delivery delay (>= 0) for one message."""


class AsyncContext:
    """Per-callback capabilities handed to a node."""

    def __init__(self, engine: "AsyncEngine", node_id: NodeId):
        self._engine = engine
        self.node_id = node_id

    @property
    def time(self) -> float:
        return self._engine.time

    @property
    def peers_heard(self) -> frozenset[NodeId]:
        return frozenset(self._engine._heard_from[self.node_id])

    def broadcast(self, kind: str, payload: Hashable = None) -> None:
        """Send to every node in the system (delays chosen per recipient)."""
        for recipient in self._engine.node_ids:
            self._engine._enqueue_message(
                self.node_id, recipient, kind, payload
            )

    def send(self, dest: NodeId, kind: str, payload: Hashable = None) -> None:
        self._engine._enqueue_message(self.node_id, dest, kind, payload)

    def set_timer(self, delay: float, tag: Hashable = None) -> None:
        self._engine._enqueue_timer(self.node_id, delay, tag)


class AsyncNode(ABC):
    """A node of the event-driven system.

    Attributes:
        output: the decision value once :meth:`decide` is called.
        decided_at: the (simulated) time of the decision.
        log: the node's observable history — every received message and
            the decision, in order.  Two executions are indistinguishable
            to a node exactly when its logs coincide; the impossibility
            experiments compare these.
    """

    def __init__(self) -> None:
        self.output: Any = None
        self.decided: bool = False
        self.decided_at: float | None = None
        self.log: list[tuple] = []

    @abstractmethod
    def on_start(self, ctx: AsyncContext) -> None:
        """Called once at time 0."""

    @abstractmethod
    def on_message(self, ctx: AsyncContext, message: AsyncMessage) -> None:
        """Called for each delivered message."""

    def on_timer(self, ctx: AsyncContext, tag: Hashable) -> None:
        """Called when a timer set via ``ctx.set_timer`` fires."""

    def decide(self, ctx: AsyncContext, value: Any) -> None:
        if not self.decided:
            self.decided = True
            self.output = value
            self.decided_at = ctx.time
            self.log.append(("decide", value))
            engine = ctx._engine
            if engine.bus.wants(ProtocolEvent.topic):
                engine.bus.publish(
                    ProtocolEvent(
                        0,
                        ctx.node_id,
                        "decide",
                        {"value": value, "time": ctx.time},
                    )
                )


class AsyncEngine:
    """The discrete-event loop."""

    def __init__(self, scheduler: Scheduler, bus: EventBus | None = None):
        self.scheduler = scheduler
        #: The run's event plane (no subscribers by default, so the
        #: event loop pays one membership check per emission site).
        self.bus = bus if bus is not None else EventBus()
        self.time: float = 0.0
        self._nodes: dict[NodeId, AsyncNode] = {}
        self._queue: list[_QueueEntry] = []
        self._seq = 0
        self._heard_from: dict[NodeId, set[NodeId]] = {}
        self.delivered: int = 0

    @property
    def node_ids(self) -> list[NodeId]:
        return sorted(self._nodes)

    def add_node(self, node_id: NodeId, node: AsyncNode) -> None:
        if node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node_id}")
        self._nodes[node_id] = node
        self._heard_from[node_id] = set()

    def _enqueue_message(
        self, sender: NodeId, recipient: NodeId, kind: str, payload: Hashable
    ) -> None:
        if recipient not in self._nodes:
            return
        delay = self.scheduler.delay(sender, recipient, self.time, kind)
        if self.bus.wants(MessageSent.topic):
            self.bus.publish(
                MessageSent(
                    0, sender, kind, payload, dest=recipient,
                    time=self.time,
                )
            )
        self._seq += 1
        heapq.heappush(
            self._queue,
            _QueueEntry(
                time=self.time + max(0.0, delay),
                seq=self._seq,
                recipient=recipient,
                action="message",
                message=AsyncMessage(sender, kind, payload),
            ),
        )

    def _enqueue_timer(
        self, node_id: NodeId, delay: float, tag: Hashable
    ) -> None:
        self._seq += 1
        heapq.heappush(
            self._queue,
            _QueueEntry(
                time=self.time + max(0.0, delay),
                seq=self._seq,
                recipient=node_id,
                action="timer",
                tag=tag,
            ),
        )

    def run(self, until: float = float("inf")) -> float:
        """Start every node, drain the queue until *until*; returns the
        final simulated time."""
        if self.bus.wants(RunStarted.topic):
            self.bus.publish(RunStarted("asyncsim"))
        for node_id in self.node_ids:
            ctx = AsyncContext(self, node_id)
            self._nodes[node_id].on_start(ctx)
        emit_deliver = self.bus.sink(InboxDelivered.topic)
        while self._queue and self._queue[0].time <= until:
            entry = heapq.heappop(self._queue)
            self.time = max(self.time, entry.time)
            node = self._nodes[entry.recipient]
            ctx = AsyncContext(self, entry.recipient)
            if entry.action == "message":
                self.delivered += 1
                self._heard_from[entry.recipient].add(entry.message.sender)
                if emit_deliver is not None:
                    emit_deliver(
                        InboxDelivered(
                            0,
                            entry.recipient,
                            (entry.message,),
                            time=self.time,
                        )
                    )
                node.log.append(
                    (
                        "recv",
                        entry.message.sender,
                        entry.message.kind,
                        entry.message.payload,
                    )
                )
                node.on_message(ctx, entry.message)
            else:
                node.on_timer(ctx, entry.tag)
        return self.time

    def outputs(self) -> dict[NodeId, Any]:
        return {
            nid: node.output
            for nid, node in self._nodes.items()
            if node.decided
        }

    def node(self, node_id: NodeId) -> AsyncNode:
        return self._nodes[node_id]
