"""Experiment drivers for the §9 impossibility lemmas.

Lemma 9.1 (asynchronous): partition an all-correct system into ``A``
(input 1) and ``B`` (input 0); delay every cross-partition message past
both groups' decisions.  Each group's execution is indistinguishable from
a solo system containing only that group, so ``A`` decides 1 and ``B``
decides 0 — disagreement with certainty under this schedule, hence with
non-zero probability under any distribution that assigns it mass.

Lemma 9.2 (semi-synchronous): run solo executions ``E_a`` (delay bound
``Δ_a``, all inputs 1, duration ``T_a``) and ``E_b`` likewise with 0s;
build the composed system with delay bound
``Δ_s > max(Δ_a, T_a, Δ_b, T_b)``, replaying within-group delays and
assigning ``Δ_s`` to cross-group messages.  Every delay respects the
bound ``Δ_s`` — the system *is* semi-synchronous — yet each node behaves
exactly as in its solo execution and the groups disagree.

Indistinguishability is checked *literally*: each node's observable log
(messages received before deciding, then the decision) from the composed
run must equal its log from the solo run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asyncsim.engine import AsyncEngine
from repro.asyncsim.naive_consensus import WaitAndMajority
from repro.asyncsim.schedulers import PartitionScheduler, UniformScheduler
from repro.sim.rng import make_rng
from repro.types import NodeId


@dataclass
class AsyncPartitionResult:
    """Outcome of the Lemma 9.1 experiment."""

    decisions: dict[NodeId, int]
    group_a: list[NodeId]
    group_b: list[NodeId]
    #: True when some pair of correct nodes decided differently.
    disagreement: bool
    #: True when every node's composed-run log equals its solo-run log
    #: (the indistinguishability at the heart of the proof).
    indistinguishable: bool


def _solo_run(
    ids: list[NodeId], value: int, patience: float, delay: float
) -> AsyncEngine:
    engine = AsyncEngine(UniformScheduler(delay))
    for node_id in ids:
        engine.add_node(node_id, WaitAndMajority(value, patience))
    engine.run()
    return engine


def run_async_partition(
    size_a: int = 4,
    size_b: int = 4,
    patience: float = 10.0,
    within_delay: float = 1.0,
) -> AsyncPartitionResult:
    """Realise the Lemma 9.1 schedule and report what happened."""
    group_a = list(range(1, size_a + 1))
    group_b = list(range(101, 101 + size_b))

    # The partitioned composed system: cross delays beyond all patience.
    cross = patience * 1000
    engine = AsyncEngine(
        PartitionScheduler([group_a, group_b], within=within_delay, cross=cross)
    )
    for node_id in group_a:
        engine.add_node(node_id, WaitAndMajority(1, patience))
    for node_id in group_b:
        engine.add_node(node_id, WaitAndMajority(0, patience))
    # Stop before the delayed cross traffic lands: decisions are long made.
    engine.run(until=cross / 2)
    decisions = engine.outputs()

    # The solo systems A and B for the indistinguishability check.
    solo_a = _solo_run(group_a, 1, patience, within_delay)
    solo_b = _solo_run(group_b, 0, patience, within_delay)
    indistinguishable = all(
        engine.node(nid).log == solo_a.node(nid).log for nid in group_a
    ) and all(
        engine.node(nid).log == solo_b.node(nid).log for nid in group_b
    )

    values = {decisions[nid] for nid in decisions}
    return AsyncPartitionResult(
        decisions=decisions,
        group_a=group_a,
        group_b=group_b,
        disagreement=len(values) > 1,
        indistinguishable=indistinguishable,
    )


@dataclass
class SemiSyncEmbeddingResult:
    """Outcome of the Lemma 9.2 experiment."""

    delta_a: float
    delta_b: float
    delta_s: float
    duration_a: float
    duration_b: float
    decisions: dict[NodeId, int]
    disagreement: bool
    indistinguishable: bool
    #: True when every delay in the composed run respects delta_s — i.e.
    #: the composed system genuinely is semi-synchronous with bound
    #: delta_s.
    bound_respected: bool


def run_semisync_embedding(
    size_a: int = 4,
    size_b: int = 4,
    delta_a: float = 1.0,
    delta_b: float = 2.0,
    patience: float = 10.0,
) -> SemiSyncEmbeddingResult:
    """Realise the Lemma 9.2 inductive construction."""
    group_a = list(range(1, size_a + 1))
    group_b = list(range(101, 101 + size_b))

    solo_a = _solo_run(group_a, 1, patience, delta_a)
    solo_b = _solo_run(group_b, 0, patience, delta_b)
    duration_a = solo_a.time
    duration_b = solo_b.time

    # Δs strictly larger than every Δ and both execution durations.
    delta_s = max(delta_a, delta_b, duration_a, duration_b) + 1.0

    class EmbeddingScheduler(PartitionScheduler):
        """Within-group: the solo bounds; cross-group: exactly Δs."""

        def __init__(self):
            super().__init__([group_a, group_b], within=0.0, cross=delta_s)

        def delay(self, sender, recipient, time, kind):
            ga = sender in set(group_a) and recipient in set(group_a)
            gb = sender in set(group_b) and recipient in set(group_b)
            if ga:
                return delta_a
            if gb:
                return delta_b
            return delta_s

    engine = AsyncEngine(EmbeddingScheduler())
    for node_id in group_a:
        engine.add_node(node_id, WaitAndMajority(1, patience))
    for node_id in group_b:
        engine.add_node(node_id, WaitAndMajority(0, patience))
    engine.run()  # run to quiescence: every message respects delta_s

    decisions = engine.outputs()
    values = set(decisions.values())
    indistinguishable = all(
        _log_prefix(engine.node(nid).log) == _log_prefix(solo_a.node(nid).log)
        for nid in group_a
    ) and all(
        _log_prefix(engine.node(nid).log) == _log_prefix(solo_b.node(nid).log)
        for nid in group_b
    )
    return SemiSyncEmbeddingResult(
        delta_a=delta_a,
        delta_b=delta_b,
        delta_s=delta_s,
        duration_a=duration_a,
        duration_b=duration_b,
        decisions=decisions,
        disagreement=len(values) > 1,
        indistinguishable=indistinguishable,
        bound_respected=True,  # by construction: delays are Δa/Δb/Δs <= Δs
    )


@dataclass
class ProbabilisticResult:
    """Outcome of the probabilistic reading of Lemma 9.1."""

    runs: int
    partition_probability: float
    disagreements: int

    @property
    def disagreement_rate(self) -> float:
        return self.disagreements / self.runs if self.runs else 0.0


def estimate_disagreement_probability(
    partition_probability: float = 0.3,
    runs: int = 50,
    size_a: int = 4,
    size_b: int = 4,
    patience: float = 10.0,
    seed: int = 0,
) -> ProbabilisticResult:
    """The lemma's probabilistic phrasing, measured.

    "The nodes ... decide on different values with a non-zero
    probability": if nature produces the partition schedule with
    probability q (and benign delays otherwise), any delay-oblivious
    algorithm disagrees with probability >= q.  Each run draws one coin;
    partitioned runs use the Lemma 9.1 schedule, benign runs a uniform
    one.  The measured disagreement rate must track q — there is no
    algorithmic mitigation to discover.
    """
    rng = make_rng(seed)
    disagreements = 0
    for _ in range(runs):
        partitioned = rng.random() < partition_probability
        group_a = list(range(1, size_a + 1))
        group_b = list(range(101, 101 + size_b))
        if partitioned:
            scheduler = PartitionScheduler(
                [group_a, group_b], within=1.0, cross=patience * 1000
            )
        else:
            scheduler = UniformScheduler(1.0)
        engine = AsyncEngine(scheduler)
        for node_id in group_a:
            engine.add_node(node_id, WaitAndMajority(1, patience))
        for node_id in group_b:
            engine.add_node(node_id, WaitAndMajority(0, patience))
        engine.run(until=patience * 100)
        values = set(engine.outputs().values())
        if len(values) > 1:
            disagreements += 1
    return ProbabilisticResult(
        runs=runs,
        partition_probability=partition_probability,
        disagreements=disagreements,
    )


def _log_prefix(log: list[tuple]) -> list[tuple]:
    """A node's observable history up to and including its decision.

    In the composed run, cross-group messages arrive *after* the decision
    — the lemma only needs indistinguishability up to that point.
    """
    for index, entry in enumerate(log):
        if entry[0] == "decide":
            return log[: index + 1]
    return log
