"""A replicated key-value store on top of total ordering.

This is what a downstream user actually builds with Algorithm 6: a
state machine replicated across a dynamic cluster.  Each replica submits
operations (``set``/``delete``) as events; the total-ordering layer
agrees on one operation sequence; every replica applies the finalized
prefix to its local state.  Chain-prefix then *is* linearizable state
agreement: any two replicas' stores are snapshots of the same history.

The store inherits all of :class:`~repro.core.total_order.TotalOrderNode`
— joins via the present/ack handshake, graceful leaves, tolerance of
``f < n/3`` Byzantine replicas — and adds:

* an operation queue (:meth:`submit_set` / :meth:`submit_delete`);
* deterministic application of finalized operations;
* read access to the replicated state (:meth:`get`, :attr:`state`).

Operations are tuples ``("set", key, value)`` / ``("del", key)``; within
one finalized round, operations apply in the chain's deterministic
order, so concurrent writes to one key resolve identically everywhere.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.total_order import TotalOrderNode
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi


class ReplicatedKVStore(TotalOrderNode):
    """One replica of the totally-ordered key-value store.

    Args:
        seed: as for :class:`TotalOrderNode` (False for mid-run joiners).
        leave_at: optional local round to retire at.
    """

    def __init__(self, seed: bool = True, leave_at: int | None = None):
        super().__init__(
            event_source=self._next_operation, seed=seed, leave_at=leave_at
        )
        self._op_queue: deque[tuple] = deque()
        self._applied: int = 0
        self.state: dict[Hashable, Hashable] = {}
        #: Full applied history, for audits: (round, replica, op).
        self.applied_log: list[tuple] = []

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit_set(self, key: Hashable, value: Hashable) -> None:
        """Queue a write; it is broadcast on this replica's next round."""
        self._op_queue.append(("set", key, value))

    def submit_delete(self, key: Hashable) -> None:
        """Queue a deletion."""
        self._op_queue.append(("del", key))

    def get(self, key: Hashable, default: Hashable = None) -> Hashable:
        """Read from the *finalized* replicated state."""
        return self.state.get(key, default)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _next_operation(self, _local_round: int):
        """Event source: one queued operation per round."""
        if self._op_queue:
            return self._op_queue.popleft()
        return None

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        super().on_round(api, inbox)
        self._apply_finalized(api)

    def _apply_finalized(self, api: NodeApi) -> None:
        while self._applied < len(self.chain):
            round_no, replica, operation = self.chain[self._applied]
            self._applied += 1
            if not isinstance(operation, tuple) or not operation:
                continue  # a Byzantine replica may submit garbage
            if operation[0] == "set" and len(operation) == 3:
                self.state[operation[1]] = operation[2]
            elif operation[0] == "del" and len(operation) == 2:
                self.state.pop(operation[1], None)
            else:
                continue
            self.applied_log.append((round_no, replica, operation))
            api.emit(
                "kv-apply",
                op=operation[0],
                key=operation[1],
                round_agreed=round_no,
            )
