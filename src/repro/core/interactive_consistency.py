"""Interactive consistency in the id-only model (a §12 composition).

Interactive consistency — every correct node outputs the same *vector*
of per-node values, containing every correct node's actual input — is
the classical workhorse behind state-machine replication.  The paper
does not spell it out, but its discussion (§12) claims that algorithms
composed from the discussed primitives "could be compiled to work
without the knowledge of n and f".  This module is that compilation,
exercised end-to-end:

1. round 1: every node broadcasts its input (also announcing itself,
   which doubles as the ``present`` round every protocol needs);
2. each node collects the ``(sender, value)`` pairs it received and
   feeds them into **parallel consensus** (Algorithm 5) as input pairs —
   one instance per reporting node id;
3. the agreed non-``⊥`` outputs form the vector.

Why it is correct: a correct node ``w`` broadcasts one value, so every
correct node inputs the identical pair ``(w, x_w)`` and parallel
consensus *validity* forces it into every output.  A Byzantine node may
equivocate, handing different correct nodes different pairs for its id;
parallel consensus *agreement* still makes all correct nodes output the
same pair for that id — or none at all.  Termination is Theorem 10.1's.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.parallel_consensus import ParallelConsensus
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_REPORT = "report"


class InteractiveConsistency(Protocol):
    """One node's interactive-consistency execution.

    The output is a sorted tuple of ``(node_id, value)`` pairs —
    identical at every correct node and containing every correct node's
    input.

    Args:
        input_value: this node's contribution to the vector.
        linger_rounds: forwarded to the underlying parallel consensus.
    """

    def __init__(self, input_value: Hashable, linger_rounds: int = 0):
        super().__init__()
        self.input_value = input_value
        self._parallel = ParallelConsensus(linger_rounds=linger_rounds)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            # The report doubles as the self-announcement: parallel
            # consensus freezes its membership from round-2 senders.
            api.broadcast(KIND_REPORT, self.input_value)
        if api.round == 2:
            for message in inbox.filter(KIND_REPORT):
                self._parallel.submit(message.sender, message.payload)
        self._parallel.on_round(api, inbox)
        if self._parallel.halted and not self.halted:
            self.output = self._parallel.output
            self.halted = True
            self.decided_round = api.round
            api.emit("decide", value=self.output)

    @property
    def vector(self) -> dict[NodeId, Hashable] | None:
        """The agreed vector as a dict, once decided."""
        if not self.halted or self.output is None:
            return None
        return dict(self.output)
