"""Reliable broadcast in the id-only model (Algorithm 1).

A designated node ``s`` broadcasts a message ``m``; the abstraction
guarantees, for ``n > 3f``:

* **Correctness** — if ``s`` is correct, every correct node accepts
  ``(m, s)`` (in fact by round 3);
* **Unforgeability** — if a correct node accepts ``(m, s)`` and ``s`` is
  correct, then ``s`` really broadcast ``m``;
* **Relay** — if a correct node accepts ``(m, s)`` in round ``r``, every
  correct node accepts it by round ``r + 1``.

The algorithm replaces Srikanth–Toueg's ``f + 1`` / ``n - f`` thresholds
with ``n_v/3`` / ``2n_v/3`` where ``n_v`` counts the distinct nodes heard
from so far — sound because every correct node announces itself
(``present``) in round one.

The protocol deliberately never terminates (the paper uses it as a
subroutine inside protocols with their own termination); run it with
``until_all_halted=False`` for a fixed number of rounds.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.quorum import EchoVoting, ViewTracker
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

#: Message kinds used on the wire.
KIND_MESSAGE = "msg"
KIND_PRESENT = "present"
KIND_ECHO = "echo"


class ReliableBroadcast(Protocol):
    """One reliable-broadcast slot for designated sender ``sender_id``.

    ``message`` is the payload to broadcast when this node *is* the
    designated sender; other nodes pass ``None``.

    Multiple payloads can be tracked simultaneously (a Byzantine sender
    may distribute several); each is an independent tag ``(m, s)``.

    Attributes:
        accepted: map of accepted ``(m, s)`` tags to acceptance round.
    """

    def __init__(self, sender_id: NodeId, message: Hashable = None):
        super().__init__()
        self.sender_id = sender_id
        self.message = message
        self.tracker = ViewTracker()
        self.voting = EchoVoting()
        self.accepted: dict[tuple[Hashable, NodeId], Round] = {}

    # ------------------------------------------------------------------
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.tracker.observe(inbox)
        if api.round == 1:
            self._round_one(api)
        elif api.round == 2:
            self._round_two(api, inbox)
        else:
            self._relay_round(api, inbox)

    # ------------------------------------------------------------------
    def _round_one(self, api: NodeApi) -> None:
        if api.node_id == self.sender_id:
            api.broadcast(KIND_MESSAGE, self.message)
            api.emit("rb-sent", message=self.message)
        else:
            api.broadcast(KIND_PRESENT)

    def _round_two(self, api: NodeApi, inbox: Inbox) -> None:
        # Echo each payload received *directly* from the designated sender.
        for message in inbox.from_sender(self.sender_id).filter(KIND_MESSAGE):
            tag = (message.payload, self.sender_id)
            api.broadcast(KIND_ECHO, tag)
            api.emit("rb-echo", tag=tag, origin="direct")

    def _relay_round(self, api: NodeApi, inbox: Inbox) -> None:
        n_v = self.tracker.n_v
        self.voting.absorb_inbox(inbox, KIND_ECHO)
        decision = self.voting.evaluate(n_v, api.round)
        for tag in decision.echo:
            api.broadcast(KIND_ECHO, tag)
            api.emit("rb-echo", tag=tag, origin="threshold")
        for tag in decision.newly_accepted:
            self.accepted[tag] = api.round
            api.emit("accept", tag=tag, n_v=n_v)

    # ------------------------------------------------------------------
    def has_accepted(self, message: Hashable = ...) -> bool:
        """True when some tag (or the specific *message*) was accepted."""
        if message is ...:
            return bool(self.accepted)
        return (message, self.sender_id) in self.accepted

    def acceptance_round(self, message: Hashable) -> Round | None:
        return self.accepted.get((message, self.sender_id))
