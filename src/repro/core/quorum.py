"""Threshold arithmetic and the shared echo-voting machinery.

The paper's conditions all have the shape "received at least ``n_v/3``
(or ``2n_v/3``) messages" where ``n_v`` is the number of distinct nodes
``v`` has ever heard from.  Thresholds are computed in exact integer
arithmetic — ``3 * count >= n_v`` — never in floating point, so the
boundary cases (``n_v`` not divisible by 3) match the paper's real-valued
inequalities precisely.

:class:`ViewTracker` maintains ``n_v``; :class:`EchoVoting` implements the
per-tag echo/accept pattern of Algorithm 1 that reliable broadcast, the
rotor-coordinator's candidate set, and Byzantine renaming all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping

from repro.sim.inbox import Inbox
from repro.types import NodeId, Round


def at_least_third(count: int, n_v: int) -> bool:
    """True when ``count >= n_v / 3`` with at least one real message.

    The ``count > 0`` clause encodes "received" — zero messages never
    satisfy a receive condition even when ``n_v`` is still zero.
    """
    return count > 0 and 3 * count >= n_v


def at_least_two_thirds(count: int, n_v: int) -> bool:
    """True when ``count >= 2 * n_v / 3`` with at least one real message."""
    return count > 0 and 3 * count >= 2 * n_v


def less_than_third(count: int, n_v: int) -> bool:
    """True when ``count < n_v / 3`` (the coordinator-switch condition).

    Exact integer form of the paper's inequality: ``3 * count < n_v``.
    Note this is *not* the negation of :func:`at_least_third` at the
    degenerate point ``count == 0, n_v == 0``: the paper's ``0 < 0/3``
    is false, while "received at least a third" also fails for lack of a
    real message.  Everywhere with ``n_v > 0`` or ``count > 0`` the two
    predicates partition the plane.
    """
    return 3 * count < n_v


class ViewTracker:
    """Tracks ``n_v``: the distinct nodes that ever sent us a message.

    Protocols call :meth:`observe` on every inbox.  ``n_v`` grows
    monotonically; :meth:`freeze` snapshots the membership for protocols
    (consensus, parallel consensus) that fix their view after
    initialization and discard messages from unknown senders thereafter.
    """

    def __init__(self) -> None:
        self._senders: set[NodeId] = set()

    def observe(self, inbox: Inbox) -> None:
        # The inbox's distinct-sender set is cached on its (possibly
        # round-shared) index, so this is a set union, not a message scan
        # — and distinct_senders hands back the shared frozenset with no
        # per-node copy.
        self._senders.update(inbox.distinct_senders())

    def observe_ids(self, ids: Iterable[NodeId]) -> None:
        self._senders.update(ids)

    @property
    def n_v(self) -> int:
        return len(self._senders)

    @property
    def senders(self) -> frozenset[NodeId]:
        return frozenset(self._senders)

    def knows(self, node: NodeId) -> bool:
        return node in self._senders

    def freeze(self) -> frozenset[NodeId]:
        """Snapshot the current membership view."""
        return frozenset(self._senders)


@dataclass
class EchoDecision:
    """Result of one echo-voting evaluation round."""

    #: Tags to (re-)echo this round: reached ``n_v/3`` but not yet accepted.
    echo: list[Hashable] = field(default_factory=list)
    #: Tags newly accepted this round: reached ``2n_v/3``.
    newly_accepted: list[Hashable] = field(default_factory=list)


class EchoVoting:
    """Per-tag echo accumulation (the core of Algorithm 1).

    Each *tag* is an independent reliable-broadcast payload: a message
    ``(m, s)``, a candidate coordinator id, an identifier to rename.  Per
    evaluation (one protocol round, or one embedded-rotor step):

    * a tag with echoes from at least ``n_v/3`` distinct senders that is
      not yet accepted must be echoed again (Alg 1 line ``echoBroad``);
    * a tag reaching ``2n_v/3`` distinct senders is accepted
      (line ``accept``).

    Senders accumulate *between* evaluations (so a protocol that evaluates
    every k-th round, like the rotor embedded in consensus, still sees all
    echoes) and reset after each evaluation (matching the paper's per-round
    counting, because correct nodes re-echo every round until acceptance).

    Pending sender sets may be the index's *shared frozensets*: the
    common absorb path (one inbox per tag per evaluation window) stores
    the round's cached tally directly, copy-on-extend only when a second
    batch arrives for the same tag.  :meth:`evaluate` only reads sizes,
    so the shared sets are never mutated.
    """

    def __init__(self) -> None:
        self._pending: dict[Hashable, set[NodeId] | frozenset[NodeId]] = {}
        self.accepted: dict[Hashable, Round] = {}

    def absorb(self, pairs: Iterable[tuple[NodeId, Hashable]]) -> None:
        """Record (sender, tag) echo observations since the last evaluate."""
        pending = self._pending
        for sender, tag in pairs:
            existing = pending.get(tag)
            if existing is None:
                pending[tag] = {sender}
            elif isinstance(existing, frozenset):
                if sender not in existing:
                    thawed = set(existing)
                    thawed.add(sender)
                    pending[tag] = thawed
            else:
                existing.add(sender)

    def absorb_sets(
        self, tallies: Mapping[Hashable, frozenset[NodeId]]
    ) -> None:
        """Record a shared ``tag -> frozenset(senders)`` tally wholesale.

        O(tags), not O(messages): each tag's distinct-sender set was
        already computed once on the round's shared index; absent tags
        adopt the shared frozenset without copying.
        """
        pending = self._pending
        for tag, senders in tallies.items():
            existing = pending.get(tag)
            if existing is None:
                pending[tag] = senders
            elif isinstance(existing, frozenset):
                pending[tag] = existing | senders
            else:
                existing.update(senders)

    def absorb_inbox(
        self, inbox: Inbox, kind: str, instance: Hashable = ...
    ) -> None:
        """Record all echoes of *kind* from an inbox (payload is the tag).

        Rides the quorum-tally plane: the per-tag distinct-sender sets
        come from the inbox's (possibly round-shared) index, so the
        grouping work happens once per round, not once per node.
        """
        self.absorb_sets(inbox.payload_sender_sets(kind, instance))

    def evaluate(self, n_v: int, round_no: Round) -> EchoDecision:
        """Apply both thresholds, clear the pending buffer, and report."""
        decision = EchoDecision()
        for tag, senders in self._pending.items():
            if tag in self.accepted:
                continue
            count = len(senders)
            if at_least_third(count, n_v):
                decision.echo.append(tag)
            if at_least_two_thirds(count, n_v):
                decision.newly_accepted.append(tag)
                self.accepted[tag] = round_no
        self._pending.clear()
        return decision

    def is_accepted(self, tag: Hashable) -> bool:
        return tag in self.accepted

    def accepted_tags(self) -> list[Hashable]:
        return list(self.accepted)
