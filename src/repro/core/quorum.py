"""Threshold arithmetic and the shared echo-voting machinery.

The paper's conditions all have the shape "received at least ``n_v/3``
(or ``2n_v/3``) messages" where ``n_v`` is the number of distinct nodes
``v`` has ever heard from.  Thresholds are computed in exact integer
arithmetic — ``3 * count >= n_v`` — never in floating point, so the
boundary cases (``n_v`` not divisible by 3) match the paper's real-valued
inequalities precisely.

:class:`ViewTracker` maintains ``n_v``; :class:`EchoVoting` implements the
per-tag echo/accept pattern of Algorithm 1 that reliable broadcast, the
rotor-coordinator's candidate set, and Byzantine renaming all share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Mapping

from repro.sim.inbox import Inbox
from repro.types import NodeId, Round


def at_least_third(count: int, n_v: int) -> bool:
    """True when ``count >= n_v / 3`` with at least one real message.

    The ``count > 0`` clause encodes "received" — zero messages never
    satisfy a receive condition even when ``n_v`` is still zero.
    """
    return count > 0 and 3 * count >= n_v


def at_least_two_thirds(count: int, n_v: int) -> bool:
    """True when ``count >= 2 * n_v / 3`` with at least one real message."""
    return count > 0 and 3 * count >= 2 * n_v


def less_than_third(count: int, n_v: int) -> bool:
    """True when ``count < n_v / 3`` (the coordinator-switch condition).

    Exact integer form of the paper's inequality: ``3 * count < n_v``.
    Note this is *not* the negation of :func:`at_least_third` at the
    degenerate point ``count == 0, n_v == 0``: the paper's ``0 < 0/3``
    is false, while "received at least a third" also fails for lack of a
    real message.  Everywhere with ``n_v > 0`` or ``count > 0`` the two
    predicates partition the plane.
    """
    return 3 * count < n_v


class ViewTracker:
    """Tracks ``n_v``: the distinct nodes that ever sent us a message.

    Protocols call :meth:`observe` on every inbox.  ``n_v`` grows
    monotonically; :meth:`freeze` snapshots the membership for protocols
    (consensus, parallel consensus) that fix their view after
    initialization and discard messages from unknown senders thereafter.
    """

    def __init__(self) -> None:
        #: Either the shared round frozenset adopted wholesale (the
        #: all-broadcast fast path: every node's view IS the round's
        #: sender set, one object between them) or a private set once
        #: ids arrive out-of-band (:meth:`observe_ids`).
        self._senders: set[NodeId] | frozenset[NodeId] = frozenset()

    def observe(self, inbox: Inbox) -> None:
        # The inbox's distinct-sender set is cached on its (possibly
        # round-shared) index.  While the view is a shared frozenset,
        # the steady state ("nothing new this round") is answered by the
        # index's cached covered_by — O(1) per node — and growth unions
        # into a new frozenset that stays shareable.
        current = self._senders
        if type(current) is frozenset:
            if not current:
                senders = inbox.distinct_senders()
                if senders:
                    self._senders = senders
                return
            if inbox.index.covered_by(current):
                return
            self._senders = current | inbox.distinct_senders()
            return
        current.update(inbox.distinct_senders())

    def observe_ids(self, ids: Iterable[NodeId]) -> None:
        current = self._senders
        if type(current) is frozenset:
            self._senders = set(current)
            self._senders.update(ids)
        else:
            current.update(ids)

    @property
    def n_v(self) -> int:
        return len(self._senders)

    @property
    def senders(self) -> frozenset[NodeId]:
        return frozenset(self._senders)

    def knows(self, node: NodeId) -> bool:
        return node in self._senders

    def freeze(self) -> frozenset[NodeId]:
        """Snapshot the current membership view.

        On the shared-view fast path this *is* the round index's shared
        sender frozenset — every node freezing the same round holds one
        object, which keeps later membership-keyed caches (restriction,
        covered_by, derived tallies) single-entry.
        """
        current = self._senders
        if type(current) is frozenset:
            return current
        return frozenset(current)


@dataclass
class EchoDecision:
    """Result of one echo-voting evaluation round."""

    #: Tags to (re-)echo this round: reached ``n_v/3`` but not yet accepted.
    echo: list[Hashable] = field(default_factory=list)
    #: Tags newly accepted this round: reached ``2n_v/3``.
    newly_accepted: list[Hashable] = field(default_factory=list)
    #: Set on the shared-plane fast path: the round-shared delta this
    #: decision came from (``echo``/``newly_accepted`` are then shared
    #: lists, identical objects for every node that adopted the same
    #: prior state — read-only by convention).  Consumers tracking sorted accepted tags
    #: (:class:`~repro.core.rotor.CandidateSet`) use it to adopt the
    #: shared sorted list instead of re-inserting per node.
    shared_delta: Any = None
    #: The evaluation round, when ``shared_delta`` is set.
    decided_round: Round | None = None


class _EchoDelta:
    """One shared echo decision *relative to* a prior accepted dict.

    Computed once per distinct prior state per round; in the lock-step
    all-correct steady state every node carries the identical prior
    object, so the whole population shares a single delta — and adopts
    the single merged accepted dict / sorted tag list it memoizes.
    """

    __slots__ = ("echo", "newly", "_prior", "_merged", "_sorted")

    def __init__(
        self,
        echo: list[Hashable],
        newly: list[Hashable],
        prior: dict[Hashable, Round] | None,
    ):
        self.echo = echo
        self.newly = newly
        self._prior = prior
        self._merged: tuple[Round, dict] | None = None
        self._sorted: tuple[Round, list] | None = None

    def merged(self, round_no: Round) -> dict[Hashable, Round]:
        """Prior accepted dict plus the newly accepted tags (shared)."""
        cached = self._merged
        if cached is None or cached[0] != round_no:
            base = dict(self._prior) if self._prior else {}
            for tag in self.newly:
                base[tag] = round_no
            cached = self._merged = (round_no, base)
        return cached[1]

    def sorted_merged(self, round_no: Round) -> list[Hashable]:
        """Sorted tags of :meth:`merged` (shared; adopt copy-on-write)."""
        cached = self._sorted
        if cached is None or cached[0] != round_no:
            cached = self._sorted = (
                round_no,
                sorted(self.merged(round_no)),
            )
        return cached[1]


class _SharedEchoDecision:
    """Both thresholds applied to one shared tally, once per round.

    Holds the threshold outcomes over *all* tags; :meth:`delta` filters
    them against a node's already-accepted dict, memoized by prior-dict
    identity (with a strong reference, so ids cannot be recycled).
    """

    __slots__ = ("echo_all", "newly_all", "_deltas", "_fresh")

    def __init__(
        self,
        tallies: Mapping[Hashable, frozenset[NodeId]],
        n_v: int,
    ):
        echo: list[Hashable] = []
        newly: list[Hashable] = []
        # Homogeneous broadcast rounds hand every tag the same shared
        # sender frozenset; memoize the thresholds by set identity so n
        # tags cost one count.
        last: Any = None
        echoes = accepts = False
        for tag, senders in tallies.items():
            if senders is not last:
                count = len(senders)
                echoes = at_least_third(count, n_v)
                accepts = at_least_two_thirds(count, n_v)
                last = senders
            if echoes:
                echo.append(tag)
            if accepts:
                newly.append(tag)
        # Plain lists, matching the historical EchoDecision field types;
        # they are shared between nodes and never mutated by consumers.
        self.echo_all = echo
        self.newly_all = newly
        self._deltas: dict[int, tuple[dict, _EchoDelta]] = {}
        self._fresh: _EchoDelta | None = None

    def delta(self, prior: dict[Hashable, Round] | None) -> _EchoDelta:
        if not prior:
            fresh = self._fresh
            if fresh is None:
                fresh = self._fresh = _EchoDelta(
                    self.echo_all, self.newly_all, None
                )
            return fresh
        key = id(prior)
        entry = self._deltas.get(key)
        if entry is not None and entry[0] is prior:
            return entry[1]
        delta = _EchoDelta(
            [t for t in self.echo_all if t not in prior],
            [t for t in self.newly_all if t not in prior],
            prior,
        )
        self._deltas[key] = (prior, delta)
        return delta


class EchoVoting:
    """Per-tag echo accumulation (the core of Algorithm 1).

    Each *tag* is an independent reliable-broadcast payload: a message
    ``(m, s)``, a candidate coordinator id, an identifier to rename.  Per
    evaluation (one protocol round, or one embedded-rotor step):

    * a tag with echoes from at least ``n_v/3`` distinct senders that is
      not yet accepted must be echoed again (Alg 1 line ``echoBroad``);
    * a tag reaching ``2n_v/3`` distinct senders is accepted
      (line ``accept``).

    Senders accumulate *between* evaluations (so a protocol that evaluates
    every k-th round, like the rotor embedded in consensus, still sees all
    echoes) and reset after each evaluation (matching the paper's per-round
    counting, because correct nodes re-echo every round until acceptance).

    Pending sender sets may be the index's *shared frozensets*: the
    common absorb path (one inbox per tag per evaluation window) stores
    the round's cached tally directly, copy-on-extend only when a second
    batch arrives for the same tag.  :meth:`evaluate` only reads sizes,
    so the shared sets are never mutated.

    The *shared echo-decision plane* goes one step further for the
    dominant shape — exactly one :meth:`absorb_inbox` between
    evaluations, over a round-shared index: the whole tally is held as
    one chunk, the thresholds are computed once per round on the index
    (:class:`_SharedEchoDecision`), and each node takes only an O(1)
    identity-keyed delta against its accepted state, wholesale-adopting
    the shared merged ``accepted`` dict.  Any second absorb before the
    next evaluate folds the chunk back into the legacy per-tag union
    (thresholds apply to the union across chunks, never per chunk), and
    a node whose state diverged thaws its dict copy-on-write — the
    legacy semantics are the definition, the plane only shortcuts them.
    """

    def __init__(self) -> None:
        self._pending: dict[Hashable, set[NodeId] | frozenset[NodeId]] = {}
        #: (tallies, index, key): one whole-inbox tally chunk held for
        #: the shared fast path; valid only while ``_pending`` is empty.
        self._shared: tuple | None = None
        self.accepted: dict[Hashable, Round] = {}
        #: True while ``accepted`` is a round-shared dict (adopted from
        #: the plane); any private write thaws a copy first.
        self._accepted_shared = False

    def _fold_shared(self) -> None:
        """Demote the held shared chunk into the per-tag pending union."""
        shared = self._shared
        if shared is not None:
            self._shared = None
            self._merge_sets(shared[0])

    def absorb(self, pairs: Iterable[tuple[NodeId, Hashable]]) -> None:
        """Record (sender, tag) echo observations since the last evaluate."""
        self._fold_shared()
        pending = self._pending
        for sender, tag in pairs:
            existing = pending.get(tag)
            if existing is None:
                pending[tag] = {sender}
            elif isinstance(existing, frozenset):
                if sender not in existing:
                    thawed = set(existing)
                    thawed.add(sender)
                    pending[tag] = thawed
            else:
                existing.add(sender)

    def absorb_sets(
        self, tallies: Mapping[Hashable, frozenset[NodeId]]
    ) -> None:
        """Record a shared ``tag -> frozenset(senders)`` tally wholesale.

        O(tags), not O(messages): each tag's distinct-sender set was
        already computed once on the round's shared index; absent tags
        adopt the shared frozenset without copying.
        """
        self._fold_shared()
        self._merge_sets(tallies)

    def _merge_sets(
        self, tallies: Mapping[Hashable, frozenset[NodeId]]
    ) -> None:
        pending = self._pending
        for tag, senders in tallies.items():
            existing = pending.get(tag)
            if existing is None:
                pending[tag] = senders
            elif isinstance(existing, frozenset):
                pending[tag] = existing | senders
            else:
                existing.update(senders)

    def absorb_inbox(
        self, inbox: Inbox, kind: str, instance: Hashable = ...
    ) -> None:
        """Record all echoes of *kind* from an inbox (payload is the tag).

        Rides the quorum-tally plane: the per-tag distinct-sender sets
        come from the inbox's (possibly round-shared) index, so the
        grouping work happens once per round, not once per node.  The
        single-absorb-per-evaluation shape — the protocols' hot path —
        keeps the whole tally as one shared chunk, deferring all
        per-tag work to the round-shared decision in :meth:`evaluate`.
        """
        tallies = inbox.payload_sender_sets(kind, instance)
        if not tallies:
            return
        if self._shared is None and not self._pending:
            self._shared = (tallies, inbox.index, (kind, instance))
            return
        self.absorb_sets(tallies)

    def evaluate(self, n_v: int, round_no: Round) -> EchoDecision:
        """Apply both thresholds, clear the pending buffer, and report."""
        shared = self._shared
        if shared is not None:
            self._shared = None
            tallies, index, key = shared
            decision_plane = index.derive(
                ("echo-decisions", key, n_v),
                lambda _idx: _SharedEchoDecision(tallies, n_v),
            )
            accepted = self.accepted
            delta = decision_plane.delta(accepted if accepted else None)
            if delta.newly:
                # Wholesale adoption: this node's accepted state becomes
                # the round-shared merged dict (thawed copy-on-write by
                # any later private acceptance).
                self.accepted = delta.merged(round_no)
                self._accepted_shared = True
                return EchoDecision(
                    echo=delta.echo,
                    newly_accepted=delta.newly,
                    shared_delta=delta,
                    decided_round=round_no,
                )
            return EchoDecision(echo=delta.echo, newly_accepted=[])
        decision = EchoDecision()
        pending = self._pending
        if pending:
            accepted = self.accepted
            for tag, senders in pending.items():
                if tag in accepted:
                    continue
                count = len(senders)
                if at_least_third(count, n_v):
                    decision.echo.append(tag)
                if at_least_two_thirds(count, n_v):
                    decision.newly_accepted.append(tag)
                    if self._accepted_shared:
                        accepted = self.accepted = dict(accepted)
                        self._accepted_shared = False
                    accepted[tag] = round_no
            pending.clear()
        return decision

    def is_accepted(self, tag: Hashable) -> bool:
        return tag in self.accepted

    def accepted_tags(self) -> list[Hashable]:
        return list(self.accepted)
