"""Reliable broadcast channels: every node a sender, streams of slots.

Algorithm 1 handles a single designated sender and a single message —
the shape a *proof* wants.  A library consumer wants the induced
abstraction: every node can reliably broadcast a *stream* of messages,
each slot ``(origin, seq)`` independently enjoying correctness,
unforgeability, and relay.  This module provides that by running one
echo-voting instance per slot tag over a shared, live ``n_v`` view —
the generalization is sound because the threshold lemmas only need
``g <= n_v <= n``, which the round-one ``present`` storm establishes
once for all slots, and ``n_v`` only grows.

Acceptance latency is the same as Algorithm 1: a correct sender's slot
is accepted everywhere two rounds after it is sent.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.quorum import EchoVoting, ViewTracker
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

KIND_PRESENT = "present"
KIND_SLOT = "slot"
KIND_ECHO = "echo"

#: A slot tag on the wire: (origin, sequence number, payload).
SlotTag = tuple[NodeId, int, Hashable]


class ReliableChannel(Protocol):
    """One node's endpoint of the everyone-to-everyone RB channel.

    Call :meth:`send` at any time; the payload is broadcast on the
    node's next round with the next sequence number.  Accepted slots
    appear in :attr:`delivered` and via :meth:`stream_from`.

    The protocol never halts (like Algorithm 1, termination belongs to
    whatever is layered on top); run it for a fixed number of rounds.
    """

    def __init__(self, initial_messages: list[Hashable] | None = None):
        super().__init__()
        self.tracker = ViewTracker()
        self.voting = EchoVoting()
        self._outgoing: list[Hashable] = list(initial_messages or [])
        self._next_seq = 0
        #: (origin, seq) -> (payload, acceptance round)
        self.delivered: dict[tuple[NodeId, int], tuple[Hashable, Round]] = {}

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def send(self, payload: Hashable) -> None:
        """Queue a payload for reliable broadcast on the next round."""
        self._outgoing.append(payload)

    def stream_from(self, origin: NodeId) -> list[Hashable]:
        """Accepted payloads from *origin*, in sequence order.

        Stops at the first gap: a slot is only *stably ordered* once
        every lower sequence number from the same origin has arrived.
        """
        slots = {
            seq: payload
            for (node, seq), (payload, _round) in self.delivered.items()
            if node == origin
        }
        stream: list[Hashable] = []
        seq = 0
        while seq in slots:
            stream.append(slots[seq])
            seq += 1
        return stream

    # ------------------------------------------------------------------
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.tracker.observe(inbox)
        if api.round == 1:
            api.broadcast(KIND_PRESENT)

        # Echo slots received directly from their origin (Alg 1 round 2).
        for message in inbox.filter(KIND_SLOT):
            payload = message.payload
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and isinstance(payload[0], int)
            ):
                seq, body = payload
                tag: SlotTag = (message.sender, seq, body)
                api.broadcast(KIND_ECHO, tag)

        # Threshold echoes and acceptance (Alg 1 rounds 3+), per tag.
        self.voting.absorb(
            (m.sender, m.payload)
            for m in inbox.filter(KIND_ECHO)
            if isinstance(m.payload, tuple) and len(m.payload) == 3
        )
        decision = self.voting.evaluate(self.tracker.n_v, api.round)
        for tag in decision.echo:
            api.broadcast(KIND_ECHO, tag)
        for origin, seq, body in decision.newly_accepted:
            self.delivered[(origin, seq)] = (body, api.round)
            api.emit("channel-accept", origin=origin, seq=seq)

        # Send queued payloads (one new slot per payload, all at once).
        for payload in self._outgoing:
            api.broadcast(KIND_SLOT, (self._next_seq, payload))
            self._next_seq += 1
        self._outgoing.clear()
