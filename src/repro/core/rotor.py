"""Rotor-coordinator in the id-only model (Algorithm 2).

The rotor's job is classically trivial: with known ``f`` and consecutive
ids, rotate through coordinators ``0 .. f``; one of ``f + 1`` must be
correct.  With unknown ``n``/``f`` and sparse ids it is the paper's main
technical hurdle.  The algorithm maintains a *candidate set* ``C_v`` via
reliable-broadcast-style echo voting, selects ``C_v[r mod |C_v|]`` as the
round-``r`` coordinator, and terminates when it would select the same node
twice.  Theorem 6.3: for ``n > 3f`` every correct node terminates within
``O(n)`` rounds, having witnessed a *good round* — a round in which every
correct node selected the same, correct coordinator and accepts its opinion
in the following round.

Three layers, composed bottom-up:

* :class:`CandidateSet` — the reliably-broadcast, monotonically growing,
  id-ordered set ``C_v``;
* :class:`RotorCursor` — the round counter ``r``, the selected set
  ``S_v``, and the ``C_v[r mod |C_v|]`` selection rule.  Parallel
  consensus runs one cursor per instance over a single shared candidate
  set;
* :class:`RotorCore` — one candidate set plus one cursor, the shape
  Algorithm 3 embeds (one rotor step per 5-round phase);
* :class:`RotorCoordinator` — the standalone protocol: one rotor step per
  round, terminating on the first repeated selection.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable

from repro.core.quorum import EchoVoting, ViewTracker
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

KIND_INIT = "init"
KIND_ECHO = "echo"
KIND_OPINION = "opinion"


@dataclass(frozen=True)
class RotorStep:
    """Outcome of one rotor round."""

    #: The coordinator selected this step (None only if no candidates yet).
    coordinator: NodeId | None
    #: True when the coordinator was selected before — the rotor's
    #: termination condition (standalone rotor breaks; consensus ignores).
    repeat: bool


class CandidateSet:
    """The candidate-coordinator set ``C_v``, maintained via echo voting.

    Initialization mirrors Algorithm 1: every node broadcasts ``init`` in
    round one, every node echoes every announcer in round two, and from
    then on ids are echoed/accepted at the ``n_v/3`` / ``2n_v/3``
    thresholds.  The set only ever grows and stays sorted by id.
    """

    def __init__(self, instance: Hashable = None) -> None:
        self.candidates: list[NodeId] = []
        self.voting = EchoVoting()
        #: Instance namespace for the wire messages (total ordering runs
        #: one candidate set per consensus instance).
        self.instance = instance
        #: True while ``candidates`` is a round-shared sorted list
        #: adopted from the echo-decision plane; any private insertion
        #: thaws a copy first (the list is never mutated while shared).
        self._candidates_shared = False

    def announce(self, api: NodeApi) -> None:
        """Round 1: broadcast willingness to coordinate."""
        api.broadcast(KIND_INIT, instance=self.instance)

    def echo_inits(self, api: NodeApi, inbox: Inbox) -> None:
        """Round 2: echo every node that announced itself.

        The sorted announcer tuple is derived once on the round's
        shared index, so every node broadcasts the *same* tuple object
        — one interned batch for the whole echo storm.
        """
        instance = self.instance
        announcers = inbox.derive(
            ("rotor-announcers", instance),
            lambda idx: tuple(
                sorted(idx.sender_set(KIND_INIT, ..., instance))
            ),
        )
        if announcers:
            api.broadcast_many(KIND_ECHO, announcers, instance=instance)

    def absorb(self, inbox: Inbox) -> None:
        """Accumulate echo observations from a real round's inbox.

        Rides the shared quorum-tally plane: the per-candidate sender
        sets are grouped once on the round's shared index and adopted
        here without copying (see :meth:`EchoVoting.absorb_inbox`).
        """
        self.voting.absorb_inbox(inbox, KIND_ECHO, instance=self.instance)

    def evaluate(
        self, api: NodeApi, n_v: int, broadcast: bool = True
    ) -> list[NodeId]:
        """Apply thresholds: accept full quorums, (re-)echo sub-quorum ids.

        Returns the ids due an echo; with ``broadcast=False`` the caller
        is responsible for sending them (Algorithm 2 defers the broadcast
        of ``B_v`` to the end of the round and skips it on termination).
        """
        decision = self.voting.evaluate(n_v, api.round)
        newly = decision.newly_accepted
        if newly:
            delta = decision.shared_delta
            if delta is not None:
                # The voting adopted the shared merged accepted dict;
                # candidates is always sorted(accepted), so adopt the
                # matching shared sorted list wholesale (copy-on-write).
                self.candidates = delta.sorted_merged(
                    decision.decided_round
                )
                self._candidates_shared = True
            else:
                if self._candidates_shared:
                    self.candidates = list(self.candidates)
                    self._candidates_shared = False
                for candidate in newly:
                    bisect.insort(self.candidates, candidate)
        if broadcast and decision.echo:
            api.broadcast_many(
                KIND_ECHO, decision.echo, instance=self.instance
            )
        return decision.echo

    def __len__(self) -> int:
        return len(self.candidates)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.voting.accepted


class RotorCursor:
    """Selection state over a candidate set: ``r``, ``S_v``, and the
    ``C_v[r mod |C_v|]`` rule."""

    def __init__(self) -> None:
        self.rotor_round: int = 0
        self.selected: set[NodeId] = set()
        self.selection_order: list[NodeId] = []

    def select(
        self,
        api: NodeApi,
        candidates: list[NodeId],
        opinion: Hashable,
        instance: Hashable = None,
        allow_repeat: bool = False,
        opinion_kind: str = KIND_OPINION,
    ) -> RotorStep:
        """Pick this step's coordinator; broadcast our opinion if selected.

        ``allow_repeat=True`` keeps the rotor cycling past its natural
        termination point (re-selections behave like first selections);
        consensus uses this because its own termination condition — not
        the rotor's — ends the protocol, and stragglers may need
        coordinators after the rotor would have stopped.
        """
        if not candidates:
            # Cannot happen for n > 3f after initialization (every correct
            # id is accepted before the first step); guard for hostile runs.
            self.rotor_round += 1
            return RotorStep(coordinator=None, repeat=False)

        coordinator = candidates[self.rotor_round % len(candidates)]
        repeat = coordinator in self.selected
        if not repeat or allow_repeat:
            self.selected.add(coordinator)
            if not repeat:
                self.selection_order.append(coordinator)
            if coordinator == api.node_id:
                api.broadcast(opinion_kind, opinion, instance=instance)
                api.emit(
                    "rotor-own-opinion", opinion=opinion, instance=instance
                )
        api.emit(
            "rotor-select",
            coordinator=coordinator,
            repeat=repeat,
            rotor_round=self.rotor_round,
            candidates=len(candidates),
            instance=instance,
        )
        self.rotor_round += 1
        return RotorStep(coordinator=coordinator, repeat=repeat)


class RotorCore:
    """One candidate set plus one cursor: the embeddable rotor.

    Usage pattern (one *rotor step* may span several real rounds, as in
    consensus where steps are 5 real rounds apart):

    * round 1: :meth:`announce` — broadcast ``init``;
    * round 2: :meth:`echo_inits` — echo every ``init`` sender;
    * every real round from 3 on: :meth:`absorb` the inbox (echoes
      accumulate between steps);
    * at each rotor step: :meth:`step` with the current ``n_v`` and this
      node's current opinion — updates ``C_v``/``S_v``, broadcasts pending
      echoes and (when selected) the own opinion, returns the coordinator.

    The opinion broadcast by the selected coordinator arrives one real
    round later; callers read it from that round's inbox via
    :meth:`opinion_from`.
    """

    def __init__(self) -> None:
        self.candidate_set = CandidateSet()
        self.cursor = RotorCursor()

    # -- delegation -------------------------------------------------------
    def announce(self, api: NodeApi) -> None:
        self.candidate_set.announce(api)

    def echo_inits(self, api: NodeApi, inbox: Inbox) -> None:
        self.candidate_set.echo_inits(api, inbox)

    def absorb(self, inbox: Inbox) -> None:
        self.candidate_set.absorb(inbox)

    @property
    def candidates(self) -> list[NodeId]:
        return self.candidate_set.candidates

    @property
    def selected(self) -> set[NodeId]:
        return self.cursor.selected

    @property
    def selection_order(self) -> list[NodeId]:
        return self.cursor.selection_order

    def step(
        self,
        api: NodeApi,
        n_v: int,
        opinion: Hashable,
        allow_repeat: bool = False,
    ) -> RotorStep:
        """Execute one rotor round (Alg 2 loop body)."""
        # Echo/accept before selecting (pseudocode line order), but defer
        # the echo broadcast: a terminating step breaks before sending B_v.
        echoes = self.candidate_set.evaluate(api, n_v, broadcast=False)
        step = self.cursor.select(
            api,
            self.candidate_set.candidates,
            opinion,
            allow_repeat=allow_repeat,
        )
        if (not step.repeat or allow_repeat) and echoes:
            api.broadcast_many(
                KIND_ECHO, echoes, instance=self.candidate_set.instance
            )
        return step

    @staticmethod
    def opinion_from(
        inbox: Inbox, coordinator: NodeId | None, instance: Hashable = None
    ):
        """The opinion the given coordinator sent us this round, or None.

        Returns the payload of the first ``opinion`` message from
        *coordinator* (a correct coordinator sends exactly one).
        """
        if coordinator is None:
            return None
        # The sender bucket comes from the inbox's (round-shared) index;
        # only the coordinator's few messages are scanned per caller.
        for message in inbox.from_sender(coordinator):
            if message.matches(KIND_OPINION, instance=instance):
                return message.payload
        return None


class RotorCoordinator(Protocol):
    """Standalone rotor-coordinator: one rotor step per round.

    ``opinion`` is this node's opinion ``o_v``, broadcast if it is ever
    selected coordinator.  The protocol decides (with its final accepted
    opinion, possibly None) when it would select the same coordinator a
    second time.

    Attributes:
        accepted_opinions: list of ``(round, coordinator, opinion)``
            accepted at line ``rc-opnac`` — the raw material for checking
            Theorem 6.3's good-round guarantee.
    """

    def __init__(self, opinion: Hashable):
        super().__init__()
        self.opinion = opinion
        self.core = RotorCore()
        self.tracker = ViewTracker()
        self.previous_coordinator: NodeId | None = None
        self.accepted_opinions: list[tuple[Round, NodeId, Hashable]] = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.tracker.observe(inbox)
        if api.round == 1:
            self.core.announce(api)
            return
        if api.round == 2:
            self.core.echo_inits(api, inbox)
            return

        self.core.absorb(inbox)
        # Accept the opinion of the coordinator selected last round
        # (line rc-opnac) before this round's selection.
        opinion = self.core.opinion_from(inbox, self.previous_coordinator)
        if opinion is not None:
            self.accepted_opinions.append(
                (api.round, self.previous_coordinator, opinion)
            )
            api.emit(
                "accept-opinion",
                coordinator=self.previous_coordinator,
                opinion=opinion,
            )
        step = self.core.step(api, self.tracker.n_v, self.opinion)
        if step.repeat:
            self.decide(api, opinion)
            return
        self.previous_coordinator = step.coordinator

    @property
    def selection_order(self) -> list[NodeId]:
        return self.core.selection_order
