"""Committee-sampled agreement with implicit outcome adoption.

The classical protocols here all-broadcast every round, so a decision
costs O(n²) messages.  The sampled variants cut that to O(n + c²) for a
committee of size ``c = Θ(polylog n)`` (:mod:`repro.core.committee`):

1. **Hello round** — every node broadcasts once, establishing the
   common id-only view the sampler hashes over (and seeding everyone's
   contact set, which the gossip fallback's direct replies need).
2. **Committee consensus** — the ``c`` sampled members run the existing
   Algorithm-3 / Algorithm-5 machinery restricted to the committee
   (membership = the sampled set, riding the quorum-tally plane's
   shared ``restricted_to`` views).  Non-members send nothing and do
   O(1) work per round.
3. **Implicit agreement** — each member broadcasts its decision once;
   every other node adopts a value as soon as ``≥ |C|/3`` committee
   members announced it.  With fewer than ``|C|/3`` Byzantine members
   (whp, by the sampler's Chernoff sizing) any such quorum contains a
   correct member, and committee agreement makes two conflicting
   quorums impossible — so adoption needs no second broadcast wave.
4. **Gossip fallback** — a node that joins after the hello round never
   saw the committee, so it broadcasts a ``query``; decided nodes
   linger a few rounds answering with direct ``outcome`` replies, and
   the joiner adopts on a two-thirds quorum of distinct responders.
   Best-effort by design: it is sound while correct deciders are still
   lingering (≥ 2/3 of responders are then correct), and a joiner that
   arrives after everyone halted simply never decides.

Grounded in Kumar & Molla, "Sublinear Message Bounds of Authenticated
Implicit Byzantine Agreement", and Augustine et al., "Scalable and
Secure Computation Among Strangers" (PAPERS.md); the committee-internal
agreement is unchanged from the paper's id-only algorithms.

The hello-round view is assumed common (one synchronous all-broadcast
round): the sampler is deterministic, so identical views give identical
committees.  Under message loss the views can diverge and this variant
is not supported — run the full-broadcast protocols instead.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.committee import sample_committee
from repro.core.consensus import PHASE_LENGTH, EarlyConsensus
from repro.core.parallel_consensus import ParallelConsensusMachine
from repro.core.quorum import (
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
)
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_HELLO = "hello"
KIND_DECISION = "decision"
KIND_QUERY = "query"
KIND_OUTCOME = "outcome"

#: Init rounds of the sampled variants: hello; freeze + sample (+ the
#: members' rotor init broadcast); members' rotor echo.  One more than
#: the classical protocols because sampling needs the frozen view first.
SAMPLED_INIT_ROUNDS = 3
#: A joiner re-broadcasts its query every this many rounds until adopted.
QUERY_INTERVAL = 3

#: "No outcome yet" — distinct from None, which is a decidable value.
_UNSET = object()


def shared_committee(
    inbox: Inbox, seed: int | None, size: int | None
) -> frozenset[NodeId]:
    """The committee over this round's sender view, sampled once.

    Memoized on the round's shared index: two thousand recipients of
    the hello broadcasts hash-rank the view a single time between them.
    """
    return inbox.derive(
        ("committee", seed, size),
        lambda idx: sample_committee(idx.all_senders, seed=seed, size=size),
    )


class OutcomeGossip:
    """One node's dissemination state: announce, adopt, linger, query.

    Not a protocol — the sampled protocols own one and drive it.  The
    attribute set is fenced out of other protocol code by lint rule
    R406; everything protocols need goes through the methods.
    """

    __slots__ = (
        "linger",
        "outcome",
        "linger_left",
        "decision_votes",
        "outcome_votes",
        "joined_at",
        "last_query",
    )

    def __init__(self, linger: int):
        self.linger = linger
        self.outcome: Hashable = _UNSET
        self.linger_left = 0
        #: value -> committee members seen announcing it (cumulative —
        #: members decide and announce across nearby rounds, not one).
        self.decision_votes: dict[Hashable, set[NodeId]] = {}
        #: value -> responders to our joiner query (cumulative).
        self.outcome_votes: dict[Hashable, set[NodeId]] = {}
        self.joined_at: int | None = None
        self.last_query: int | None = None

    @property
    def decided(self) -> bool:
        return self.outcome is not _UNSET

    # ------------------------------------------------------------------
    def ready(self, api: NodeApi, value: Hashable, *, announce: bool) -> None:
        """Fix the outcome; members broadcast it once.  Halt is deferred
        until the linger budget is spent (see :meth:`linger_round`)."""
        if self.decided:
            return
        self.outcome = value
        self.linger_left = self.linger
        if announce:
            api.broadcast(KIND_DECISION, value)
        api.emit("outcome-ready", value=value, announced=announce)

    def linger_round(self, api: NodeApi, inbox: Inbox) -> bool:
        """Answer joiner queries; True once the linger budget is spent.

        Replies are direct sends — the querier's broadcast made it a
        contact of everyone, so the prior-contact rule passes.
        """
        for sender in sorted(inbox.distinct_senders(KIND_QUERY)):
            if sender != api.node_id and api.knows(sender):
                api.send(sender, KIND_OUTCOME, self.outcome)
        if self.linger_left > 0:
            self.linger_left -= 1
            return False
        return True

    # ------------------------------------------------------------------
    def watch_decisions(
        self, inbox: Inbox, committee: frozenset[NodeId]
    ) -> Hashable:
        """Fold this round's committee announcements; the adopted value,
        or ``_UNSET`` while no quorum has formed.

        The O(1) fast path first: most rounds carry no ``decision``
        message at all, and ``has_kind`` answers that off the shared
        index (on the columnar plane, without materializing anything).
        The per-value committee intersections are a shared derived view;
        only the cumulative fold is per-node.

        Adoption needs ``≥ |C|/3`` announcers: with fewer than ``|C|/3``
        Byzantine members, any such quorum contains a correct member,
        and committee agreement means every correct member announces the
        same value — so no two values can both reach the threshold.
        """
        if not inbox.has_kind(KIND_DECISION):
            return _UNSET
        shared = inbox.derive(
            ("committee-decision-tally", committee),
            lambda idx: tuple(
                (value, senders & committee)
                for value, senders in idx.payload_senders(
                    KIND_DECISION, ...
                ).items()
                if senders & committee
            ),
        )
        for value, senders in shared:
            self.decision_votes.setdefault(value, set()).update(senders)
        for value, senders in self.decision_votes.items():
            if at_least_third(len(senders), len(committee)):
                return value
        return _UNSET

    def joiner_round(self, api: NodeApi, inbox: Inbox) -> Hashable:
        """Collect outcome replies, re-query; the adopted value or
        ``_UNSET``.

        Adoption needs a two-thirds quorum of all distinct responders so
        far — sound while the correct deciders are still lingering (they
        all answer, so ≥ 2/3 of responders are correct)."""
        for message in inbox.filter(KIND_OUTCOME):
            self.outcome_votes.setdefault(message.payload, set()).add(
                message.sender
            )
        responders: set[NodeId] = set()
        for senders in self.outcome_votes.values():
            responders |= senders
        for value, senders in self.outcome_votes.items():
            if at_least_two_thirds(len(senders), len(responders)):
                return value
        if (
            self.last_query is None
            or api.round - self.last_query >= QUERY_INTERVAL
        ):
            api.broadcast(KIND_QUERY)
            self.last_query = api.round
        return _UNSET


class CommitteeConsensus(EarlyConsensus):
    """Early-terminating consensus run by a sampled committee.

    Args:
        input_value: this node's input ``x_v``.
        substitution: Algorithm 3's missing-message substitution rule.
        sampling_seed: seed of the committee hash-ranking (pass the
            run's seed; every node must use the same value).
        committee_size: override the Θ(log² n) sizing (tests exercise
            the non-member path at small n with this; production sizing
            is the default's Chernoff bound).
        linger: rounds a decided node stays alive answering joiner
            queries before halting.

    Attributes:
        view: the full frozen hello-round view.
        committee: the sampled members.
        is_member: whether this node is one of them.
    """

    def __init__(
        self,
        input_value: Hashable,
        substitution: bool = True,
        *,
        sampling_seed: int | None = 0,
        committee_size: int | None = None,
        linger: int = 2,
    ):
        super().__init__(input_value, substitution)
        self.sampling_seed = sampling_seed
        self._size_override = committee_size
        self.view: frozenset[NodeId] = frozenset()
        self.committee: frozenset[NodeId] = frozenset()
        self.is_member = False
        self._gossip = OutcomeGossip(linger)

    # ------------------------------------------------------------------
    def decide(self, api: NodeApi, value: Hashable) -> None:
        # Defer the actual halt: announce (members), linger, then halt.
        self._gossip.ready(api, value, announce=self.is_member)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        gossip = self._gossip
        if gossip.joined_at is None:
            gossip.joined_at = api.round
        if gossip.decided:
            if gossip.linger_round(api, inbox):
                Protocol.decide(self, api, gossip.outcome)
            return
        if gossip.joined_at > 1:
            # Joined after the hello round: never saw the view the
            # committee was sampled from — gossip fallback only.
            value = gossip.joiner_round(api, inbox)
            if value is not _UNSET:
                api.emit("adopt-gossip", value=value)
                self.decide(api, value)
            return

        if api.round == 1:
            api.broadcast(KIND_HELLO)
            return
        if api.round == 2:
            self.tracker.observe(inbox)
            self.view = self.tracker.freeze()
            self.committee = shared_committee(
                inbox, self.sampling_seed, self._size_override
            )
            self.is_member = api.node_id in self.committee
            # The committee is the frozen membership of the inner run.
            self.membership = self.committee
            self.n_v = len(self.committee)
            api.emit(
                "committee", size=self.n_v, member=self.is_member
            )
            if self.is_member:
                self.rotor.announce(api)
            return

        value = gossip.watch_decisions(inbox, self.committee)
        if value is not _UNSET:
            api.emit("adopt-implicit", value=value, member=self.is_member)
            self.decide(api, value)
            return
        if not self.is_member:
            return
        if api.round == SAMPLED_INIT_ROUNDS:
            self.rotor.echo_inits(api, self._restricted(inbox))
            return
        inbox = self._restricted(inbox)
        self.rotor.absorb(inbox)
        phase_round = (api.round - SAMPLED_INIT_ROUNDS - 1) % PHASE_LENGTH + 1
        self._run_phase_round(api, inbox, phase_round)


class CommitteeParallelConsensus(Protocol):
    """Parallel consensus (Algorithm 5) run by a sampled committee.

    Members run a :class:`ParallelConsensusMachine` with the committee
    as its fixed membership; once idle past the join window they
    broadcast the sorted output-pair tuple as their decision, and every
    other node adopts it through the same implicit-agreement quorum as
    :class:`CommitteeConsensus`.

    Non-member inputs never reach the committee in this variant — runs
    must give every correct node the same input pairs (the benchmark
    shape), or accept that only committee inputs are proposed.
    """

    def __init__(
        self,
        inputs: dict[Hashable, Hashable] | None = None,
        *,
        sampling_seed: int | None = 0,
        committee_size: int | None = None,
        linger: int = 2,
        linger_rounds: int = 0,
    ):
        super().__init__()
        self.inputs = dict(inputs or {})
        self.sampling_seed = sampling_seed
        self._size_override = committee_size
        self.linger_rounds = linger_rounds
        self.tracker = ViewTracker()
        self.view: frozenset[NodeId] = frozenset()
        self.committee: frozenset[NodeId] = frozenset()
        self.is_member = False
        self.machine: ParallelConsensusMachine | None = None
        self._gossip = OutcomeGossip(linger)

    # ------------------------------------------------------------------
    def decide(self, api: NodeApi, value: Hashable) -> None:
        self._gossip.ready(api, value, announce=self.is_member)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        gossip = self._gossip
        if gossip.joined_at is None:
            gossip.joined_at = api.round
        if gossip.decided:
            if gossip.linger_round(api, inbox):
                Protocol.decide(self, api, gossip.outcome)
            return
        if gossip.joined_at > 1:
            value = gossip.joiner_round(api, inbox)
            if value is not _UNSET:
                api.emit("adopt-gossip", value=value)
                self.decide(api, value)
            return

        if api.round == 1:
            api.broadcast(KIND_HELLO)
            return
        if api.round == 2:
            self.tracker.observe(inbox)
            self.view = self.tracker.freeze()
            self.committee = shared_committee(
                inbox, self.sampling_seed, self._size_override
            )
            self.is_member = api.node_id in self.committee
            api.emit(
                "committee",
                size=len(self.committee),
                member=self.is_member,
            )
            if self.is_member:
                self.machine = ParallelConsensusMachine(
                    start_round=2, membership=self.committee
                )
                self.machine.on_round(api, inbox)  # rotor init broadcast
            return

        value = gossip.watch_decisions(inbox, self.committee)
        if value is not _UNSET:
            api.emit("adopt-implicit", value=value, member=self.is_member)
            self.decide(api, value)
            return
        if not self.is_member:
            return
        if api.round == SAMPLED_INIT_ROUNDS:
            # Submit now so the initial batch starts next round, phase-
            # aligned across all members.
            for instance_id, input_value in self.inputs.items():
                self.machine.submit(instance_id, input_value)
        self.machine.on_round(api, inbox)
        if (
            self.machine.join_window_closed(api.round)
            and api.round
            > SAMPLED_INIT_ROUNDS + PHASE_LENGTH + 2 + self.linger_rounds
            and self.machine.idle()
        ):
            self.decide(api, self.machine.output_pairs())

    # ------------------------------------------------------------------
    def output_pairs(self) -> tuple[tuple[Hashable, Hashable], ...]:
        """The decided (or, for members, current) output pairs."""
        if isinstance(self.output, tuple):
            return self.output
        if self.machine is not None:
            return self.machine.output_pairs()
        return ()
