"""Early-terminating consensus in the id-only model (Algorithm 3).

Every correct node inputs a value (the paper allows reals — anything
hashable and comparable works here); all correct nodes must output a common
value, equal to the common input when inputs are unanimous.  Theorem 7.5:
``O(f)`` rounds for ``n > 3f``, without knowing ``n`` or ``f``.

Structure: 2 initialization rounds, then 5-round *phases*:

=====  =============================================================
phase
round  action
=====  =============================================================
1      broadcast ``input(x_v)``
2      count inputs; on a ``2n_v/3`` quorum broadcast ``prefer(x)``
3      count prefers; on ``n_v/3`` adopt ``x``; on ``2n_v/3``
       broadcast ``strongprefer(x)``
4      stash strongprefer counts; execute one rotor step (the selected
       coordinator broadcasts its opinion)
5      receive the coordinator's opinion ``c``; if the stashed
       strongprefer count is below ``n_v/3`` adopt ``c``; if it
       reached ``2n_v/3`` terminate with ``x``
=====  =============================================================

Two rules from the paper's Algorithm-3 caption are load-bearing and easy
to miss:

* **Frozen membership** — ``n_v`` is fixed after initialization; messages
  from nodes outside the initial view are discarded.
* **Substitution** — once a counted node goes silent (it terminated
  early), the local node substitutes *its own* most recent message of the
  expected kind for the missing one.  Without this, early termination of
  one node can strand the rest; the ``substitution`` flag exists so the
  ablation benchmark can demonstrate that.

  Silence must mean *terminated*, not merely *saw no quorum*: a live node
  legitimately skips ``prefer``/``strongprefer`` when no quorum formed,
  and substituting for it would manufacture conflicting quorums (we
  observed real agreement violations before pinning this down).  Because
  every live node broadcasts ``input`` unconditionally at phase-round 1,
  "did not send this phase's input" is the precise liveness test: the
  prefer/strongprefer substitutions only apply to members outside the
  current phase's input senders.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.quorum import (
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
    less_than_third,
)
from repro.core.rotor import RotorCore
from repro.sim.inbox import Inbox, best_with_extra
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_INPUT = "input"
KIND_PREFER = "prefer"
KIND_STRONGPREFER = "strongprefer"

#: Rounds per phase.
PHASE_LENGTH = 5
#: Initialization rounds before the first phase.
INIT_ROUNDS = 2


class EarlyConsensus(Protocol):
    """One node's early-terminating consensus execution.

    Args:
        input_value: this node's input ``x_v``.
        substitution: apply the caption's missing-message substitution
            rule (disable only for the ablation experiment).

    Attributes:
        x: the node's current opinion.
        membership: the frozen post-initialization view.
        phase: the current phase number (1-based).
    """

    def __init__(self, input_value: Hashable, substitution: bool = True):
        super().__init__()
        self.x: Hashable = input_value
        self.substitution = substitution
        self.rotor = RotorCore()
        self.tracker = ViewTracker()
        self.membership: frozenset[NodeId] = frozenset()
        self.n_v: int = 0
        self.phase: int = 0
        self._last_sent: dict[str, Hashable] = {}
        self._stashed_strong: tuple[Hashable, int] = (None, 0)
        self._current_coordinator: NodeId | None = None
        #: Members that broadcast input this phase — the live ones.
        self._phase_live: frozenset[NodeId] = frozenset()

    # ------------------------------------------------------------------
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            self.rotor.announce(api)
            return
        if api.round == 2:
            # Freeze the membership view: everyone heard from during
            # initialization, including ourselves (own broadcasts are
            # self-delivered).
            self.tracker.observe(inbox)
            self.membership = self.tracker.freeze()
            self.n_v = len(self.membership)
            self.rotor.echo_inits(api, inbox)
            return

        inbox = self._restricted(inbox)
        self.rotor.absorb(inbox)
        phase_round = (api.round - INIT_ROUNDS - 1) % PHASE_LENGTH + 1
        self._run_phase_round(api, inbox, phase_round)

    def _run_phase_round(
        self, api: NodeApi, inbox: Inbox, phase_round: int
    ) -> None:
        """One Algorithm-3 phase round over an already-restricted inbox.

        Shared with the committee-sampled variant, whose initialization
        takes one extra round and therefore maps rounds to phase rounds
        with a different offset.
        """
        if phase_round == 1:
            self.phase += 1
            self._broadcast_input(api)
        elif phase_round == 2:
            self._count_inputs(api, inbox)
        elif phase_round == 3:
            self._count_prefers(api, inbox)
        elif phase_round == 4:
            self._rotor_round(api, inbox)
        else:
            self._resolve(api, inbox)

    # ------------------------------------------------------------------
    # Phase rounds
    # ------------------------------------------------------------------
    def _broadcast_input(self, api: NodeApi) -> None:
        api.broadcast(KIND_INPUT, self.x)
        self._last_sent[KIND_INPUT] = self.x

    def _count_inputs(self, api: NodeApi, inbox: Inbox) -> None:
        # Every live node broadcasts input at phase-round 1; anyone who
        # did not is presumed terminated and becomes eligible for the
        # substitution rule for the rest of the phase.  The sender set is
        # the index's shared frozenset — no per-node copy.
        self._phase_live = inbox.distinct_senders(KIND_INPUT)
        value, count = self._best(inbox, KIND_INPUT)
        self._last_sent.pop(KIND_PREFER, None)
        if at_least_two_thirds(count, self.n_v):
            api.broadcast(KIND_PREFER, value)
            self._last_sent[KIND_PREFER] = value
        else:
            self._no_preference(api)

    def _count_prefers(self, api: NodeApi, inbox: Inbox) -> None:
        value, count = self._best(inbox, KIND_PREFER)
        if at_least_third(count, self.n_v):
            self.x = value
            api.emit("adopt-prefer", value=value, count=count)
        self._last_sent.pop(KIND_STRONGPREFER, None)
        if at_least_two_thirds(count, self.n_v):
            api.broadcast(KIND_STRONGPREFER, value)
            self._last_sent[KIND_STRONGPREFER] = value
        else:
            self._no_strong_preference(api)

    def _rotor_round(self, api: NodeApi, inbox: Inbox) -> None:
        self._stashed_strong = self._best(inbox, KIND_STRONGPREFER)
        step = self.rotor.step(api, self.n_v, self.x, allow_repeat=True)
        self._current_coordinator = step.coordinator
        api.emit(
            "phase-coordinator",
            phase=self.phase,
            coordinator=step.coordinator,
        )

    def _resolve(self, api: NodeApi, inbox: Inbox) -> None:
        coordinator_opinion = self.rotor.opinion_from(
            inbox, self._current_coordinator
        )
        value, count = self._stashed_strong
        # The coordinator-switch condition is the paper's strict
        # "count < n_v/3".  n_v >= 1 here (the frozen view contains at
        # least ourselves), so this agrees with the pre-fix
        # not-at_least_third formulation at every reachable point.
        if less_than_third(count, self.n_v):
            if coordinator_opinion is not None:
                self.x = coordinator_opinion
                api.emit(
                    "adopt-coordinator",
                    phase=self.phase,
                    value=coordinator_opinion,
                )
        if at_least_two_thirds(count, self.n_v):
            api.emit("consensus-decide", phase=self.phase, value=value)
            self.decide(api, value)

    # ------------------------------------------------------------------
    # Hooks for the parallel-consensus subclass (Alg 5 sends explicit
    # no-preference markers where Alg 3 stays silent).
    # ------------------------------------------------------------------
    def _no_preference(self, api: NodeApi) -> None:
        """Called when no prefer quorum formed.  Alg 3: send nothing."""

    def _no_strong_preference(self, api: NodeApi) -> None:
        """Called when no strongprefer quorum formed.  Alg 3: nothing."""

    # ------------------------------------------------------------------
    # Counting with frozen membership and the substitution rule
    # ------------------------------------------------------------------
    def _restricted(self, inbox: Inbox) -> Inbox:
        """Discard messages from nodes outside the frozen view.

        In the common case — every sender already inside the frozen
        view — this returns the original inbox, keeping the engine's
        shared per-round index shared across all counting below.
        """
        return inbox.restricted_to(self.membership)

    def _best(self, inbox: Inbox, kind: str) -> tuple[Hashable, int]:
        """Most-supported payload of *kind*, after substitution.

        The substitution rule fills in, for every counted node that
        appears terminated (sent nothing this round, and — for the
        prefer/strongprefer countings — did not broadcast this phase's
        input either), the message this node itself most recently sent of
        the expected kind (if any).

        Counting rides the quorum-tally plane: the per-payload sender
        sets and their maximum are computed once on the round's shared
        index; the silent-member set is a shared derived view keyed by
        the frozen membership; only the own-phantom delta is per-node,
        and it never mutates any shared structure.
        """
        best = inbox.best_payload(kind)
        if not (self.substitution and kind in self._last_sent):
            return best
        membership = self.membership
        silent = inbox.derive(
            ("consensus-silent", membership),
            lambda idx: membership - idx.all_senders,
        )
        if kind != KIND_INPUT and silent:
            silent = silent - self._phase_live
        return best_with_extra(
            inbox.payload_sender_sets(kind),
            best,
            self._last_sent[kind],
            len(silent),
        )
