"""Parallel consensus in the id-only model (Algorithm 5).

Every correct node holds a set of ``(id, value)`` input pairs; for every
id, the correct nodes must agree on one output pair (or agree to output
nothing).  The twist: not every correct node knows every id, so nodes must
be able to *join* a running instance mid-flight, and instances whose id no
correct node input must die quietly (converge to ``⊥`` and output
nothing).

Per instance the protocol is Algorithm 3 with three additions:

* messages are tagged with the instance id;
* explicit ``nopreference`` / ``nostrongpreference`` markers distinguish a
  live node that saw no quorum from a silent (terminated) node;
* ``⊥`` back-fill on first hearing: a node that first hears
  ``id:input`` / ``id:prefer`` / ``id:strongprefer`` during rounds 2/3/5
  of the instance's first phase joins it, substituting ``m(⊥)`` for every
  counted node that did not send a type-``m`` message; later sightings of
  unknown ids are discarded.

Two engineering completions beyond the paper's text (see DESIGN.md §4):

* a ``noinput`` marker at phase-round 1 for nodes whose current opinion is
  ``⊥`` (the paper has markers for the other two abstention points; the
  symmetric marker makes the Algorithm-3 equivalence exact from phase 2
  on, where otherwise a live ``⊥``-holder is indistinguishable from a
  terminated node);
* a phase cap of ``⌊n_v/2⌋ + 3`` per instance.  Legitimate (phase-aligned)
  instances terminate within ``f + 2 <= ⌊n_v/2⌋ + 2`` phases; only
  Byzantine-initiated instances whose first-hearing types were split
  across rounds (a case outside the paper's proof) can run longer, they
  can never produce an output at any correct node, and the cap retires
  them with no output everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Hashable, Mapping

from repro.core.quorum import (
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
    less_than_third,
)
from repro.core.rotor import CandidateSet, RotorCore, RotorCursor  # noqa: F401
from repro.sim.inbox import Inbox, InboxIndex, best_with_extra
from repro.sim.node import NodeApi, Protocol
from repro.types import BOTTOM, NodeId, Round, is_bottom

KIND_INPUT = "input"
KIND_PREFER = "prefer"
KIND_STRONGPREFER = "strongprefer"
KIND_NOINPUT = "noinput"
KIND_NOPREFERENCE = "nopreference"
KIND_NOSTRONGPREFERENCE = "nostrongpreference"

#: The paper's M: quorum-carrying message types.
QUORUM_KINDS: frozenset[str] = frozenset(
    {KIND_INPUT, KIND_PREFER, KIND_STRONGPREFER}
)
#: Marker sent when a quorum kind is abstained from.
MARKER_FOR: dict[str, str] = {
    KIND_INPUT: KIND_NOINPUT,
    KIND_PREFER: KIND_NOPREFERENCE,
    KIND_STRONGPREFER: KIND_NOSTRONGPREFERENCE,
}

PHASE_LENGTH = 5

#: Sentinel meaning "this node's most recent action for the kind was the
#: abstention marker" (used by the substitution rule).
_ABSTAINED = object()


def _vote_base(
    index: InboxIndex, kind: str
) -> tuple[Mapping[Hashable, frozenset[NodeId]], tuple[Hashable, int]]:
    """Shared decoded vote base for one quorum kind of one instance.

    ``value -> frozenset(distinct senders)`` after wire decoding
    (``"__bottom__"`` -> ``⊥``) and after folding ``noinput`` markers
    into ``input(⊥)`` votes, plus its precomputed best ``(value,
    count)``.  Keys appear in first-occurrence order and the best uses
    the ``(count, repr)`` tie-break, both matching the historical
    per-node rebuild exactly.  Memoized on the instance's (round-shared)
    index via :meth:`InboxIndex.derive`, so every recipient counting
    this instance's votes pays for the grouping once per round.
    """
    votes: dict[Hashable, set[NodeId]] = {}
    for message in index.kind_bucket(kind):
        decoded = (
            BOTTOM if message.payload == "__bottom__" else message.payload
        )
        votes.setdefault(decoded, set()).add(message.sender)
    if kind == KIND_INPUT:
        # repro-lint: disable=R304 -- commutative set-vote accumulation
        for sender in index.sender_set(KIND_NOINPUT, ..., ...):
            votes.setdefault(BOTTOM, set()).add(sender)
    base = {value: frozenset(senders) for value, senders in votes.items()}
    if base:
        value, senders = max(
            base.items(), key=lambda item: (len(item[1]), repr(item[0]))
        )
        best: tuple[Hashable, int] = (value, len(senders))
    else:
        best = (None, 0)
    return MappingProxyType(base), best


def _unfilled_members(
    index: InboxIndex, kind: str, membership: frozenset[NodeId]
) -> frozenset[NodeId]:
    """Members that sent no type-*kind* message this round.

    The first-phase ``⊥`` back-fill base (``noinput`` counts as a typed
    ``input`` message).  Shared per ``(kind, membership)`` on the
    round's index: disjoint from every sender set in the vote base by
    construction, which is what lets :func:`best_with_extra` apply it as
    a pure count delta.
    """
    typed = index.sender_set(kind, ..., ...)
    if kind == KIND_INPUT:
        typed = typed | index.sender_set(KIND_NOINPUT, ..., ...)
    return membership - typed


@dataclass
class InstanceResult:
    """Terminal state of one consensus instance at one node."""

    instance_id: Hashable
    value: Hashable  # may be BOTTOM
    round: Round

    @property
    def has_output(self) -> bool:
        return not is_bottom(self.value)


class ConsensusInstance:
    """One ``EarlyConsensus(id)`` execution at one node.

    Two wiring modes:

    * ``own_init=False`` (Algorithm 5) — rotor initialization happened
      once at protocol start; the caller passes the shared candidate set
      into :meth:`on_round`.  ``start_round`` is the instance's first
      phase round.
    * ``own_init=True`` (Algorithm 6) — the instance spends its first two
      rounds on its own (instance-tagged) ``init``/``echo`` exchange and
      maintains its own candidate set; phases start two rounds after
      ``start_round``.  This matches the paper's per-instance finality
      budget of ``5f + 2`` rounds.
    """

    def __init__(
        self,
        instance_id: Hashable,
        start_round: Round,
        value: Hashable,
        joined_via: str = "input-pair",
        own_init: bool = False,
    ):
        self.instance_id = instance_id
        self.start_round = start_round
        self.x: Hashable = value
        self.joined_via = joined_via
        self.cursor = RotorCursor()
        self.own_candidates = (
            CandidateSet(instance=instance_id) if own_init else None
        )
        self.init_rounds = 2 if own_init else 0
        self.terminated = False
        self.result: InstanceResult | None = None
        #: Most recent action per quorum kind: a payload, _ABSTAINED, or
        #: absent when nothing of that kind was ever sent.
        self._last_action: dict[str, Hashable] = {}
        self._stashed_strong: tuple[Hashable, int] | None = None
        self._coordinator: NodeId | None = None
        #: True while the current phase is the one we joined in (the ⊥
        #: back-fill applies to first-phase countings only).
        self.join_phase_fill = True

    # ------------------------------------------------------------------
    def phase_round(self, round_no: Round) -> int:
        rel = round_no - self.start_round - self.init_rounds
        return rel % PHASE_LENGTH + 1

    def phase(self, round_no: Round) -> int:
        rel = round_no - self.start_round - self.init_rounds
        return rel // PHASE_LENGTH + 1

    # ------------------------------------------------------------------
    def on_round(
        self,
        api: NodeApi,
        tagged: Inbox,
        membership: frozenset[NodeId],
        n_v: int,
        candidates: list[NodeId] | None,
        phase_cap: int,
    ) -> None:
        """Advance the instance by one real round.

        ``tagged`` holds only this instance's messages (already restricted
        to the instance's membership); ``candidates`` is the shared rotor
        candidate set (``own_init`` instances ignore it and use theirs).
        """
        if self.terminated:
            return
        if self.own_candidates is not None:
            rel = api.round - self.start_round
            if rel == 0:
                self.own_candidates.announce(api)
                return
            if rel == 1:
                self.own_candidates.echo_inits(api, tagged)
                return
            self.own_candidates.absorb(tagged)
            self.own_candidates.evaluate(api, n_v, broadcast=True)
            candidates = self.own_candidates.candidates
        pr = self.phase_round(api.round)
        if pr == 1:
            phase = self.phase(api.round)
            if phase > phase_cap:
                self._terminate(api, BOTTOM)
                return
            if phase > 1:
                # The ⊥ back-fill applies to first-phase countings only.
                self.join_phase_fill = False
            self._send_or_abstain(api, KIND_INPUT, self.x)
        elif pr == 2:
            value, count = self._count(tagged, KIND_INPUT, membership)
            if at_least_two_thirds(count, n_v):
                self._send_or_abstain(api, KIND_PREFER, value)
            else:
                self._abstain(api, KIND_PREFER)
        elif pr == 3:
            value, count = self._count(tagged, KIND_PREFER, membership)
            if at_least_third(count, n_v):
                self.x = value
            if at_least_two_thirds(count, n_v):
                self._send_or_abstain(api, KIND_STRONGPREFER, value)
            else:
                self._abstain(api, KIND_STRONGPREFER)
        elif pr == 4:
            self._stashed_strong = self._count(
                tagged, KIND_STRONGPREFER, membership
            )
            step = self.cursor.select(
                api,
                candidates,
                self.x,
                instance=self.instance_id,
                allow_repeat=True,
            )
            self._coordinator = step.coordinator
        else:  # pr == 5
            opinion = RotorCore.opinion_from(
                tagged, self._coordinator, instance=self.instance_id
            )
            if self._stashed_strong is None:
                # Joined via a first-phase strongprefer sighting: the
                # stash round never ran; count this round's strongprefer
                # messages with the join-phase ⊥ back-fill instead.
                self._stashed_strong = self._count(
                    tagged, KIND_STRONGPREFER, membership
                )
            value, count = self._stashed_strong
            self._stashed_strong = None
            # Coordinator switch uses the paper's strict count < n_v/3
            # (an instance's frozen view always contains the node
            # itself, so n_v >= 1 and this matches the pre-fix
            # not-at_least_third formulation at every reachable point).
            if less_than_third(count, n_v) and opinion is not None:
                self.x = opinion
            if at_least_two_thirds(count, n_v):
                self._terminate(api, value)

    # ------------------------------------------------------------------
    def _terminate(self, api: NodeApi, value: Hashable) -> None:
        self.terminated = True
        self.result = InstanceResult(self.instance_id, value, api.round)
        api.emit(
            "instance-terminate",
            instance=self.instance_id,
            value=None if is_bottom(value) else value,
            output=not is_bottom(value),
        )

    def _send_or_abstain(
        self, api: NodeApi, kind: str, value: Hashable
    ) -> None:
        """Broadcast ``kind(value)``, or the abstention marker for ``⊥``.

        Only ``input`` treats ``⊥`` as an abstention (Alg 5 broadcasts the
        input only when ``x ≠ ⊥``); ``prefer(⊥)``/``strongprefer(⊥)`` are
        legitimate votes for the "no output" outcome and go on the wire.
        """
        if kind == KIND_INPUT and is_bottom(value):
            self._abstain(api, kind)
            return
        payload = None if is_bottom(value) else value
        wire = payload if not is_bottom(value) else "__bottom__"
        api.broadcast(kind, wire, instance=self.instance_id)
        self._last_action[kind] = value

    def _abstain(self, api: NodeApi, kind: str) -> None:
        api.broadcast(MARKER_FOR[kind], instance=self.instance_id)
        self._last_action[kind] = _ABSTAINED

    # ------------------------------------------------------------------
    def _count(
        self, tagged: Inbox, kind: str, membership: frozenset[NodeId]
    ) -> tuple[Hashable, int]:
        """Count distinct supporters per value for one quorum kind.

        Applies, in order: wire decoding (``"__bottom__"`` -> ``⊥``),
        ``noinput`` markers as ``input(⊥)`` votes, the first-phase ``⊥``
        back-fill, and the own-last-message substitution for silent
        members.

        The decoded vote base and the membership back-fill sets are
        shared derived views on the instance's (round-shared) index —
        every recipient counting this instance's votes pays for them
        once; only the own-last-action substitution value is per-node,
        layered as an O(1) delta via :func:`best_with_extra`.  The
        result is pinned to the naive per-node dict-building
        implementation by ``tests/properties/test_tally_coherence.py``.
        """
        index = tagged.index
        base, best = index.derive(
            ("pc-votes", kind), lambda idx: _vote_base(idx, kind)
        )
        if self.join_phase_fill:
            # First-phase rule: substitute kind(⊥) for every counted node
            # that sent no type-`kind` message.
            unfilled = index.derive(
                ("pc-unfilled", kind, membership),
                lambda idx: _unfilled_members(idx, kind, membership),
            )
            return best_with_extra(base, best, BOTTOM, len(unfilled))
        own = self._last_action.get(kind, _ABSTAINED)
        if own is _ABSTAINED:
            return best
        # Subsequent rounds: silent members (no tagged message at all
        # this round) mirror our own most recent action of this kind.
        missing = index.derive(
            ("pc-missing", membership),
            lambda idx: membership - idx.all_senders,
        )
        return best_with_extra(base, best, own, len(missing))

    @staticmethod
    def _decode(payload: Hashable) -> Hashable:
        return BOTTOM if payload == "__bottom__" else payload


class ParallelConsensusMachine:
    """The Algorithm-5 engine, decoupled from the Protocol lifecycle.

    One machine = one rotor initialization + any number of consensus
    instances sharing it.  :class:`ParallelConsensus` wraps one machine as
    a standalone protocol; total ordering (Algorithm 6) runs one machine
    per network round, namespaced by ``base_tag``.

    Args:
        start_round: the (global) round of the machine's ``init``
            broadcast; phases of the initial batch begin two rounds later.
        membership: fixed membership (total ordering passes its recorded
            ``S``); None means "freeze whoever speaks during
            initialization" (the static Algorithm-5 rule).
        base_tag: wire namespace.  None tags inner instances with their
            bare id (static use); otherwise instances are tagged
            ``(base_tag, id)`` and init traffic with ``base_tag``.
    """

    def __init__(
        self,
        start_round: Round,
        membership: frozenset[NodeId] | None = None,
        base_tag: Hashable = None,
    ):
        self.start_round = start_round
        self.membership = membership
        self.n_v = len(membership) if membership is not None else 0
        self.base_tag = base_tag
        self.tracker = ViewTracker()
        self.candidate_set = CandidateSet(instance=base_tag)
        self.instances: dict[Hashable, ConsensusInstance] = {}
        self._pending: dict[Hashable, Hashable] = {}
        self._results: dict[Hashable, InstanceResult] = {}
        self._started_batch = False
        #: Deterministic execution order over ``instances``, rebuilt only
        #: when the instance set changes (repr-sorting dozens of live
        #: instances every round, per node, was measurable at n=200).
        self._order: list[Hashable] = []
        self._order_dirty = False
        self._output_cache: (
            tuple[tuple[Hashable, Hashable], ...] | None
        ) = None

    # -- namespacing ------------------------------------------------------
    def _wire_tag(self, inner_id: Hashable) -> Hashable:
        if self.base_tag is None:
            return inner_id
        return (self.base_tag, inner_id)

    def _inner_id(self, wire_tag: Hashable) -> Hashable | None:
        """Reverse of :meth:`_wire_tag`; None when outside our namespace."""
        if self.base_tag is None:
            return wire_tag if wire_tag is not None else None
        if (
            isinstance(wire_tag, tuple)
            and len(wire_tag) == 2
            and wire_tag[0] == self.base_tag
        ):
            return wire_tag[1]
        return None

    # -- inputs and results -----------------------------------------------
    def submit(self, instance_id: Hashable, value: Hashable) -> None:
        """Queue an input pair; its instance starts on the next round.

        All correct nodes must submit a given id in the same round for
        the instances to be phase-aligned.
        """
        self._pending[instance_id] = value

    @property
    def results(self) -> dict[Hashable, InstanceResult]:
        """Terminal results so far (including ``⊥``/no-output ones)."""
        return dict(self._results)

    def output_pairs(self) -> tuple[tuple[Hashable, Hashable], ...]:
        """The non-``⊥`` outputs, sorted by instance id.

        Cached: repeated calls return the same tuple object until a new
        terminal result lands (total ordering polls every finalized
        machine each round).
        """
        cached = self._output_cache
        if cached is None:
            pairs = [
                (r.instance_id, r.value)
                for r in self._results.values()
                if r.has_output
            ]
            cached = self._output_cache = tuple(
                sorted(pairs, key=lambda p: repr(p[0]))
            )
        return cached

    def idle(self) -> bool:
        """True when no instance is running and none is queued."""
        return not self.instances and not self._pending

    def join_window_closed(self, round_no: Round) -> bool:
        """True once the initial batch's first phase is fully over."""
        return round_no > self.start_round + 2 + PHASE_LENGTH

    @property
    def phase_cap(self) -> int:
        return self.n_v // 2 + 3

    # -- round execution ----------------------------------------------------
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        rel = api.round - self.start_round
        if rel < 0:
            return
        if rel == 0:
            self.candidate_set.announce(api)
            return
        if rel == 1:
            if self.membership is None:
                self.tracker.observe(inbox)
                self.membership = self.tracker.freeze()
                self.n_v = len(self.membership)
            self.candidate_set.echo_inits(
                api, self._restrict(inbox)
            )
            return

        inbox = self._restrict(inbox)
        self.candidate_set.absorb(inbox)
        self.candidate_set.evaluate(api, self.n_v, broadcast=True)

        self._start_pending(api)
        self._join_new_instances(api, inbox)
        self._run_instances(api, inbox)

    def _restrict(self, inbox: Inbox) -> Inbox:
        """Only accept messages from the recorded membership.

        Returns the original inbox (with its round-shared index) when no
        out-of-view sender is present — the steady-state case.
        """
        if self.membership is None:
            return inbox
        return inbox.restricted_to(self.membership)

    # -- internals ----------------------------------------------------------
    def _start_pending(self, api: NodeApi) -> None:
        for instance_id, value in self._pending.items():
            if instance_id in self.instances or instance_id in self._results:
                continue
            self.instances[instance_id] = ConsensusInstance(
                self._wire_tag(instance_id), api.round, value
            )
            self._order_dirty = True
            api.emit(
                "instance-start", instance=self._wire_tag(instance_id)
            )
        self._pending.clear()

    def _join_new_instances(self, api: NodeApi, inbox: Inbox) -> None:
        """The first-hearing joining rules (Thm 10.1's case analysis).

        ``input`` heard at what must be phase-round 2 -> start was last
        round; ``prefer`` -> phase-round 3; ``strongprefer`` ->
        phase-round 4 (the paper says "fifth round", meaning the round
        that *evaluates* strongprefer counts; the messages themselves,
        sent at phase-round 3, land at phase-round 4 where the joiner
        must stash them like everyone else).  Anything else about an
        unknown id — coordinator opinions, second-phase traffic — is
        discarded.

        Walks the round's per-instance buckets (first-occurrence order)
        instead of every message: most rounds carry zero unknown
        instances, and the known ones are dismissed with one dict probe
        per instance rather than one per message.
        """
        offsets = {KIND_INPUT: 1, KIND_PREFER: 2, KIND_STRONGPREFER: 3}
        for wire_tag in inbox.instance_tags():
            inner = self._inner_id(wire_tag)
            if inner is None:
                continue
            if inner in self.instances or inner in self._results:
                continue
            for message in inbox.filter(instance=wire_tag):
                offset = offsets.get(message.kind)
                if offset is None:
                    continue
                start = api.round - offset
                if start < self.start_round + 2:
                    continue  # would predate the machine itself
                self.instances[inner] = ConsensusInstance(
                    self._wire_tag(inner),
                    start,
                    BOTTOM,
                    joined_via=message.kind,
                )
                self._order_dirty = True
                api.emit(
                    "instance-join",
                    instance=self._wire_tag(inner),
                    via=message.kind,
                )
                break

    def _run_instances(self, api: NodeApi, inbox: Inbox) -> None:
        if self._order_dirty:
            self._order = sorted(self.instances, key=repr)
            self._order_dirty = False
        any_terminated = False
        for inner in self._order:
            instance = self.instances[inner]
            tagged = inbox.filter(instance=self._wire_tag(inner))
            instance.on_round(
                api,
                tagged,
                self.membership,
                self.n_v,
                self.candidate_set.candidates,
                self.phase_cap,
            )
            if instance.terminated:
                result = instance.result
                # Report results under the inner id, not the wire tag.
                self._results[inner] = InstanceResult(
                    inner, result.value, result.round
                )
                self._output_cache = None
                any_terminated = True
        if any_terminated:
            for inner in self._order:
                if self.instances[inner].terminated:
                    del self.instances[inner]
            self._order = [i for i in self._order if i in self.instances]


class ParallelConsensus(Protocol):
    """The full ParallelConsensus protocol of §10 as a standalone run.

    Args:
        inputs: this node's input pairs ``{id: value}``.
        linger_rounds: extra rounds to stay alive after all known
            instances have terminated (for runs where Byzantine nodes may
            initiate instances late).

    The node's output (``self.output`` once decided) is a sorted tuple of
    ``(id, value)`` pairs — every instance that terminated with a non-``⊥``
    value.
    """

    def __init__(
        self,
        inputs: dict[Hashable, Hashable] | None = None,
        linger_rounds: int = 0,
    ):
        super().__init__()
        self.inputs = dict(inputs or {})
        self.linger_rounds = linger_rounds
        self.machine = ParallelConsensusMachine(start_round=1)

    @property
    def results(self) -> dict[Hashable, InstanceResult]:
        return self.machine.results

    def output_pairs(self) -> tuple[tuple[Hashable, Hashable], ...]:
        return self.machine.output_pairs()

    def submit(self, instance_id: Hashable, value: Hashable) -> None:
        self.machine.submit(instance_id, value)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 2:
            # The node's initial input pairs start in round 3.
            for instance_id, value in self.inputs.items():
                self.machine.submit(instance_id, value)
        self.machine.on_round(api, inbox)
        if (
            self.machine.join_window_closed(api.round)
            and api.round > 2 + PHASE_LENGTH + 2 + self.linger_rounds
            and self.machine.idle()
        ):
            self.decide(api, self.output_pairs())
