"""Byzantine renaming in the id-only model (appendix extension X2).

Nodes hold unique but arbitrarily large identifiers; the goal is to agree
on a compact renaming — every correct node ends with the same ordered set
``S`` of identifiers and renames each ``p ∈ S`` to its rank in ``S``.

The identifier set is built exactly like reliable-broadcast acceptance
(announce/echo/thresholds).  Termination is detected by *quietness*: when
a node sees two consecutive rounds in which ``S`` did not change, it
proposes ``terminate(k)``; the proposal itself spreads through the same
``n_v/3`` / ``2n_v/3`` echo thresholds, and a ``2n_v/3`` quorum ends the
protocol.  The appendix bounds the run at ``O(f)`` rounds
(``<= 4f + 3`` main-loop rounds before a common quiet window appears).
"""

from __future__ import annotations

from repro.core.quorum import EchoVoting, ViewTracker
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_INIT = "init"
KIND_ECHO = "echo"
KIND_TERMINATE = "terminate"


class ByzantineRenaming(Protocol):
    """One node's renaming execution.

    The output is the agreed, sorted tuple of identifiers; this node's new
    name is its (1-based) rank, exposed as :attr:`new_name`.
    """

    def __init__(self) -> None:
        super().__init__()
        self.tracker = ViewTracker()
        self.id_voting = EchoVoting()
        self.terminate_voting = EchoVoting()
        self.names: set[NodeId] = set()  # the appendix's S
        self._last_change_round: int | None = None
        self._rounds_without_change = 0

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        self.tracker.observe(inbox)
        if api.round == 1:
            api.broadcast(KIND_INIT)
            return
        if api.round == 2:
            for sender in sorted(inbox.senders(KIND_INIT)):
                api.broadcast(KIND_ECHO, sender)
            return

        n_v = self.tracker.n_v
        outgoing: list[tuple[str, object]] = []  # the appendix's M

        self.id_voting.absorb_inbox(inbox, KIND_ECHO)
        decision = self.id_voting.evaluate(n_v, api.round)
        outgoing.extend((KIND_ECHO, tag) for tag in decision.echo)
        changed = bool(decision.newly_accepted)
        for name in decision.newly_accepted:
            self.names.add(name)
            api.emit("rename-add", name=name)

        if changed:
            self._rounds_without_change = 0
        else:
            self._rounds_without_change += 1
        if self._rounds_without_change >= 2:
            outgoing.append((KIND_TERMINATE, api.round - 1))

        self.terminate_voting.absorb_inbox(inbox, KIND_TERMINATE)
        term_decision = self.terminate_voting.evaluate(n_v, api.round)
        outgoing.extend(
            (KIND_TERMINATE, tag) for tag in term_decision.echo
        )

        # Deduplicate M (a terminate proposal may be both self-initiated
        # and threshold-relayed in the same round).
        for kind, payload in dict.fromkeys(outgoing):
            api.broadcast(kind, payload)

        if term_decision.newly_accepted:
            assignment = tuple(sorted(self.names))
            api.emit("rename-done", size=len(assignment))
            self.decide(api, assignment)

    @property
    def new_name(self) -> int | None:
        """This node's agreed compact name (1-based rank), once decided."""
        if not self.halted or self.output is None:
            return None
        try:
            return self.output.index(self._own_id) + 1
        except ValueError:
            return None

    # The protocol does not know its own id until the first api call; we
    # capture it lazily for new_name.
    _own_id: NodeId | None = None

    def decide(self, api: NodeApi, value) -> None:  # noqa: D102
        self._own_id = api.node_id
        super().decide(api, value)
