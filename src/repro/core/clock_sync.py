"""Byzantine fault-tolerant clock synchronization on approximate agreement.

The classical application the paper's related work cites for approximate
agreement (Welch–Lynch style): nodes hold drifting hardware clocks and
periodically agree them together.  Each resync round every node
broadcasts its current clock reading and applies the Algorithm-4
trim-and-midpoint to what it received; Lemma aaWithin keeps every
adjusted clock inside the correct clocks' envelope (Byzantine nodes
cannot drag anyone away), and the halving bounds the post-sync skew by
half the pre-sync skew — so the steady-state skew is governed by the
drift accumulated *between* resyncs, not by the adversary.

This is a simulation-level model: each node's hardware clock advances by
``1 + drift`` of simulated time per round; ``resync_every`` rounds, a
sync exchange runs.  The point is the *skew trajectory*, measured by the
tests and benchmark: unsynchronized clocks diverge linearly, synchronized
ones plateau at ``O(drift · resync_every)`` regardless of Byzantine
interference.
"""

from __future__ import annotations

from repro.core.approx_agreement import (
    KIND_VALUE,
    _one_value_per_sender,
    trim_and_midpoint,
)
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol


class ClockSyncNode(Protocol):
    """One node's drifting clock plus the resync protocol.

    Args:
        drift: per-round clock rate error (e.g. +0.01 = clock runs 1%
            fast).  The paper's model gives consistent *round* timing;
            drift models the local oscillators.
        resync_every: rounds between synchronization exchanges.

    Attributes:
        clock: the node's current logical clock value.
        skew_history: this node's clock reading at each round (for
            measuring cluster-wide skew trajectories).
    """

    def __init__(self, drift: float = 0.0, resync_every: int = 5):
        super().__init__()
        if resync_every < 2:
            raise ValueError("resync_every must be >= 2")
        self.drift = drift
        self.resync_every = resync_every
        self.clock = 0.0
        self.skew_history: list[float] = []
        self.adjustments: list[float] = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        # Hardware tick: one round of real time, scaled by the drift.
        self.clock += 1.0 + self.drift

        # A sync exchange: readings broadcast on the k-th round arrive
        # (and are agreed) on the k+1-th.
        if api.round % self.resync_every == 0:
            api.broadcast(KIND_VALUE, self.clock)
        elif api.round % self.resync_every == 1 and api.round > 1:
            readings = _one_value_per_sender(inbox)
            if readings:
                # Everyone else's readings are one round old; so is ours
                # on their side — the offsets cancel in the midpoint.
                agreed = trim_and_midpoint(readings)
                adjustment = agreed + (1.0 + self.drift) - self.clock
                self.clock += adjustment
                self.adjustments.append(adjustment)
                api.emit(
                    "clock-adjust",
                    adjustment=round(adjustment, 6),
                    clock=round(self.clock, 6),
                )
        self.skew_history.append(self.clock)


def max_skew(nodes: list[ClockSyncNode], step: int) -> float:
    """Cluster-wide clock skew at a given round (0-indexed)."""
    readings = [
        node.skew_history[step]
        for node in nodes
        if len(node.skew_history) > step
    ]
    return max(readings) - min(readings) if readings else 0.0
