"""Terminating reliable broadcast (appendix extension X1).

Plain reliable broadcast (Algorithm 1) never terminates — nothing tells a
node that no message is coming.  The terminating variant reduces to
early-terminating consensus: every node adopts the message it received
directly from the designated sender (or "nothing") as its consensus
opinion.  Correctness/unforgeability follow from consensus validity,
relay from consensus agreement, and termination from Theorem 7.5's
``O(f)`` bound.

One deviation from the appendix pseudocode, which has the sender send only
``(m, s)`` in round one: our sender *also* broadcasts the rotor ``init``.
The embedded rotor needs every correct id in its candidate set, and the
message broadcast cannot double as a candidacy announcement without
special-casing the rotor's round-two echo.  Cost: one extra message.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.consensus import EarlyConsensus
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_MESSAGE = "msg"

#: Consensus opinion meaning "the sender sent me nothing".
NO_MESSAGE = "__trb-silence__"


class TerminatingReliableBroadcast(Protocol):
    """Terminating reliable broadcast for designated sender ``sender_id``.

    The protocol output is the agreed message, or :data:`NO_MESSAGE` when
    the correct nodes agreed the sender said nothing (it was silent or
    too inconsistent to matter).
    """

    def __init__(self, sender_id: NodeId, message: Hashable = None):
        super().__init__()
        self.sender_id = sender_id
        self.message = message
        self._consensus = EarlyConsensus(NO_MESSAGE)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1 and api.node_id == self.sender_id:
            api.broadcast(KIND_MESSAGE, self.message)
        if api.round == 2:
            received = list(
                inbox.from_sender(self.sender_id).filter(KIND_MESSAGE)
            )
            if received:
                self._consensus.x = received[0].payload
            api.emit(
                "trb-opinion",
                opinion=self._consensus.x,
            )
        self._consensus.on_round(api, inbox)
        if self._consensus.halted and not self.halted:
            self.output = self._consensus.output
            self.halted = True
            self.decided_round = api.round
            api.emit("decide", value=self.output)

    @property
    def delivered(self) -> bool:
        """True when the agreed output is an actual message."""
        return self.halted and self.output != NO_MESSAGE
