"""Approximate agreement in the id-only model (Algorithm 4).

Each correct node inputs a real number and outputs a real number such that
(1) every output lies within the range of correct inputs, and (2) the
output range is strictly smaller than the input range — the paper's
algorithm halves it.  The classical algorithm (Dolev et al.) discards the
``f`` smallest and largest received values; here ``f`` is unknown, so each
node discards ``⌊n_v/3⌋`` from each end, where ``n_v`` is the number of
values it received.  Lemma aaWithin: ``⌊n_v/3⌋ >= f_v`` for ``n > 3f``, so
all Byzantine values can be trimmed; Lemma aaMed: fewer than half the
correct values are trimmed from either side, so the correct median always
survives, which forces the halving.

Three shapes:

* :func:`trim_and_midpoint` — the pure one-shot computation;
* :class:`ApproximateAgreement` — the paper's single-round protocol;
* :class:`IteratedApproximateAgreement` — repeats the round to drive the
  range below a target width; also the dynamic-network variant (§11): it
  recomputes ``R_v`` from scratch each round, so nodes may join or leave
  between iterations.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_VALUE = "value"


def trim_and_midpoint(values: Sequence[float]) -> float:
    """Discard ``⌊n/3⌋`` smallest and largest values, return the midpoint
    of the survivors' extremes.

    Raises ValueError on an empty input (a correct node always receives at
    least its own value).
    """
    if not values:
        raise ValueError("cannot agree on zero values")
    ordered = sorted(values)
    trim = len(ordered) // 3
    survivors = ordered[trim: len(ordered) - trim]
    if not survivors:  # pragma: no cover - len//3 < len/2 guarantees some
        survivors = [ordered[len(ordered) // 2]]
    return (survivors[0] + survivors[-1]) / 2


def _one_value_per_sender(inbox: Inbox) -> list[float]:
    """Collapse the inbox to one value per sender.

    A Byzantine node may send several distinct values to the same node in
    one round; the set ``R_v`` of Algorithm 4 holds one value per sender
    (``n_v = |R_v|`` equals the number of senders).  We keep the smallest,
    deterministically — any fixed choice is within the adversary's power
    anyway.
    """
    per_sender: dict[NodeId, float] = {}
    # filter() serves the index's kind bucket, so with a round-shared
    # index only the ``value`` messages are walked, once per recipient.
    for message in inbox.filter(KIND_VALUE):
        value = message.payload
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # ignore garbage payloads outright
        if message.sender not in per_sender or value < per_sender[message.sender]:
            per_sender[message.sender] = value
    return list(per_sender.values())


class ApproximateAgreement(Protocol):
    """The paper's single-round approximate agreement."""

    def __init__(self, input_value: float):
        super().__init__()
        self.input_value = float(input_value)

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            api.broadcast(KIND_VALUE, self.input_value)
            return
        values = _one_value_per_sender(inbox)
        output = trim_and_midpoint(values)
        api.emit("approx-output", output=output, n_v=len(values))
        self.decide(api, output)


class ContinuousApproximateAgreement(Protocol):
    """The dynamic-network variant of §11: never-ending estimation.

    Each round the node broadcasts its current estimate and replaces it
    with the trimmed midpoint of the values received.  Participants may
    join (starting from their own input) and leave every round, subject
    to ``n > 3f`` per round; Lemmas aaWithin/aaMed apply round-wise, so
    the range of *current* correct estimates halves relative to the
    previous round — but, as the paper notes, a joiner with an outlying
    input can widen it again.  The protocol never halts; read
    :attr:`estimate` (and :attr:`history`) whenever the scenario ends.
    """

    def __init__(self, input_value: float):
        super().__init__()
        self.estimate = float(input_value)
        self.history: list[float] = []
        #: False until this node has announced its own input once.  A
        #: joiner's first inbox is no longer empty (broadcast recipients
        #: are resolved at delivery time), so "have I spoken yet" must be
        #: tracked explicitly: the paper's dynamic model has a joiner
        #: *announce its input* in its first round — mixing starts after.
        self._announced = False

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if self._announced:
            values = _one_value_per_sender(inbox)
            if values:
                self.estimate = trim_and_midpoint(values)
        self._announced = True
        self.history.append(self.estimate)
        api.broadcast(KIND_VALUE, self.estimate)
        api.emit("approx-estimate", estimate=self.estimate)


class IteratedApproximateAgreement(Protocol):
    """Run the Algorithm-4 round repeatedly.

    Each iteration broadcasts the current estimate and replaces it with
    the trimmed midpoint of that round's received values.  Because every
    round recomputes the received set from scratch, this is exactly the
    protocol the paper applies to dynamic networks: participants may join
    or leave between rounds, subject to ``n > 3f`` holding per round.

    Args:
        input_value: the initial estimate.
        iterations: how many halving rounds to run.

    Attributes:
        estimates: the estimate after each completed iteration (for
            measuring per-round convergence).
    """

    def __init__(self, input_value: float, iterations: int = 10):
        super().__init__()
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self.estimate = float(input_value)
        self.iterations = iterations
        self.estimates: list[float] = []

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round > 1:
            values = _one_value_per_sender(inbox)
            if values:
                self.estimate = trim_and_midpoint(values)
            self.estimates.append(self.estimate)
            api.emit("approx-iterate", estimate=self.estimate)
            if len(self.estimates) >= self.iterations:
                self.decide(api, self.estimate)
                return
        api.broadcast(KIND_VALUE, self.estimate)
