"""Total ordering of events in a dynamic network (Algorithm 6).

Nodes may join and leave (subject to ``n > 3f`` per round).  Each node
maintains a participant set ``S`` via ``present``/``absent`` announcements,
witnesses events, and — every round — runs one parallel-consensus machine
over the events broadcast in the previous round, tagged with the round
number.  A round ``r'`` becomes *final* once ``r - r' > 5|S^{r'}|/2 + 2``
(enough rounds for its machine to have terminated everywhere); the output
chain is the concatenation of final machines' agreed events in round
order.  Theorem 11.1: the chains satisfy

* **chain-prefix** — any two correct nodes' chains are prefixes of one
  another (we additionally require the machine to have locally terminated
  before treating a round as final — a conservative strengthening that
  keeps the chain correct even if an adversary stretches a machine past
  the paper's round budget);
* **chain-growth** — the chain keeps growing while correct nodes submit
  events.

Joins follow the paper's handshake: broadcast ``present``; every member
replies ``(ack, r)`` and adds the joiner to ``S``; the joiner adopts the
majority round number and initializes ``S`` to the ack senders.  A leaver
broadcasts ``absent``, keeps participating in its outstanding machines,
and halts when they terminate.

Late joiners have no history: their chain covers machines from their join
round on.  The chain-prefix checker therefore compares nodes on their
common suffix of rounds (see ``repro.analysis.checkers``).
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable

from repro.core.parallel_consensus import ParallelConsensusMachine
from repro.sim.inbox import Inbox
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId, Round

KIND_PRESENT = "present"
KIND_ABSENT = "absent"
KIND_ACK = "ack"
KIND_EVENT = "event"

#: An entry of the output chain: (round, event source, event).
ChainEntry = tuple[int, NodeId, Hashable]

#: Supplies the event this node witnesses at a local round (None = none).
EventSource = Callable[[int], Hashable | None]


def events_from_dict(plan: dict[int, Hashable]) -> EventSource:
    """Adapt a ``{local_round: event}`` plan into an event source."""

    def source(local_round: int) -> Hashable | None:
        return plan.get(local_round)

    return source


class TotalOrderNode(Protocol):
    """One participant of the dynamic total-ordering protocol.

    Args:
        event_source: callable mapping this node's local round number to
            the event it witnesses then (or None).  Use
            :func:`events_from_dict` for scripted scenarios.
        seed: True for the initial population (they skip the join
            handshake and bootstrap ``S`` from the round-one ``present``
            storm); False for nodes added to the network mid-run.
        leave_at: local round at which to start the leave protocol
            (None = stay forever).

    Attributes:
        chain: the current output chain (list of ``(round, source,
            event)`` entries), append-only.
        local_round: the node's own round counter ``r`` (seeded nodes
            count from 1; joiners adopt the majority ``ack`` value).
    """

    def __init__(
        self,
        event_source: EventSource | None = None,
        seed: bool = True,
        leave_at: int | None = None,
    ):
        super().__init__()
        self.event_source = event_source or (lambda _r: None)
        self.seed = seed
        self.leave_at = leave_at
        self.local_round: int | None = None
        self.participants: set[NodeId] = set()  # the paper's S
        #: machine round -> (machine, |S| snapshot at start)
        self.machines: dict[int, tuple[ParallelConsensusMachine, int]] = {}
        self.chain: list[ChainEntry] = []
        self.final_through: int = 0  # the paper's R
        self.joined: bool = False
        self.leaving: bool = False
        self._acks_due: list[NodeId] = []
        #: Joiners admitted to S once they can actually participate
        #: (present landed at round X -> they run their first machine at
        #: X + 3); maps due-round -> joiner ids.
        self._admissions: dict[Round, list[NodeId]] = {}
        self._join_wait: int = 0

    # ------------------------------------------------------------------
    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if not self.joined:
            self._handle_joining(api, inbox)
            return

        self.local_round += 1
        self._maintain_membership(api, inbox)
        self._collect_and_start(api, inbox)
        self._witness_event(api)
        self._run_machines(api, inbox)
        self._advance_finality(api)
        self._maybe_leave(api)

    # ------------------------------------------------------------------
    # Joining
    # ------------------------------------------------------------------
    def _handle_joining(self, api: NodeApi, inbox: Inbox) -> None:
        if self._join_wait == 0:
            api.broadcast(KIND_PRESENT)
            self._join_wait = 1
            return
        if self.seed:
            # Bootstrap: the whole initial population announced together;
            # S is everyone who said present, the round counter starts at 1.
            self.participants = set(inbox.senders(KIND_PRESENT))
            self.participants.add(api.node_id)
            self.local_round = 0
            self.joined = True
            api.emit("to-join", mode="seed", members=len(self.participants))
            return
        # Mid-run joiner: wait one round for present to land, then read
        # the (ack, r) replies.
        if self._join_wait == 1:
            self._join_wait = 2
            return
        acks = Counter(
            m.payload for m in inbox.filter(KIND_ACK)
            if isinstance(m.payload, int)
        )
        if not acks:
            # Nobody answered yet (message still in flight); keep waiting.
            return
        majority_round, _count = acks.most_common(1)[0]
        # The paper's r = r0 + 1; our main loop pre-increments, so after
        # the next round's increment we sit at r0 + 2 — exactly where the
        # established members are by then.
        self.local_round = majority_round + 1
        self.participants = set(inbox.senders(KIND_ACK))
        self.participants.add(api.node_id)
        # Membership announcements landing in the same inbox as our acks
        # must not be lost: leavers are removed immediately, concurrent
        # joiners queued for admission like anywhere else.
        # repro-lint: disable=R304 -- commutative set removal, order-free
        for leaver in inbox.senders(KIND_ABSENT):
            self.participants.discard(leaver)
        for joiner in sorted(inbox.senders(KIND_PRESENT)):
            if joiner != api.node_id:
                self._admissions.setdefault(api.round + 3, []).append(joiner)
        # Finality starts at our first machine (next local round);
        # earlier rounds are history we never saw.
        self.final_through = self.local_round
        self.joined = True
        api.emit(
            "to-join",
            mode="handshake",
            adopted_round=majority_round,
            members=len(self.participants),
        )

    # ------------------------------------------------------------------
    # Membership bookkeeping
    # ------------------------------------------------------------------
    def _maintain_membership(self, api: NodeApi, inbox: Inbox) -> None:
        for ack_dest in self._acks_due:
            if api.knows(ack_dest):
                api.send(ack_dest, KIND_ACK, self.local_round)
        self._acks_due = []
        for joiner in sorted(inbox.senders(KIND_PRESENT)):
            if joiner == api.node_id:
                continue
            self._acks_due.append(joiner)
            # Admit to S when the joiner's first own machine starts: the
            # joiner learns S and r three rounds after its `present`
            # landed here, so machines snapshotting S before then must
            # not count it.
            self._admissions.setdefault(api.round + 3, []).append(joiner)
        for due in [r for r in self._admissions if r <= api.round]:
            self.participants.update(self._admissions.pop(due))
        # repro-lint: disable=R304 -- commutative set removal, order-free
        for leaver in inbox.senders(KIND_ABSENT):
            self.participants.discard(leaver)

    # ------------------------------------------------------------------
    # Events and machines
    # ------------------------------------------------------------------
    def _collect_and_start(self, api: NodeApi, inbox: Inbox) -> None:
        """Gather events broadcast last round; start this round's machine."""
        if self.leaving:
            return
        machine_round = self.local_round
        machine = ParallelConsensusMachine(
            start_round=api.round + 1,
            membership=frozenset(self.participants),
            base_tag=("to", machine_round),
        )
        for message in inbox.filter(KIND_EVENT):
            payload = message.payload
            if not isinstance(payload, tuple) or len(payload) != 2:
                continue
            event, stamped_round = payload
            if stamped_round != self.local_round - 1:
                continue  # stale or future-stamped event
            if message.sender not in self.participants:
                continue
            machine.submit(message.sender, event)
        self.machines[machine_round] = (machine, len(self.participants))
        api.emit(
            "to-machine-start",
            machine=machine_round,
            members=len(self.participants),
        )

    def _witness_event(self, api: NodeApi) -> None:
        if self.leaving:
            return
        event = self.event_source(self.local_round)
        if event is not None:
            api.broadcast(KIND_EVENT, (event, self.local_round))
            api.emit(
                "to-event", payload=event, local_round=self.local_round
            )

    def _run_machines(self, api: NodeApi, inbox: Inbox) -> None:
        for machine_round in sorted(self.machines):
            machine, _size = self.machines[machine_round]
            machine.on_round(api, inbox)

    # ------------------------------------------------------------------
    # Finality and the output chain
    # ------------------------------------------------------------------
    def _is_final(self, machine_round: int) -> bool:
        machine, size = self.machines[machine_round]
        time_final = 2 * (self.local_round - machine_round) > 5 * size + 4
        return time_final and machine.idle()

    def _advance_finality(self, api: NodeApi) -> None:
        advanced = False
        appended: list[ChainEntry] = []
        while (self.final_through + 1) in self.machines and self._is_final(
            self.final_through + 1
        ):
            self.final_through += 1
            machine, _size = self.machines.pop(self.final_through)
            for source, value in machine.output_pairs():
                entry = (self.final_through, source, value)
                self.chain.append(entry)
                appended.append(entry)
            advanced = True
        if advanced:
            api.emit(
                "to-chain",
                final_through=self.final_through,
                length=len(self.chain),
                entries=appended,
            )

    # ------------------------------------------------------------------
    # Leaving
    # ------------------------------------------------------------------
    def _maybe_leave(self, api: NodeApi) -> None:
        wants_out = self.wants_to_leave or (
            self.leave_at is not None and self.local_round >= self.leave_at
        )
        if wants_out and not self.leaving:
            self.leaving = True
            api.broadcast(KIND_ABSENT)
            api.emit("to-leave", local_round=self.local_round)
        if self.leaving and all(
            machine.idle() for machine, _ in self.machines.values()
        ):
            self.decide(api, tuple(self.chain))
