"""The paper's algorithms: Byzantine agreement with unknown ``n`` and ``f``.

Every protocol here runs in the *id-only* model: a node knows its own
identifier and input, and nothing else — not the number of participants
``n``, not the failure bound ``f``.  The shared trick is to replace the
classical ``f``-based thresholds with fractions of ``n_v``, the number of
distinct nodes a node ``v`` has heard from, which is sound for ``n > 3f``
because every correct node announces itself in round one.

Modules (paper algorithm numbers in parentheses):

* :mod:`~repro.core.quorum` — threshold arithmetic and echo-voting shared
  by everything below;
* :mod:`~repro.core.reliable_broadcast` (Alg 1) — correctness /
  unforgeability / relay;
* :mod:`~repro.core.rotor` (Alg 2) — rotate through enough coordinators
  that a common correct one is guaranteed;
* :mod:`~repro.core.consensus` (Alg 3) — early-terminating consensus in
  ``O(f)`` rounds;
* :mod:`~repro.core.approx_agreement` (Alg 4) — trim-and-midpoint
  approximate agreement, single-shot, iterated, and dynamic;
* :mod:`~repro.core.parallel_consensus` (Alg 5) — many joinable consensus
  instances in parallel;
* :mod:`~repro.core.total_order` (Alg 6) — totally ordering events in a
  dynamic network;
* :mod:`~repro.core.terminating_broadcast`,
  :mod:`~repro.core.renaming`,
  :mod:`~repro.core.binary_consensus` — the full version's appendix
  algorithms (see DESIGN.md §1).
"""

from repro.core.quorum import (
    EchoVoting,
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
    less_than_third,
)
from repro.core.reliable_broadcast import ReliableBroadcast
from repro.core.reliable_channel import ReliableChannel
from repro.core.rotor import RotorCoordinator, RotorCore
from repro.core.consensus import EarlyConsensus
from repro.core.approx_agreement import (
    ApproximateAgreement,
    ContinuousApproximateAgreement,
    IteratedApproximateAgreement,
    trim_and_midpoint,
)
from repro.core.committee import committee_size, sample_committee
from repro.core.implicit_agreement import (
    CommitteeConsensus,
    CommitteeParallelConsensus,
)
from repro.core.interactive_consistency import InteractiveConsistency
from repro.core.parallel_consensus import ParallelConsensus
from repro.core.replicated_store import ReplicatedKVStore
from repro.core.total_order import TotalOrderNode
from repro.core.terminating_broadcast import TerminatingReliableBroadcast
from repro.core.renaming import ByzantineRenaming
from repro.core.binary_consensus import BinaryKingConsensus

__all__ = [
    "ApproximateAgreement",
    "BinaryKingConsensus",
    "ByzantineRenaming",
    "CommitteeConsensus",
    "CommitteeParallelConsensus",
    "ContinuousApproximateAgreement",
    "EarlyConsensus",
    "EchoVoting",
    "InteractiveConsistency",
    "IteratedApproximateAgreement",
    "ParallelConsensus",
    "ReliableBroadcast",
    "ReliableChannel",
    "ReplicatedKVStore",
    "RotorCoordinator",
    "RotorCore",
    "TerminatingReliableBroadcast",
    "TotalOrderNode",
    "ViewTracker",
    "at_least_third",
    "at_least_two_thirds",
    "committee_size",
    "less_than_third",
    "sample_committee",
    "trim_and_midpoint",
]
