"""Binary king-style consensus (appendix extension X3).

The appendix's Algorithm ``con`` is the direct unknown-``n, f``
generalization of the Berman–Garay–Perry *king* algorithm: binary inputs,
4-message phases (``input`` → ``support`` → rotor → switch), and
termination driven by the rotor-coordinator's own stopping rule rather
than by an early-termination quorum.  It decides in ``O(n)`` rounds
(``O(f)`` belongs to Algorithm 3); it is implemented here because it is
the historically canonical construction and serves as the in-model
comparison point for the phase-king baseline.

Phase layout (5 simulator rounds):

1. broadcast ``input(x_v)``;
2. count inputs; on a ``2n_v/3`` quorum broadcast ``support(x)``;
3. count supports; on ``n_v/3`` adopt ``x``; stash the counts;
4. one rotor step (the selected coordinator broadcasts its opinion);
5. receive the coordinator's opinion ``c``; if the stashed support count
   was below ``2n_v/3``, adopt ``c``.

The node outputs its opinion at the end of the phase in which the rotor
reports a repeated selection.  Because rotor termination is not perfectly
simultaneous across nodes, the same missing-message substitution rule as
Algorithm 3 applies: once a counted node goes silent, its message is
filled in with this node's own most recent message of the expected kind.
(The appendix text predates that rule but needs it for the same reason
Algorithm 3 does — an early terminator must not starve the stragglers'
quorums.)
"""

from __future__ import annotations

from repro.core.quorum import (
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
)
from repro.core.rotor import RotorCore
from repro.sim.inbox import Inbox, best_with_extra
from repro.sim.node import NodeApi, Protocol
from repro.types import NodeId

KIND_INPUT = "input"
KIND_SUPPORT = "support"

PHASE_LENGTH = 5
INIT_ROUNDS = 2


class BinaryKingConsensus(Protocol):
    """One node's binary king-consensus execution."""

    def __init__(self, input_value: int):
        super().__init__()
        if input_value not in (0, 1):
            raise ValueError("binary consensus needs input 0 or 1")
        self.x = input_value
        self.rotor = RotorCore()
        self.tracker = ViewTracker()
        self.membership: frozenset[NodeId] = frozenset()
        self.n_v = 0
        self.phase = 0
        self._stashed_support: tuple[object, int] = (None, 0)
        self._coordinator: NodeId | None = None
        self._rotor_done = False
        self._last_sent: dict[str, object] = {}
        self._phase_live: frozenset[NodeId] = frozenset()

    def on_round(self, api: NodeApi, inbox: Inbox) -> None:
        if api.round == 1:
            self.rotor.announce(api)
            return
        if api.round == 2:
            self.tracker.observe(inbox)
            self.membership = self.tracker.freeze()
            self.n_v = len(self.membership)
            self.rotor.echo_inits(api, inbox)
            return

        inbox = inbox.restricted_to(self.membership)
        self.rotor.absorb(inbox)
        phase_round = (api.round - INIT_ROUNDS - 1) % PHASE_LENGTH + 1
        if phase_round == 1:
            self.phase += 1
            api.broadcast(KIND_INPUT, self.x)
            self._last_sent[KIND_INPUT] = self.x
        elif phase_round == 2:
            self._phase_live = inbox.distinct_senders(KIND_INPUT)
            value, count = self._best(inbox, KIND_INPUT)
            self._last_sent.pop(KIND_SUPPORT, None)
            if at_least_two_thirds(count, self.n_v):
                api.broadcast(KIND_SUPPORT, value)
                self._last_sent[KIND_SUPPORT] = value
        elif phase_round == 3:
            self._stashed_support = self._best(inbox, KIND_SUPPORT)
            value, count = self._stashed_support
            if at_least_third(count, self.n_v):
                self.x = value
        elif phase_round == 4:
            step = self.rotor.step(api, self.n_v, self.x, allow_repeat=True)
            self._coordinator = step.coordinator
            if step.repeat:
                self._rotor_done = True
        else:  # phase_round == 5
            opinion = self.rotor.opinion_from(inbox, self._coordinator)
            _value, count = self._stashed_support
            if not at_least_two_thirds(count, self.n_v):
                if opinion is not None:
                    self.x = opinion
                    api.emit("adopt-king", phase=self.phase, value=opinion)
            if self._rotor_done:
                self.decide(api, self.x)

    def _best(self, inbox: Inbox, kind: str) -> tuple[object, int]:
        """Most-supported payload after the substitution rule.

        As in Algorithm 3, fills only apply to members that look
        terminated: silent this round and absent from this phase's
        (unconditional) input broadcast.  Counting rides the shared
        quorum-tally plane with the own-phantom fill applied as a
        per-node delta (see ``EarlyConsensus._best``).
        """
        best = inbox.best_payload(kind)
        if kind not in self._last_sent:
            return best
        membership = self.membership
        silent = inbox.derive(
            ("consensus-silent", membership),
            lambda idx: membership - idx.all_senders,
        )
        if kind != KIND_INPUT and silent:
            silent = silent - self._phase_live
        return best_with_extra(
            inbox.payload_sender_sets(kind),
            best,
            self._last_sent[kind],
            len(silent),
        )
