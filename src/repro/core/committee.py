"""Deterministic committee sampling over the id-only contact set.

The sampled variants (:mod:`repro.core.implicit_agreement`) let a small
committee run full consensus while everyone else merely *learns* the
outcome, cutting the all-broadcast O(n²) round traffic down to
O(n + c²) for a committee of size ``c = Θ(polylog n)`` (Kumar & Molla,
"Sublinear Message Bounds of Authenticated Implicit Byzantine
Agreement"; Augustine et al., "Scalable and Secure Computation Among
Strangers").

The sampler must satisfy three constraints at once:

* **Deterministic and local** — every node computes the committee from
  the same frozen membership view and the same seed, with no extra
  communication.  We hash-rank the ids with a fixed 64-bit mixer keyed
  through :func:`repro.sim.rng.make_rng` (never the process-salted
  builtin ``hash``) and take the ``c`` lowest ranks, so any two nodes
  that agree on the view agree on the committee.
* **Adversary-oblivious** — ids are assigned before the seed is drawn,
  so the rank of each id is an independent uniform draw as far as the
  adversary is concerned; the committee is a uniform ``c``-subset.
* **Safe under n > 3f** — with Byzantine nodes a < n/3 fraction of the
  population, the expected Byzantine fraction of a uniform committee is
  < 1/3.  A Chernoff bound puts the probability that a committee of
  size ``c`` exceeds a (1/3 + δ) Byzantine fraction at ``exp(-2δ²c)``;
  sizing ``c = Θ(log² n)`` drives that probability below any inverse
  polynomial in ``n``.  :func:`committee_size` applies a ×2 safety
  factor and a floor of 16 on top.
"""

from __future__ import annotations

from typing import Iterable

from repro.sim.rng import make_rng
from repro.types import NodeId

#: Salt for the sampler's rng stream, disjoint from every other
#: ``make_rng`` salt in the tree ("C0117EE" ≈ COMMITTEE).
COMMITTEE_SALT = 0xC0117EE

#: Smallest committee we ever sample; below this the Chernoff tail is
#: meaningless and the committee is most of the population anyway.
MIN_COMMITTEE = 16

_MASK64 = (1 << 64) - 1


def ceil_log2(count: int) -> int:
    """Smallest k with ``2**k >= count`` (0 for counts <= 1)."""
    if count <= 1:
        return 0
    return (count - 1).bit_length()


def committee_size(
    n_v: int, *, factor: int = 2, floor: int = MIN_COMMITTEE
) -> int:
    """Committee size for an observed view of ``n_v``: ``factor·⌈log₂n_v⌉²``.

    Θ(log² n) keeps the committee polylogarithmic while the Chernoff
    tail ``exp(-2δ²c)`` stays below any inverse polynomial of ``n_v``
    (with δ the slack between the < 1/3 expected Byzantine fraction and
    the 1/3 quorum bound the committee's own consensus run needs).
    Capped at ``n_v`` — tiny views degenerate to a full committee,
    which is exactly the classical protocol.
    """
    if n_v <= 0:
        return 0
    return min(n_v, max(floor, factor * ceil_log2(n_v) ** 2))


def _mix(key: int, value: int) -> int:
    """splitmix64-style 64-bit finalizer over ``key ^ value``.

    Pure integer arithmetic: deterministic across processes and
    platforms, unlike the builtin ``hash`` (process-salted, lint R3).
    """
    z = (key ^ (value & _MASK64)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def rank_key(seed: int | None) -> int:
    """The 64-bit hash key all ranks for ``seed`` are mixed with."""
    return make_rng(seed, salt=COMMITTEE_SALT).getrandbits(64)


def sample_committee(
    view: Iterable[NodeId],
    *,
    seed: int | None = 0,
    size: int | None = None,
) -> frozenset[NodeId]:
    """The committee for the observed ``view`` under ``seed``: lowest
    hash ranks.

    Every node holding the same membership view and seed computes the
    identical committee with no communication.  Ranking (rather than
    per-id coin flips) fixes the committee size exactly, and perturbing
    the view by one id changes the committee by at most one member.
    Ties on the mixed rank (vanishingly rare) break by id so the result
    is a pure function of (view, seed).
    """
    pool = sorted(set(view))
    c = committee_size(len(pool)) if size is None else min(size, len(pool))
    if c <= 0:
        return frozenset()
    if c >= len(pool):
        return frozenset(pool)
    key = rank_key(seed)
    ranked = sorted(pool, key=lambda nid: (_mix(key, nid), nid))
    return frozenset(ranked[:c])
