"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A scenario or protocol was configured inconsistently.

    Examples: duplicate node ids, a direct send to a node that never
    contacted the sender, or an adversary count violating an explicit
    resiliency request.
    """


class ProtocolViolation(ReproError):
    """A *correct* protocol implementation broke a model rule.

    The simulator enforces the id-only model's rules for correct nodes
    (no sender forgery, direct sends only to prior contacts).  Byzantine
    strategies are exempt where the model allows it.
    """


class SimulationError(ReproError):
    """The simulation itself failed (e.g. exceeded its round budget)."""


class RoundLimitExceeded(SimulationError):
    """A protocol failed to terminate within the configured round budget."""

    def __init__(self, limit: int, still_running: list[int]):
        self.limit = limit
        self.still_running = list(still_running)
        super().__init__(
            f"round limit {limit} exceeded; nodes still running: "
            f"{sorted(self.still_running)}"
        )


class PropertyViolation(ReproError):
    """A checked correctness property (agreement, validity, ...) failed.

    Raised by :mod:`repro.analysis.checkers` when a run violates one of the
    paper's guarantees.  Benchmarks and tests rely on this never firing for
    ``n > 3f`` and on being able to provoke it for ``n <= 3f``.
    """
