"""The committed baseline of grandfathered findings.

A baseline entry acknowledges a pre-existing finding without silencing
the rule for new code.  Entries are keyed by a *fingerprint* of
``(rule code, normalized path, stripped source line)`` — deliberately
not the line number, so unrelated edits that shift a file do not
invalidate the baseline, while any change to the flagged line itself
resurfaces the finding for re-review.

The file (``lint-baseline.json`` at the repo root by default) is
human-readable JSON; regenerate it with
``python -m repro.lint --write-baseline <paths>``.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.lint.diagnostics import Diagnostic

#: Format marker so future layouts can migrate old files.
BASELINE_VERSION = 1


def normalize_path(path: str) -> str:
    """Invocation-independent form of *path* for fingerprinting.

    Anchors at the last ``repro`` (else ``benchmarks``, else ``src``)
    segment so linting ``src``, ``src/repro``, ``benchmarks``, or an
    absolute path all fingerprint a file identically; always
    forward-slashed for OS independence.
    """
    parts = path.replace("\\", "/").split("/")
    for anchor in ("repro", "benchmarks", "src"):
        if anchor in parts:
            index = len(parts) - 1 - parts[::-1].index(anchor)
            return "/".join(parts[index:])
    return "/".join(parts)


def fingerprint(diagnostic: Diagnostic) -> str:
    """Stable identity of a finding across line-number churn."""
    basis = "\n".join(
        (
            diagnostic.code,
            normalize_path(diagnostic.path),
            diagnostic.source_line.strip(),
        )
    )
    return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]


class Baseline:
    """Grandfathered findings, with per-fingerprint multiplicity.

    Two identical source lines in one file share a fingerprint; the
    stored count lets the baseline absorb exactly that many findings
    and no more.
    """

    def __init__(self, counts: dict[str, int] | None = None):
        self._counts: Counter[str] = Counter(counts or {})
        #: Human-readable context per fingerprint (kept on write).
        self.entries: dict[str, dict[str, object]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("entries", {})
        baseline = cls(
            {fp: int(entry.get("count", 1)) for fp, entry in entries.items()}
        )
        baseline.entries = entries
        return baseline

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        """Build the baseline that would absorb exactly *diagnostics*."""
        baseline = cls()
        for diag in sorted(diagnostics, key=Diagnostic.sort_key):
            fp = fingerprint(diag)
            baseline._counts[fp] += 1
            entry = baseline.entries.setdefault(
                fp,
                {
                    "rule": diag.code,
                    "path": normalize_path(diag.path),
                    "line": diag.source_line.strip(),
                    "count": 0,
                },
            )
            entry["count"] = baseline._counts[fp]
        return baseline

    def write(self, path: Path) -> None:
        # Entries are ordered by (path, rule, source line) rather than
        # by fingerprint hash, so a regenerated baseline diffs cleanly
        # against the committed one: neighbouring files stay neighbours.
        ordered = dict(
            sorted(
                self.entries.items(),
                key=lambda item: (
                    str(item[1].get("path", "")),
                    str(item[1].get("rule", "")),
                    str(item[1].get("line", "")),
                    item[0],
                ),
            )
        )
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered repro.lint findings. Do not add entries for "
                "new code; fix or inline-suppress with justification. "
                "Regenerate with: python -m repro.lint --write-baseline src"
            ),
            "entries": ordered,
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------------
    def absorb(self, diagnostic: Diagnostic) -> bool:
        """Consume one allowance for this finding if any remains."""
        fp = fingerprint(diagnostic)
        if self._counts.get(fp, 0) > 0:
            self._counts[fp] -= 1
            return True
        return False

    def __len__(self) -> int:
        return sum(self._counts.values())
