"""The rule engine: file discovery, layer mapping, rule dispatch.

A :class:`Rule` sees one parsed file at a time through a
:class:`FileContext` and yields :class:`Diagnostic` records.  Which
rules run on which file is decided by the file's *layer* — its path
relative to the ``repro`` package root (so ``src/repro/core/rotor.py``
has layer ``("core", "rotor.py")``).  Trees that merely mimic that
shape (the test suite's temp fixtures) are mapped the same way, which
is what lets the negative tests seed violations outside the real tree.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.baseline import Baseline
from repro.lint.diagnostics import Diagnostic, Summary
from repro.lint.suppressions import (
    Suppression,
    is_suppressed,
    parse_suppressions,
)

#: Package sub-directories the scoping logic recognizes.
KNOWN_LAYERS = (
    "core",
    "baselines",
    "sim",
    "asyncsim",
    "net",
    "adversary",
    "analysis",
    "obs",
    "lint",
    "scenario",
)


def layer_of(path: Path) -> tuple[str, ...]:
    """Path parts relative to the innermost ``repro`` package root.

    Falls back to the suffix starting at the first recognized layer
    directory (``core``, ``sim``, ...) when no ``repro`` segment exists,
    and to the bare filename otherwise — a standalone file has no layer
    and only layer-agnostic rules apply to it.
    """
    parts = path.parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return tuple(parts[index + 1:])
    for index, part in enumerate(parts[:-1]):
        if part in KNOWN_LAYERS:
            return tuple(parts[index:])
    return (parts[-1],) if parts else ()


@dataclass(slots=True)
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: Path
    display_path: str
    layer: tuple[str, ...]
    source: str
    lines: list[str]
    tree: ast.Module
    suppressions: list[Suppression]

    def in_layer(self, *names: str) -> bool:
        """True when the file lives under any of the named layers."""
        return bool(self.layer) and self.layer[0] in names

    def is_module(self, *tails: str) -> bool:
        """True when the layer path matches one of ``pkg/mod.py`` tails."""
        joined = "/".join(self.layer)
        return joined in tails

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def diagnostic(
        self,
        node: ast.AST,
        code: str,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Diagnostic(
            path=self.display_path,
            line=lineno,
            col=col + 1,
            code=code,
            message=message,
            source_line=self.source_line(lineno).strip(),
            hint=hint,
        )


class Rule(ABC):
    """One enforced invariant, with a stable code and a paper anchor."""

    #: Stable identifier, e.g. ``"R102"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"global-membership-surface"``.
    name: str = ""
    #: One-line statement of the invariant.
    description: str = ""
    #: Code of a program rule that subsumes this one.  When that rule is
    #: active in the same run, this file rule is skipped — the program
    #: pass reports the same hazard with real escape reasoning instead
    #: of a syntactic ban.
    superseded_by: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on *ctx* at all (default: everywhere)."""
        return True

    @abstractmethod
    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        """Yield findings for one file."""


class ProgramRule(ABC):
    """An invariant checked against the whole-program model (phase two).

    Program rules see every file at once through a
    :class:`repro.lint.program.ProgramModel` and may follow flows
    across modules; their findings are still attributed to one file and
    filtered through that file's inline suppressions and the baseline,
    exactly like file-rule findings.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    @abstractmethod
    def check_program(self, model) -> Iterable[Diagnostic]:
        """Yield findings for the whole program."""


@dataclass(slots=True)
class LintResult:
    """Outcome of one run: active findings plus bookkeeping."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    summary: Summary = field(default_factory=Summary)

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def discover_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def load_context(path: Path) -> FileContext | Diagnostic:
    """Parse one file; a syntax failure is itself a finding (E001)."""
    display = str(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        return Diagnostic(
            path=display,
            line=1,
            col=1,
            code="E001",
            message=f"cannot read file: {exc}",
        )
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return Diagnostic(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1,
            code="E001",
            message=f"syntax error: {exc.msg}",
        )
    return FileContext(
        path=path,
        display_path=display,
        layer=layer_of(path),
        source=source,
        lines=source.splitlines(),
        tree=tree,
        suppressions=parse_suppressions(source),
    )


def _record(
    result: LintResult,
    ctx: FileContext,
    baseline: Baseline,
    diag: Diagnostic,
) -> None:
    """Route one finding through suppressions and the baseline."""
    if is_suppressed(ctx.suppressions, diag.code, diag.line):
        result.summary.suppressed += 1
    elif baseline.absorb(diag):
        result.summary.baselined += 1
    else:
        result.diagnostics.append(diag)
        result.summary.findings += 1
        result.summary.by_code[diag.code] = (
            result.summary.by_code.get(diag.code, 0) + 1
        )


def run_paths(
    paths: Iterable[Path],
    rules: Iterable[Rule],
    baseline: Baseline | None = None,
    program_rules: Iterable[ProgramRule] = (),
    cache=None,
) -> LintResult:
    """Lint *paths*, filtering suppressed/baselined findings.

    Phase one parses every file and runs the per-file *rules*; phase
    two links all parsed files into one program model and runs the
    *program_rules* against it.  A file rule whose ``superseded_by``
    names an active program rule is skipped — its program-level
    replacement owns the invariant for this run.
    """
    rules = list(rules)
    program_rules = list(program_rules)
    program_codes = {rule.code for rule in program_rules}
    active_rules = [
        rule
        for rule in rules
        if rule.superseded_by not in program_codes or not rule.superseded_by
    ]
    baseline = baseline or Baseline()
    result = LintResult()
    contexts: list[FileContext] = []
    for path in discover_files(paths):
        result.summary.files += 1
        ctx = load_context(path)
        if isinstance(ctx, Diagnostic):
            result.diagnostics.append(ctx)
            result.summary.findings += 1
            continue
        contexts.append(ctx)
        for sup in ctx.suppressions:
            # Blanket opt-outs must say why, or they get reported
            # themselves — suppressions stay visible in review.
            if sup.file_scoped and not sup.reason:
                diag = Diagnostic(
                    path=ctx.display_path,
                    line=sup.line,
                    col=1,
                    code="R001",
                    message=(
                        "file-scoped suppression without a justification "
                        "('-- reason')"
                    ),
                    source_line=ctx.source_line(sup.line).strip(),
                )
                if not baseline.absorb(diag):
                    result.diagnostics.append(diag)
                    result.summary.findings += 1
                    result.summary.by_code["R001"] = (
                        result.summary.by_code.get("R001", 0) + 1
                    )
        for rule in active_rules:
            if not rule.applies_to(ctx):
                continue
            for diag in rule.check(ctx):
                _record(result, ctx, baseline, diag)
    if program_rules and contexts:
        from repro.lint.program import build_program

        model = build_program(contexts, cache=cache)
        by_display = {ctx.display_path: ctx for ctx in contexts}
        for rule in program_rules:
            for diag in rule.check_program(model):
                ctx = by_display.get(diag.path)
                if ctx is None:
                    result.diagnostics.append(diag)
                    result.summary.findings += 1
                    result.summary.by_code[diag.code] = (
                        result.summary.by_code.get(diag.code, 0) + 1
                    )
                else:
                    _record(result, ctx, baseline, diag)
    result.diagnostics.sort(key=Diagnostic.sort_key)
    return result
