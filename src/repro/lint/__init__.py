"""``repro.lint`` — static enforcement of the paper's model invariants.

The reproduction's correctness claims rest on discipline that Python's
type system cannot see: correct-node code must never consult global
knowledge of ``n`` or ``f`` (only the locally observed ``n_v``), quorum
conditions must use exact integer arithmetic, every stochastic choice
must flow through the seeded RNG, and protocols must speak through
:class:`~repro.sim.node.NodeApi` rather than stamping wire messages
themselves.  This package makes those invariants machine-checked
properties of the source tree.

Usage::

    python -m repro.lint src                 # lint the tree
    python -m repro.lint --format=json src   # machine-readable output
    python -m repro.lint --list-rules        # what is enforced

Findings can be silenced in two ways (see ``docs/lint.md``):

* an inline ``repro-lint: disable=<code> -- justification`` comment on
  the flagged line;
* an entry in the committed baseline file (``lint-baseline.json``) for
  grandfathered findings, regenerated with ``--write-baseline``.

The rule families:

* **R1xx — id-only model** (``repro.core``/``repro.baselines``): no
  global-membership surfaces outside ``ViewTracker``/``NodeApi``.
* **R2xx — integer quorum math**: thresholds compare via
  ``3 * count >= n_v``, never float division or fraction literals.
* **R3xx — determinism**: randomness through ``repro.sim.rng``, no wall
  clocks outside ``repro.net``/``repro.analysis``, no order-dependent
  iteration over unordered collections in protocol code.
* **R4xx — protocol hygiene**: protocols never touch ``Outbox`` or
  stamp sender ids; the network does.
* **R5xx — event-plane discipline**: protocols emit semantic events
  only through ``NodeApi.emit``; the observability plumbing
  (``EventBus``, ``Trace``, ``Metrics``, sinks) belongs to the
  runtimes (``repro.obs``, docs/observability.md).
* **R6xx — whole-program taint** (phase two): the interprocedural
  versions of the invariants above — global-knowledge taint into
  ``core/`` (R601), float taint into quorum comparisons (R602), and
  unordered-iteration escape analysis (R603, superseding R304's
  syntactic ban).
* **R7xx — async runtime**: stale check-then-act on engine-shared
  state across ``await`` points (R701).
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.diagnostics import Diagnostic, format_json, format_text
from repro.lint.engine import (
    FileContext,
    LintResult,
    ProgramRule,
    Rule,
    run_paths,
)
from repro.lint.rules import all_program_rules, all_rules, rules_by_code
from repro.lint.sarif import format_sarif

__all__ = [
    "Baseline",
    "Diagnostic",
    "FileContext",
    "LintResult",
    "ProgramRule",
    "Rule",
    "all_program_rules",
    "all_rules",
    "fingerprint",
    "format_json",
    "format_sarif",
    "format_text",
    "rules_by_code",
    "run_paths",
]
