"""Inline suppression directives.

Two forms, both carrying an optional justification after ``--``:

* line-scoped — silences matching findings on the physical line the
  comment sits on, or — when the comment is a line of its own — on the
  line directly below it::

      self._rng = random.Random(seed)  # repro-lint: disable=R301 -- seeded here

      # repro-lint: disable=R304 -- commutative set ops, order-free
      for sender in tagged.senders(KIND_NOINPUT):
          ...

* file-scoped — a comment line anywhere in the file (conventionally at
  the top) silences matching findings in the whole file::

      # repro-lint: disable-file=R302 -- wall-clock layer by design

``disable=all`` (or ``*``) matches every rule; otherwise the value is a
comma-separated list of rule codes.  Unjustified file-scoped directives
are themselves reported (code ``R001``) so blanket opt-outs stay
visible in review.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9*,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed directive."""

    line: int  # 1-based physical line of the comment
    codes: frozenset[str]  # upper-cased rule codes; {"ALL"} for wildcards
    file_scoped: bool
    reason: str
    #: The comment stands alone on its line, so it guards the next line.
    own_line: bool = False

    def matches(self, code: str) -> bool:
        return "ALL" in self.codes or code.upper() in self.codes

    def covers_line(self, line: int) -> bool:
        if self.file_scoped:
            return True
        if self.own_line:
            return line == self.line + 1
        return line == self.line


def parse_suppressions(source: str) -> list[Suppression]:
    """Extract every directive from *source* (line comments only)."""
    found: list[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        raw = match.group("codes").replace("*", "all")
        codes = frozenset(
            part.strip().upper()
            for part in raw.split(",")
            if part.strip()
        )
        found.append(
            Suppression(
                line=lineno,
                codes=codes,
                file_scoped=match.group("scope") == "disable-file",
                reason=(match.group("reason") or "").strip(),
                own_line=text.lstrip().startswith("#"),
            )
        )
    return found


def is_suppressed(
    suppressions: list[Suppression], code: str, line: int
) -> bool:
    """True when a directive silences *code* at physical *line*."""
    for sup in suppressions:
        if sup.matches(code) and sup.covers_line(line):
            return True
    return False
