"""``python -m repro.lint`` — command-line front end.

Exit codes: 0 clean (or fully baselined/suppressed), 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.diagnostics import format_json, format_text
from repro.lint.engine import run_paths
from repro.lint.rules import all_program_rules, all_rules
from repro.lint.sarif import format_sarif

DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Statically enforce the paper's model invariants: the "
            "id-only model (R1xx), integer quorum math (R2xx), "
            "simulator determinism (R3xx), protocol hygiene (R4xx), "
            "event-plane discipline (R5xx), and their whole-program "
            "dataflow versions (R6xx taint, R7xx async)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: ./{DEFAULT_BASELINE} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file to absorb all current findings",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help=(
            "skip the whole-program passes (R6xx/R7xx); per-file rules "
            "only, including the R304 ban they normally supersede"
        ),
    )
    parser.add_argument(
        "--program-cache",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "persist per-module dataflow facts keyed by content hash, "
            "so unchanged files skip extraction on the next run"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its invariant and exit",
    )
    return parser


def _selected_rules(select: str, with_program: bool):
    """Split a ``--select`` list into (file rules, program rules)."""
    rules = all_rules()
    program = all_program_rules() if with_program else []
    if not select:
        return rules, program
    wanted = {code.strip().upper() for code in select.split(",") if code}
    chosen = [rule for rule in rules if rule.code in wanted]
    chosen_program = [rule for rule in program if rule.code in wanted]
    known = {rule.code for rule in chosen} | {
        rule.code for rule in chosen_program
    }
    if not with_program:
        known |= {
            rule.code for rule in all_program_rules()
        }  # selecting R6xx with --no-program is not an unknown code
    unknown = wanted - known
    if unknown:
        raise SystemExit(
            f"unknown rule code(s): {', '.join(sorted(unknown))}"
        )
    return chosen, chosen_program


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in [*all_rules(), *all_program_rules()]:
            print(f"{rule.code}  {rule.name}")
            print(f"      {rule.description}")
        return 0

    paths = args.paths or [Path("src")]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    baseline_path = args.baseline or Path(DEFAULT_BASELINE)
    rules, program_rules = _selected_rules(
        args.select, with_program=not args.no_program
    )
    cache = None
    if args.program_cache is not None and program_rules:
        from repro.lint.program.cache import ProgramCache

        cache = ProgramCache(args.program_cache)

    if args.write_baseline:
        # Collect *everything* (no baseline filtering), then absorb it.
        raw = run_paths(
            paths,
            rules,
            baseline=Baseline(),
            program_rules=program_rules,
            cache=cache,
        )
        Baseline.from_diagnostics(raw.diagnostics).write(baseline_path)
        print(
            f"wrote {len(raw.diagnostics)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = (
        Baseline()
        if args.no_baseline
        else Baseline.load(baseline_path)
    )
    result = run_paths(
        paths,
        rules,
        baseline=baseline,
        program_rules=program_rules,
        cache=cache,
    )
    if args.format == "sarif":
        print(
            format_sarif(
                result.diagnostics,
                result.summary,
                rules=[*rules, *program_rules],
            )
        )
    else:
        formatter = format_json if args.format == "json" else format_text
        print(formatter(result.diagnostics, result.summary))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
