"""Content-hash cache for per-module dataflow facts.

Facts are purely local to a module (term graphs with *unresolved* call
references), so they are invalidated by that module's content hash
alone — the interprocedural fixpoint is recomputed every run from
whatever mix of cached and fresh facts is available.  That keeps the
cache honest: editing one file re-extracts one file, and cross-module
effects still propagate because resolution happens after loading.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.lint.program.dataflow import FunctionFacts

_FORMAT_VERSION = 1


def content_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class ProgramCache:
    """Maps ``path -> (content hash, serialized function facts)``."""

    def __init__(self, path: Path | None = None):
        self.path = path
        self._entries: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if data.get("version") == _FORMAT_VERSION:
                self._entries = data.get("modules", {})

    def get(self, path_key: str, digest: str) -> list[FunctionFacts] | None:
        entry = self._entries.get(path_key)
        if entry is None or entry.get("hash") != digest:
            self.misses += 1
            return None
        self.hits += 1
        return [FunctionFacts.from_json(item) for item in entry["facts"]]

    def put(
        self, path_key: str, digest: str, facts: list[FunctionFacts]
    ) -> None:
        self._entries[path_key] = {
            "hash": digest,
            "facts": [item.to_json() for item in facts],
        }

    def save(self) -> None:
        if self.path is None:
            return
        payload = {"version": _FORMAT_VERSION, "modules": self._entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
