"""Per-function dataflow facts and the interprocedural taint fixpoint.

The extractor walks each function once and records *facts* — a small,
serializable term graph instead of the AST:

* which **terms** flow to the return value, where a term is
  ``("param", i)`` (derived from parameter *i*), ``("src", spec)`` (an
  intrinsic source of one taint spec), or ``("call", k)`` (the result of
  the *k*-th call in the function);
* every **call site**, with the callee reference as written and the
  terms flowing into each argument;
* every **comparison** (the R602 sink), with the terms of its operands
  and whether an operand is count-like;
* every **loop over a possibly-unordered iterable**, with the
  order-sensitive *escapes* of the loop variable found in its body;
* which parameters locally reach an **order-sensitive sink**
  (``.append``, ``api.send``, ...).

Facts are purely local — no cross-module knowledge — which is what
makes them cacheable by file content hash.  The
:class:`TaintAnalysis` fixpoint then combines them under one
:class:`TaintSpec` into per-function summaries (does the return carry
taint? which parameters propagate? which parameters reach a sink?),
iterating until stable, so taint crosses any chain of calls, aliases,
and containers the extractor recorded.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.lint.program.callgraph import Ref, Resolver, ref_name
from repro.lint.program.symbols import (
    FunctionInfo,
    ModuleSymbols,
    _annotation_name,
)

Term = tuple
TermSet = frozenset

EMPTY: TermSet = frozenset()

# ---------------------------------------------------------------------------
# Source vocabularies (shared with the syntactic R1xx/R2xx rules).
# ---------------------------------------------------------------------------

#: Attribute reads that expose the global participant set.
MEMBERSHIP_ATTRS = frozenset(
    {
        "nodes",
        "node_ids",
        "alive_ids",
        "correct_ids",
        "byzantine_ids",
        "all_nodes",
        "membership",
    }
)

#: ``.n`` / ``.f`` on these receiver names is global knowledge.
POPULATION_BASES = frozenset(
    {
        "config",
        "cfg",
        "settings",
        "params",
        "options",
        "opts",
        "network",
        "net",
        "engine",
        "sim",
        "cluster",
        "runner",
        "world",
    }
)

#: Written names whose *call* yields an unordered collection.
UNORDERED_CALL_NAMES = frozenset(
    {"set", "frozenset", "senders", "distinct_senders", "sender_set"}
)

#: Iterables that are syntactically ordered — loops over them are never
#: recorded (also the sanctioned wrappers: sorted imposes a total order).
ORDERED_ITER_NAMES = frozenset(
    {"sorted", "range", "enumerate", "list", "tuple", "zip", "reversed"}
)

#: Methods that install into an *ordered* container (order-sensitive).
APPEND_NAMES = frozenset({"append", "extend", "insert", "appendleft"})

#: Calls that emit a value out of the node (message payloads, decisions).
EMIT_NAMES = frozenset({"send", "broadcast", "emit", "decide", "publish"})

#: Consumers for which generator order cannot matter.
ORDER_SAFE_CONSUMERS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "sum",
        "any",
        "all",
        "len",
        "Counter",
        "max",
        "min",
        "dict",
    }
)

#: Consumers that materialize generator order into a sequence.
ORDER_SINK_CONSUMERS = frozenset({"list", "tuple", "join"})

#: Substrings of a name that mark a comparison operand as count-like.
_COUNT_MARKERS = (
    "count",
    "n_v",
    "tally",
    "vote",
    "quorum",
    "threshold",
    "heard",
    "echo",
    "ack",
)

SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet"})


def _is_countlike_name(name: str) -> bool:
    lowered = name.lower()
    return any(marker in lowered for marker in _COUNT_MARKERS)


def _expr_is_countlike(node: ast.expr) -> bool:
    """Does this comparison operand smell like an integer tally?"""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
        ):
            return True
        if isinstance(sub, ast.Name) and _is_countlike_name(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _is_countlike_name(sub.attr):
            return True
    return False


# ---------------------------------------------------------------------------
# Facts
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CallFact:
    """One call site, with the terms flowing into each argument."""

    lineno: int
    col: int
    ref: Ref
    args: tuple[TermSet, ...]
    kwargs: tuple[tuple[str, TermSet], ...]
    has_key_kwarg: bool


@dataclass(slots=True)
class CompareFact:
    """One comparison — the float-taint sink."""

    lineno: int
    col: int
    terms: TermSet
    countlike: bool


@dataclass(slots=True)
class EscapeFact:
    """One order-sensitive use of a loop-derived value."""

    lineno: int
    col: int
    kind: str  # append | emit | return | yield | break | call | listcomp
    detail: str
    call_index: int = -1  # for kind == "call"
    derived_args: tuple[int, ...] = ()  # positions carrying loop taint
    receiver: str = ""  # for kind == "append": the container name


@dataclass(slots=True)
class LoopFact:
    """One loop whose iterable may be unordered."""

    lineno: int
    col: int
    intrinsic_unordered: bool
    source_desc: str
    iter_terms: TermSet
    escapes: tuple[EscapeFact, ...]


@dataclass(slots=True)
class FunctionFacts:
    """Everything the fixpoint needs to know about one function."""

    qualname: str
    module: str
    layer: tuple[str, ...]
    local_name: str
    class_name: str
    lineno: int
    params: tuple[str, ...]
    param_annotations: tuple[str, ...]
    return_annotation: str
    is_async: bool
    ret_terms: TermSet = EMPTY
    calls: list[CallFact] = field(default_factory=list)
    compares: list[CompareFact] = field(default_factory=list)
    loops: list[LoopFact] = field(default_factory=list)
    local_order_sinks: frozenset[int] = frozenset()

    # -- cache serialization -------------------------------------------
    def to_json(self) -> dict:
        return {
            "q": self.qualname,
            "m": self.module,
            "ly": list(self.layer),
            "ln": self.local_name,
            "cn": self.class_name,
            "li": self.lineno,
            "p": list(self.params),
            "pa": list(self.param_annotations),
            "ra": self.return_annotation,
            "as": self.is_async,
            "ret": _terms_json(self.ret_terms),
            "calls": [
                {
                    "l": c.lineno,
                    "c": c.col,
                    "ref": list(c.ref),
                    "a": [_terms_json(a) for a in c.args],
                    "kw": [[n, _terms_json(t)] for n, t in c.kwargs],
                    "k": c.has_key_kwarg,
                }
                for c in self.calls
            ],
            "cmp": [
                {"l": c.lineno, "c": c.col, "t": _terms_json(c.terms),
                 "n": c.countlike}
                for c in self.compares
            ],
            "loops": [
                {
                    "l": lp.lineno,
                    "c": lp.col,
                    "u": lp.intrinsic_unordered,
                    "d": lp.source_desc,
                    "t": _terms_json(lp.iter_terms),
                    "e": [
                        {
                            "l": e.lineno,
                            "c": e.col,
                            "k": e.kind,
                            "d": e.detail,
                            "i": e.call_index,
                            "a": list(e.derived_args),
                            "r": e.receiver,
                        }
                        for e in lp.escapes
                    ],
                }
                for lp in self.loops
            ],
            "sinks": sorted(self.local_order_sinks),
        }

    @classmethod
    def from_json(cls, data: dict) -> "FunctionFacts":
        facts = cls(
            qualname=data["q"],
            module=data["m"],
            layer=tuple(data["ly"]),
            local_name=data["ln"],
            class_name=data["cn"],
            lineno=data["li"],
            params=tuple(data["p"]),
            param_annotations=tuple(data["pa"]),
            return_annotation=data["ra"],
            is_async=data["as"],
            ret_terms=_terms_load(data["ret"]),
        )
        facts.calls = [
            CallFact(
                lineno=c["l"],
                col=c["c"],
                ref=tuple(c["ref"]),
                args=tuple(_terms_load(a) for a in c["a"]),
                kwargs=tuple((n, _terms_load(t)) for n, t in c["kw"]),
                has_key_kwarg=c["k"],
            )
            for c in data["calls"]
        ]
        facts.compares = [
            CompareFact(lineno=c["l"], col=c["c"], terms=_terms_load(c["t"]),
                        countlike=c["n"])
            for c in data["cmp"]
        ]
        facts.loops = [
            LoopFact(
                lineno=lp["l"],
                col=lp["c"],
                intrinsic_unordered=lp["u"],
                source_desc=lp["d"],
                iter_terms=_terms_load(lp["t"]),
                escapes=tuple(
                    EscapeFact(
                        lineno=e["l"],
                        col=e["c"],
                        kind=e["k"],
                        detail=e["d"],
                        call_index=e["i"],
                        derived_args=tuple(e["a"]),
                        receiver=e["r"],
                    )
                    for e in lp["e"]
                ),
            )
            for lp in data["loops"]
        ]
        facts.local_order_sinks = frozenset(data["sinks"])
        return facts


def _terms_json(terms: TermSet) -> list:
    return sorted([list(t) for t in terms])


def _terms_load(data: list) -> TermSet:
    return frozenset(tuple(t) for t in data)


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


class FactsExtractor:
    """One-pass, flow-approximate fact extraction for one function."""

    def __init__(self, info: FunctionInfo, symbols: ModuleSymbols):
        self._info = info
        self._symbols = symbols
        self.facts = FunctionFacts(
            qualname=info.qualname,
            module=symbols.name,
            layer=symbols.layer,
            local_name=info.local_name,
            class_name=info.class_name,
            lineno=info.node.lineno,
            params=info.params,
            param_annotations=info.param_annotations,
            return_annotation=info.return_annotation,
            is_async=info.is_async,
        )
        self._env: dict[str, TermSet] = {
            name: frozenset({("param", i)})
            for i, name in enumerate(info.params)
        }
        #: Locals with a known (written) class name, for method resolution.
        self._types: dict[str, str] = {
            name: ann
            for name, ann in zip(info.params, info.param_annotations)
            if ann[:1].isupper()
        }
        #: Container names whose contents get sorted later in the body —
        #: their append-escapes are sanctioned.
        self._sorted_names: set[str] = set()
        self._seed = True  # syntactic sources enabled (off inside compares)

    # -- entry ----------------------------------------------------------
    def run(self) -> FunctionFacts:
        body = self._info.node.body
        self._scan_sorted_names(body)
        self._exec_block(body)
        self._facts_param_sinks()
        self._filter_sorted_escapes()
        return self.facts

    def _filter_sorted_escapes(self) -> None:
        """Drop append-escapes into containers that get sorted later."""
        kept: list[LoopFact] = []
        for loop in self.facts.loops:
            escapes = tuple(
                escape
                for escape in loop.escapes
                if not (
                    escape.kind == "append"
                    and escape.receiver
                    and escape.receiver in self._sorted_names
                )
            )
            if escapes:
                kept.append(
                    LoopFact(
                        lineno=loop.lineno,
                        col=loop.col,
                        intrinsic_unordered=loop.intrinsic_unordered,
                        source_desc=loop.source_desc,
                        iter_terms=loop.iter_terms,
                        escapes=escapes,
                    )
                )
        self.facts.loops = kept

    def _scan_sorted_names(self, body: list[ast.stmt]) -> None:
        """Names that are later totally ordered (``sorted(x)``/``x.sort()``)."""
        for node in ast.walk(ast.Module(body=body, type_ignores=[])):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id == "sorted"
                and node.args
                and isinstance(node.args[0], ast.Name)
            ):
                self._sorted_names.add(node.args[0].id)
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "sort"
                and isinstance(func.value, ast.Name)
            ):
                self._sorted_names.add(func.value.id)

    # -- statements -----------------------------------------------------
    def _exec_block(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            terms = self._eval(stmt.value)
            cls = self._constructed_class(stmt.value)
            for target in stmt.targets:
                self._bind(target, terms, cls)
        elif isinstance(stmt, ast.AnnAssign):
            terms = self._eval(stmt.value) if stmt.value else EMPTY
            ann = _annotation_name(stmt.annotation)
            if isinstance(stmt.target, ast.Name):
                if ann in SET_ANNOTATIONS:
                    terms = terms | {("src", "unordered")}
                self._bind(stmt.target, terms, ann if ann[:1].isupper()
                           else "")
        elif isinstance(stmt, ast.AugAssign):
            terms = self._eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self._env.get(stmt.target.id, EMPTY)
                self._env[stmt.target.id] = existing | terms
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.facts.ret_terms = self.facts.ret_terms | self._eval(
                    stmt.value
                )
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._handle_loop(stmt)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.body)  # loop-carried taint, 2nd pass
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                terms = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, terms, "")
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
        elif isinstance(stmt, ast.Delete):
            pass
        # Nested function/class definitions are not descended into.

    def _bind(self, target: ast.expr, terms: TermSet, cls: str) -> None:
        if isinstance(target, ast.Name):
            self._env[target.id] = terms
            if cls:
                self._types[target.id] = cls
            else:
                self._types.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, terms, "")
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self._eval(target.value)

    def _constructed_class(self, value: ast.expr) -> str:
        """Written class name when *value* is ``ClassName(...)``."""
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            name = value.func.id
            if name[:1].isupper():
                return name
        return ""

    # -- expressions ----------------------------------------------------
    def _eval(self, node: ast.expr | None) -> TermSet:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self._env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            if (
                self._seed
                and isinstance(node.value, float)
                and node.value not in (0.0, 1.0)
            ):
                return frozenset({("src", "float")})
            return EMPTY
        if isinstance(node, ast.Attribute):
            terms = self._eval(node.value)
            if self._seed:
                base = (
                    node.value.id
                    if isinstance(node.value, ast.Name)
                    else ""
                )
                if node.attr in MEMBERSHIP_ATTRS or (
                    node.attr in ("n", "f")
                    and base.lower() in POPULATION_BASES
                ):
                    terms = terms | {("src", "membership")}
            return terms
        if isinstance(node, ast.BinOp):
            terms = self._eval(node.left) | self._eval(node.right)
            if self._seed and isinstance(node.op, ast.Div):
                terms = terms | {("src", "float")}
            return terms
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: TermSet = EMPTY
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            self._record_compare(node)
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.List, ast.Tuple)):
            out = EMPTY
            for element in node.elts:
                out = out | self._eval(element)
            return out
        if isinstance(node, ast.Set):
            out = frozenset({("src", "unordered")}) if self._seed else EMPTY
            for element in node.elts:
                out = out | self._eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                out = out | self._eval(key)
            for value in node.values:
                out = out | self._eval(value)
            return out
        if isinstance(node, ast.SetComp):
            self._eval_comprehension(node)
            return (
                frozenset({("src", "unordered")}) if self._seed else EMPTY
            ) | self._comp_element_terms(node)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            self._eval_comprehension(node)
            return self._comp_element_terms(node)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out = out | self._eval(value.value)
            return out
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Slice):
            out = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out = out | self._eval(part)
            return out
        if isinstance(node, (ast.Lambda, ast.NamedExpr)):
            if isinstance(node, ast.NamedExpr):
                terms = self._eval(node.value)
                if isinstance(node.target, ast.Name):
                    self._env[node.target.id] = terms
                return terms
            return EMPTY
        return EMPTY

    def _comp_element_terms(self, node: ast.expr) -> TermSet:
        """Terms of a comprehension's element(s) and iterables."""
        out: TermSet = EMPTY
        for gen in node.generators:  # type: ignore[attr-defined]
            out = out | self._eval(gen.iter)
        if isinstance(node, ast.DictComp):
            return out | self._eval(node.key) | self._eval(node.value)
        return out | self._eval(node.elt)  # type: ignore[attr-defined]

    def _eval_comprehension(self, node: ast.expr) -> None:
        """Record loop facts for comprehension generators."""
        for gen in node.generators:  # type: ignore[attr-defined]
            is_list = isinstance(node, ast.ListComp)
            self._maybe_record_loop(
                gen.iter,
                body=None,
                target=gen.target,
                materializes_list=is_list,
            )

    def _record_compare(self, node: ast.Compare) -> None:
        operands = (node.left, *node.comparators)
        # Syntactic float sources lexically inside the comparison are
        # R201/R203's findings; only dataflow-borne taint counts here.
        previous, self._seed = self._seed, False
        terms: TermSet = EMPTY
        try:
            for operand in operands:
                terms = terms | self._eval(operand)
        finally:
            self._seed = previous
        self.facts.compares.append(
            CompareFact(
                lineno=node.lineno,
                col=node.col_offset,
                terms=terms,
                countlike=any(_expr_is_countlike(op) for op in operands),
            )
        )

    # -- calls ----------------------------------------------------------
    def _call_ref(self, func: ast.expr) -> Ref:
        if isinstance(func, ast.Name):
            return ("local", func.id)
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id == "self" and self._info.class_name:
                    return ("method", self._info.class_name, func.attr)
                typed = self._types.get(value.id)
                if typed:
                    return ("method", typed, func.attr)
                return ("attr", value.id, func.attr)
            return ("opaque", func.attr)
        return ("opaque", "")

    def _eval_call(self, node: ast.Call) -> TermSet:
        ref = self._call_ref(node.func)
        if isinstance(node.func, ast.Attribute):
            self._eval(node.func.value)
        args = tuple(self._eval(arg) for arg in node.args)
        kwargs = tuple(
            (kw.arg or "**", self._eval(kw.value)) for kw in node.keywords
        )
        index = len(self.facts.calls)
        self.facts.calls.append(
            CallFact(
                lineno=node.lineno,
                col=node.col_offset,
                ref=ref,
                args=args,
                kwargs=kwargs,
                has_key_kwarg=any(kw.arg == "key" for kw in node.keywords),
            )
        )
        return frozenset({("call", index)})

    # -- loops ----------------------------------------------------------
    def _handle_loop(self, stmt: ast.For | ast.AsyncFor) -> None:
        iter_terms = self._eval(stmt.iter)
        self._bind(stmt.target, iter_terms, "")
        # The body must be evaluated BEFORE the escape pass so that
        # call-mediated escapes can point at recorded call facts.
        self._exec_block(stmt.body)
        self._exec_block(stmt.body)  # loop-carried taint, 2nd pass
        self._exec_block(stmt.orelse)
        self._maybe_record_loop(
            stmt.iter,
            body=stmt.body,
            target=stmt.target,
            iter_terms=iter_terms,
        )

    def _iter_unordered_desc(self, node: ast.expr) -> str:
        """Human description when *node* is syntactically unordered."""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("set", "frozenset")
            ):
                return f"{func.id}(...)"
            if (
                isinstance(func, ast.Attribute)
                and func.attr in UNORDERED_CALL_NAMES
            ):
                return f".{func.attr}()"
        elif isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        return ""

    def _iter_is_ordered(self, node: ast.expr) -> bool:
        """Syntactically ordered iterables — never worth a loop fact."""
        if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ORDERED_ITER_NAMES
            ):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "items",
                "keys",
                "values",
                "most_common",
                "filter",
                "kind_bucket",
                "instance_tags",
            ):
                # Dict views are insertion-ordered in Python; inbox
                # buckets are delivery-ordered lists.
                return True
        return False

    def _maybe_record_loop(
        self,
        iter_node: ast.expr,
        body: list[ast.stmt] | None,
        target: ast.expr,
        materializes_list: bool = False,
        iter_terms: TermSet | None = None,
    ) -> TermSet:
        """Record a loop fact when the iterable may be unordered.

        *iter_terms* is passed in when the caller already evaluated the
        iterable (``For`` loops); comprehensions evaluate it here.
        """
        desc = self._iter_unordered_desc(iter_node)
        ordered = not desc and self._iter_is_ordered(iter_node)
        if iter_terms is None:
            iter_terms = self._eval(iter_node)
        if ordered or (not desc and not iter_terms):
            return iter_terms
        escapes: list[EscapeFact] = []
        if body is not None:
            escapes = self._loop_escapes(target, body)
        elif materializes_list:
            escapes = [
                EscapeFact(
                    lineno=iter_node.lineno,
                    col=iter_node.col_offset,
                    kind="listcomp",
                    detail="list comprehension materializes iteration order",
                )
            ]
        if escapes:
            self.facts.loops.append(
                LoopFact(
                    lineno=iter_node.lineno,
                    col=iter_node.col_offset,
                    intrinsic_unordered=bool(desc),
                    source_desc=desc or "an unordered value",
                    iter_terms=iter_terms,
                    escapes=tuple(escapes),
                )
            )
        return iter_terms

    # -- loop-body escape analysis --------------------------------------
    def _loop_escapes(
        self, target: ast.expr, body: list[ast.stmt]
    ) -> list[EscapeFact]:
        derived: set[str] = set()
        self._collect_names(target, derived)
        escapes: list[EscapeFact] = []
        assigned_derived = False

        def mentions(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id in derived
                for sub in ast.walk(node)
            )

        def walk(stmts: list[ast.stmt]) -> None:
            nonlocal assigned_derived
            for stmt in stmts:
                if isinstance(stmt, ast.Assign) and mentions(stmt.value):
                    assigned_derived = True
                    for tgt in stmt.targets:
                        self._collect_names(tgt, derived)
                elif isinstance(stmt, ast.AugAssign) and mentions(
                    stmt.value
                ):
                    assigned_derived = True
                    self._collect_names(stmt.target, derived)
                elif isinstance(stmt, ast.Return):
                    if stmt.value is not None and mentions(stmt.value):
                        escapes.append(
                            EscapeFact(
                                stmt.lineno,
                                stmt.col_offset,
                                "return",
                                "returns a value picked by set order",
                            )
                        )
                elif isinstance(stmt, ast.Break):
                    if assigned_derived:
                        escapes.append(
                            EscapeFact(
                                stmt.lineno,
                                stmt.col_offset,
                                "break",
                                "first-match selection over set order",
                            )
                        )
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Yield) and sub.value is not None:
                        if mentions(sub.value):
                            escapes.append(
                                EscapeFact(
                                    sub.lineno,
                                    sub.col_offset,
                                    "yield",
                                    "yields values in set order",
                                )
                            )
                    elif isinstance(sub, ast.Call):
                        self._call_escape(sub, mentions, escapes)
                if isinstance(stmt, (ast.If, ast.For, ast.While)):
                    walk(stmt.body)
                    walk(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    walk(stmt.body)
                    for handler in stmt.handlers:
                        walk(handler.body)
                    walk(stmt.orelse)
                    walk(stmt.finalbody)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    walk(stmt.body)

        walk(body)
        return escapes

    def _call_escape(self, node, mentions, escapes) -> None:
        """Order-sensitive sinks reached through a call in a loop body."""
        func = node.func
        derived_args = tuple(
            i for i, arg in enumerate(node.args) if mentions(arg)
        )
        if not derived_args and not any(
            mentions(kw.value) for kw in node.keywords
        ):
            return
        if isinstance(func, ast.Attribute):
            if func.attr in APPEND_NAMES:
                receiver = (
                    func.value.id
                    if isinstance(func.value, ast.Name)
                    else ""
                )
                escapes.append(
                    EscapeFact(
                        node.lineno,
                        node.col_offset,
                        "append",
                        f".{func.attr}() builds an ordered sequence "
                        "in set order",
                        receiver=receiver,
                    )
                )
                return
            if func.attr in EMIT_NAMES:
                escapes.append(
                    EscapeFact(
                        node.lineno,
                        node.col_offset,
                        "emit",
                        f".{func.attr}() emits a payload shaped by "
                        "set order",
                    )
                )
                return
        elif isinstance(func, ast.Name) and func.id in EMIT_NAMES:
            escapes.append(
                EscapeFact(
                    node.lineno,
                    node.col_offset,
                    "emit",
                    f"{func.id}() emits a payload shaped by set order",
                )
            )
            return
        # A resolvable helper may carry the value to a sink one or more
        # hops away; decided by the fixpoint against its sink summary.
        ref = self._call_ref(func)
        if ref[0] in ("local", "method", "attr") and derived_args:
            for index, call in enumerate(self.facts.calls):
                if call.lineno == node.lineno and call.col == node.col_offset:
                    escapes.append(
                        EscapeFact(
                            node.lineno,
                            node.col_offset,
                            "call",
                            f"'{ref_name(ref)}()' may carry the value to "
                            "an order-sensitive sink",
                            call_index=index,
                            derived_args=derived_args,
                        )
                    )
                    return

    @staticmethod
    def _collect_names(target: ast.expr, out: set[str]) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                out.add(sub.id)

    # -- parameter sinks -------------------------------------------------
    def _facts_param_sinks(self) -> None:
        """Params that locally reach an order-sensitive sink."""
        params = set(self._info.params) - {"self"}
        if not params:
            return
        derived: set[str] = set(params)
        sinks: set[int] = set()
        index = {name: i for i, name in enumerate(self._info.params)}

        def mentions(node: ast.AST) -> set[str]:
            return {
                sub.id
                for sub in ast.walk(node)
                if isinstance(sub, ast.Name) and sub.id in derived
            }

        body = self._info.node.body
        for _pass in range(2):
            for stmt in ast.walk(
                ast.Module(body=body, type_ignores=[])
            ):
                if isinstance(stmt, ast.Assign):
                    hit = mentions(stmt.value)
                    if hit:
                        for tgt in stmt.targets:
                            self._collect_names(tgt, derived)
                elif isinstance(stmt, ast.Call):
                    func = stmt.func
                    is_sink = (
                        isinstance(func, ast.Attribute)
                        and func.attr in (APPEND_NAMES | EMIT_NAMES)
                    ) or (
                        isinstance(func, ast.Name)
                        and func.id in EMIT_NAMES
                    )
                    if not is_sink:
                        continue
                    for arg in stmt.args:
                        for name in mentions(arg):
                            root = index.get(name)
                            if root is not None:
                                sinks.add(root)
                            else:
                                # A derived alias: attribute every
                                # param that could have fed it.
                                sinks.update(
                                    index[p]
                                    for p in params & derived
                                    if p in index
                                )
        self.facts.local_order_sinks = frozenset(sinks)


def extract_module_facts(
    symbols: ModuleSymbols,
) -> dict[str, FunctionFacts]:
    """Facts for every function of one module, keyed by local name."""
    return {
        local: FactsExtractor(info, symbols).run()
        for local, info in symbols.functions.items()
    }


# ---------------------------------------------------------------------------
# Taint specs
# ---------------------------------------------------------------------------


class TaintSpec:
    """One taint dimension: sources, sanitizers, propagation policy."""

    name = ""

    def param_seed(self, annotation: str) -> bool:
        """Is a parameter with this annotation intrinsically tainted?"""
        return False

    def return_seed(self, annotation: str) -> bool:
        """Is a return with this annotation intrinsically tainted?"""
        return False

    def unknown_call(self, ref: Ref) -> str:
        """Policy for unresolvable callees: taint | clean | propagate."""
        return "clean"

    def propagate_constructor(self) -> bool:
        """Do unknown/known constructors carry argument taint?"""
        return False


class MembershipSpec(TaintSpec):
    """Global participant-set knowledge (the id-only model, paper §3)."""

    name = "membership"

    def unknown_call(self, ref: Ref) -> str:
        # Aliasing and containers preserve membership knowledge:
        # len(members) is n, sorted(members) is the same set, etc.
        return "propagate"

    def propagate_constructor(self) -> bool:
        return True


class FloatSpec(TaintSpec):
    """Float-producing expressions (the exact-quorum-math invariant)."""

    name = "float"

    _TAINTING = frozenset(
        {
            "float",
            "mean",
            "fmean",
            "median",
            "median_low",
            "median_high",
            "stdev",
            "pstdev",
            "variance",
            "pvariance",
            "sqrt",
            "exp",
            "log",
        }
    )
    _PROPAGATING = frozenset({"abs", "sum", "max", "min", "round"})

    def param_seed(self, annotation: str) -> bool:
        return annotation == "float"

    def return_seed(self, annotation: str) -> bool:
        return annotation == "float"

    def unknown_call(self, ref: Ref) -> str:
        name = ref_name(ref)
        if name in self._TAINTING:
            return "taint"
        if ref[0] == "attr" and ref[1] in ("statistics", "math"):
            return "taint"
        if name in self._PROPAGATING:
            return "propagate"
        return "clean"


class UnorderedSpec(TaintSpec):
    """Unordered-collection iteration order (determinism invariant)."""

    name = "unordered"

    _PROPAGATING = frozenset({"list", "tuple", "iter", "reversed"})

    def param_seed(self, annotation: str) -> bool:
        return annotation in SET_ANNOTATIONS

    def return_seed(self, annotation: str) -> bool:
        return annotation in SET_ANNOTATIONS

    def unknown_call(self, ref: Ref) -> str:
        name = ref_name(ref)
        if name in UNORDERED_CALL_NAMES:
            return "taint"
        if name in self._PROPAGATING:
            return "propagate"
        # sorted() and friends impose a total order: clean.
        return "clean"


# ---------------------------------------------------------------------------
# The fixpoint
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TaintValue:
    """Evaluation of a term set: unconditional taint + parameter taint."""

    intrinsic: bool = False
    params: frozenset[int] = frozenset()

    def __or__(self, other: "TaintValue") -> "TaintValue":
        return TaintValue(
            self.intrinsic or other.intrinsic, self.params | other.params
        )

    def __bool__(self) -> bool:
        return self.intrinsic or bool(self.params)


CLEAN = TaintValue()


@dataclass(frozen=True, slots=True)
class Summary:
    """Per-function fixpoint result for one spec."""

    ret: TaintValue = CLEAN
    sink_params: frozenset[int] = frozenset()


class TaintAnalysis:
    """Interprocedural taint for one :class:`TaintSpec`.

    Runs a chaotic-iteration fixpoint over all function facts: each
    round re-evaluates every function's return and sink summaries with
    the current callee summaries, until nothing changes.  The program
    is small (hundreds of functions), so the bound is generous.
    """

    _MAX_ROUNDS = 40

    def __init__(
        self,
        facts: dict[str, FunctionFacts],
        resolver: Resolver,
        spec: TaintSpec,
    ):
        self._facts = facts
        self._resolver = resolver
        self.spec = spec
        self.summaries: dict[str, Summary] = {
            qualname: Summary() for qualname in facts
        }
        self._solve()

    # -- public query surface ------------------------------------------
    def call_values(self, facts: FunctionFacts) -> list[TaintValue]:
        """Taint of each call result in *facts*, in call-index order."""
        return self._function_call_values(facts)

    def evaluate(
        self, facts: FunctionFacts, terms: TermSet
    ) -> TaintValue:
        """Taint of an arbitrary term set inside *facts*."""
        return self._eval_terms(
            facts, terms, self._function_call_values(facts)
        )

    def resolve(self, facts: FunctionFacts, ref: Ref):
        return self._resolver.resolve_ref(facts.module, ref)

    def arg_param_map(
        self, call: CallFact, target: FunctionInfo
    ) -> list[tuple[int, TermSet]]:
        """Pair each argument's terms with the callee parameter index."""
        offset = (
            1
            if target.is_method
            and target.params[:1] == ("self",)
            else 0
        )
        pairs: list[tuple[int, TermSet]] = []
        for position, terms in enumerate(call.args):
            pairs.append((position + offset, terms))
        names = {name: i for i, name in enumerate(target.params)}
        for name, terms in call.kwargs:
            if name in names:
                pairs.append((names[name], terms))
        return [
            (index, terms)
            for index, terms in pairs
            if index < len(target.params)
        ]

    # -- fixpoint internals --------------------------------------------
    def _solve(self) -> None:
        for _round in range(self._MAX_ROUNDS):
            changed = False
            for qualname, facts in self._facts.items():
                summary = self._summarize(facts)
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed:
                return

    def _summarize(self, facts: FunctionFacts) -> Summary:
        call_values = self._function_call_values(facts)
        ret = self._eval_terms(facts, facts.ret_terms, call_values)
        if self.spec.return_seed(facts.return_annotation):
            ret = ret | TaintValue(intrinsic=True)
        sink_params: set[int] = set()
        if self.spec.name == "unordered":
            sink_params.update(facts.local_order_sinks)
            for call in facts.calls:
                target = self._resolver.resolve_ref(facts.module, call.ref)
                if target is None:
                    continue
                target_summary = self.summaries.get(target.qualname)
                if target_summary is None or not target_summary.sink_params:
                    continue
                for index, terms in self.arg_param_map(call, target):
                    if index in target_summary.sink_params:
                        value = self._eval_terms(facts, terms, call_values)
                        sink_params.update(value.params)
        elif self.spec.name == "float":
            for compare in facts.compares:
                if not compare.countlike:
                    continue
                value = self._eval_terms(
                    facts, compare.terms, call_values
                )
                sink_params.update(value.params)
        return Summary(ret=ret, sink_params=frozenset(sink_params))

    def _function_call_values(
        self, facts: FunctionFacts
    ) -> list[TaintValue]:
        values: list[TaintValue] = []
        for call in facts.calls:
            values.append(self._call_value(facts, call, values))
        return values

    def _call_value(
        self,
        facts: FunctionFacts,
        call: CallFact,
        earlier: list[TaintValue],
    ) -> TaintValue:
        target = self._resolver.resolve_ref(facts.module, call.ref)
        arg_values = [
            self._eval_terms(facts, terms, earlier) for terms in call.args
        ]
        kw_values = {
            name: self._eval_terms(facts, terms, earlier)
            for name, terms in call.kwargs
        }
        if target is not None:
            summary = self.summaries.get(target.qualname, Summary())
            value = (
                TaintValue(intrinsic=True)
                if summary.ret.intrinsic
                else CLEAN
            )
            names = {name: i for i, name in enumerate(target.params)}
            offset = (
                1
                if target.is_method and target.params[:1] == ("self",)
                else 0
            )
            for position, arg_value in enumerate(arg_values):
                if position + offset in summary.ret.params:
                    value = value | arg_value
            for name, kw_value in kw_values.items():
                if names.get(name) in summary.ret.params:
                    value = value | kw_value
            if (
                self.spec.propagate_constructor()
                and self._resolver.ref_is_constructor(
                    facts.module, call.ref
                )
            ):
                for arg_value in arg_values:
                    value = value | arg_value
                for kw_value in kw_values.values():
                    value = value | kw_value
            return value
        policy = self.spec.unknown_call(call.ref)
        if policy == "taint":
            return TaintValue(intrinsic=True)
        if policy == "propagate":
            value = CLEAN
            for arg_value in arg_values:
                value = value | arg_value
            for kw_value in kw_values.values():
                value = value | kw_value
            return value
        return CLEAN

    def _eval_terms(
        self,
        facts: FunctionFacts,
        terms: TermSet,
        call_values: list[TaintValue],
    ) -> TaintValue:
        intrinsic = False
        params: set[int] = set()
        for term in terms:
            kind = term[0]
            if kind == "src":
                if term[1] == self.spec.name:
                    intrinsic = True
            elif kind == "param":
                index = term[1]
                params.add(index)
                annotations = facts.param_annotations
                if index < len(annotations) and self.spec.param_seed(
                    annotations[index]
                ):
                    intrinsic = True
            elif kind == "call":
                index = term[1]
                if index < len(call_values):
                    value = call_values[index]
                    intrinsic = intrinsic or value.intrinsic
                    params.update(value.params)
        return TaintValue(intrinsic, frozenset(params))
