"""Module naming and the per-module symbol table.

The program model keys everything by *dotted module name*, derived the
same way :func:`repro.lint.engine.layer_of` derives layers: anchored at
the innermost ``repro`` path segment.  Fixture trees that mimic the
``repro/<layer>/...`` layout therefore get real module names
(``repro.core.proto``), which is what lets the interprocedural tests
seed cross-module flows outside the real tree.

A :class:`ModuleSymbols` is the purely *local* view of one module:
its top-level functions and classes (with methods), simple module-level
aliases, and import bindings.  Cross-module resolution lives in
:mod:`repro.lint.program.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.program.imports import ImportBinding, parse_import_bindings


def module_name_of(path: Path) -> str:
    """Dotted module name anchored at the innermost ``repro`` segment.

    ``.../src/repro/core/x.py`` -> ``repro.core.x``;
    ``.../repro/core/__init__.py`` -> ``repro.core``;
    a bare file falls back to its stem.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else ""


def _annotation_name(node: ast.expr | None) -> str:
    """Terminal name of an annotation (``frozenset[NodeId]`` -> ``frozenset``)."""
    if node is None:
        return ""
    if isinstance(node, ast.Subscript):
        return _annotation_name(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: take the part before any subscript.
        return node.value.split("[", 1)[0].strip()
    return ""


@dataclass(slots=True)
class FunctionInfo:
    """One function or method, addressable program-wide."""

    qualname: str  # "repro.core.x.Cls.meth" or "repro.core.x.func"
    module: str
    local_name: str  # "Cls.meth" or "func"
    class_name: str  # "" for module-level functions
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]  # positional-or-keyword order, incl. self
    param_annotations: tuple[str, ...]  # terminal names, "" when absent
    return_annotation: str  # terminal name, "" when absent
    is_async: bool

    @property
    def is_method(self) -> bool:
        return bool(self.class_name)


@dataclass(slots=True)
class ClassInfo:
    """One class with its directly defined methods."""

    name: str
    qualname: str
    bases: tuple[str, ...]  # base names as written (terminal names)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass(slots=True)
class ModuleSymbols:
    """The local symbol surface of one module."""

    name: str
    path: str
    layer: tuple[str, ...]
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Simple module-level aliases: ``short = long_name``.
    aliases: dict[str, str] = field(default_factory=dict)
    imports: dict[str, ImportBinding] = field(default_factory=dict)

    def imported_modules(self) -> set[str]:
        """Every module this one imports (for the import graph)."""
        return {binding.module for binding in self.imports.values()}


def _function_info(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    module: str,
    class_name: str,
) -> FunctionInfo:
    args = node.args
    ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    local = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        qualname=f"{module}.{local}",
        module=module,
        local_name=local,
        class_name=class_name,
        node=node,
        params=tuple(arg.arg for arg in ordered),
        param_annotations=tuple(
            _annotation_name(arg.annotation) for arg in ordered
        ),
        return_annotation=_annotation_name(node.returns),
        is_async=isinstance(node, ast.AsyncFunctionDef),
    )


def build_module_symbols(
    name: str, path: Path, layer: tuple[str, ...], tree: ast.Module
) -> ModuleSymbols:
    """Extract the local symbol table of one parsed module."""
    is_package = path.name == "__init__.py"
    symbols = ModuleSymbols(
        name=name,
        path=str(path),
        layer=layer,
        imports=parse_import_bindings(tree, name, is_package),
    )
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = _function_info(stmt, name, "")
            symbols.functions[info.local_name] = info
        elif isinstance(stmt, ast.ClassDef):
            cls = ClassInfo(
                name=stmt.name,
                qualname=f"{name}.{stmt.name}",
                bases=tuple(
                    base.id if isinstance(base, ast.Name) else (
                        base.attr if isinstance(base, ast.Attribute) else ""
                    )
                    for base in stmt.bases
                ),
            )
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info = _function_info(sub, name, stmt.name)
                    cls.methods[sub.name] = info
                    symbols.functions[info.local_name] = info
            symbols.classes[stmt.name] = cls
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and isinstance(
                stmt.value, ast.Name
            ):
                symbols.aliases[target.id] = stmt.value.id
    return symbols
