"""Import bindings and the project-wide import graph.

An :class:`ImportBinding` records what one local name means in terms of
other modules: ``import a.b as c`` binds ``c`` to module ``a.b``;
``from a.b import x as y`` binds ``y`` to symbol ``x`` of ``a.b``.
Relative imports are resolved against the importing module's package so
fixture trees and the real tree behave identically.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ImportBinding:
    """One imported local name."""

    local: str  # the name usable in this module
    module: str  # dotted module the name comes from
    symbol: str  # "" when the binding is the module object itself


def _resolve_relative(
    module_name: str, is_package: bool, level: int, target: str
) -> str:
    """Absolute module named by a ``from ... import`` with *level* dots."""
    parts = module_name.split(".") if module_name else []
    if not is_package and parts:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop <= len(parts) else []
    if target:
        parts = [*parts, *target.split(".")]
    return ".".join(parts)


def parse_import_bindings(
    tree: ast.Module, module_name: str, is_package: bool
) -> dict[str, ImportBinding]:
    """Every local name bound by an import statement in *tree*."""
    bindings: dict[str, ImportBinding] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                # ``import a.b`` binds ``a`` to package ``a``; with an
                # asname the full dotted module is bound directly.
                module = alias.name if alias.asname else local
                bindings[local] = ImportBinding(local, module, "")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                module = _resolve_relative(
                    module_name, is_package, node.level, module
                )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = ImportBinding(local, module, alias.name)
    return bindings


def import_graph(
    modules: dict[str, "object"],
) -> dict[str, set[str]]:
    """``module -> imported modules`` restricted to modules in the program.

    *modules* maps dotted names to :class:`ModuleSymbols`-like objects
    exposing ``imported_modules()``.  Imports of modules outside the
    analyzed tree (stdlib, third-party) are dropped: the graph answers
    "which analyzed module depends on which", which is what the
    re-export resolver and the tests need.
    """
    known = set(modules)
    graph: dict[str, set[str]] = {}
    for name, symbols in modules.items():
        edges = set()
        for target in symbols.imported_modules():
            if target in known:
                edges.add(target)
            else:
                # ``from repro.core.quorum import X`` seen from a module
                # that only knows the package: keep prefix matches too.
                prefix = target.rsplit(".", 1)[0]
                if prefix in known:
                    edges.add(prefix)
        graph[name] = edges
    return graph
