"""Whole-program semantic model for :mod:`repro.lint`.

Phase one of the two-phase lint run: every parsed file becomes a
:class:`ModuleEntry` (symbol table + per-function dataflow facts), the
entries are linked by a :class:`~repro.lint.program.callgraph.Resolver`,
and program rules query interprocedural taint through
:meth:`ProgramModel.taint`, which memoizes one fixpoint per spec.

Contexts are duck-typed (``path``, ``layer``, ``tree``, ``source``),
deliberately: the engine imports this package, not the other way
around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.program.cache import ProgramCache, content_digest
from repro.lint.program.callgraph import (
    Resolver,
    build_call_graph,
)
from repro.lint.program.dataflow import (
    FloatSpec,
    FunctionFacts,
    MembershipSpec,
    TaintAnalysis,
    TaintSpec,
    UnorderedSpec,
    extract_module_facts,
)
from repro.lint.program.imports import import_graph
from repro.lint.program.symbols import (
    ModuleSymbols,
    build_module_symbols,
    module_name_of,
)

SPECS: dict[str, type[TaintSpec]] = {
    "membership": MembershipSpec,
    "float": FloatSpec,
    "unordered": UnorderedSpec,
}


@dataclass(slots=True)
class ModuleEntry:
    """One analyzed module: its context, symbols, and local facts."""

    ctx: object  # FileContext (duck-typed)
    symbols: ModuleSymbols
    facts: dict[str, FunctionFacts]  # keyed by local name
    digest: str


class ProgramModel:
    """The linked whole-program view handed to program rules."""

    def __init__(self, entries: dict[str, ModuleEntry]):
        #: dotted module name -> entry
        self.modules = entries
        #: str(path) -> entry, for suppression/baseline lookups
        self.by_path = {
            str(entry.ctx.path): entry for entry in entries.values()
        }
        self.resolver = Resolver(
            {name: entry.symbols for name, entry in entries.items()}
        )
        #: qualname -> facts, the fixpoint's working set
        self.functions: dict[str, FunctionFacts] = {}
        for entry in entries.values():
            for facts in entry.facts.values():
                self.functions[facts.qualname] = facts
        self._taints: dict[str, TaintAnalysis] = {}

    def taint(self, spec_name: str) -> TaintAnalysis:
        """The (memoized) interprocedural fixpoint for one taint spec."""
        analysis = self._taints.get(spec_name)
        if analysis is None:
            analysis = TaintAnalysis(
                self.functions, self.resolver, SPECS[spec_name]()
            )
            self._taints[spec_name] = analysis
        return analysis

    def entry_for(self, facts: FunctionFacts) -> ModuleEntry | None:
        return self.modules.get(facts.module)

    def import_graph(self) -> dict[str, set[str]]:
        return import_graph(
            {name: entry.symbols for name, entry in self.modules.items()}
        )

    def call_graph(self) -> dict[str, set[str]]:
        return build_call_graph(
            {name: entry.symbols for name, entry in self.modules.items()},
            self.functions,
            self.resolver,
        )


def build_program(
    contexts: list, cache: ProgramCache | None = None
) -> ProgramModel:
    """Phase one: link all parsed contexts into a :class:`ProgramModel`."""
    entries: dict[str, ModuleEntry] = {}
    for ctx in contexts:
        path = Path(ctx.path)
        name = module_name_of(path)
        symbols = build_module_symbols(name, path, ctx.layer, ctx.tree)
        digest = content_digest(ctx.source)
        facts: dict[str, FunctionFacts] | None = None
        if cache is not None:
            cached = cache.get(str(ctx.path), digest)
            if cached is not None:
                facts = {item.local_name: item for item in cached}
        if facts is None:
            facts = extract_module_facts(symbols)
            if cache is not None:
                cache.put(str(ctx.path), digest, list(facts.values()))
        entries[name] = ModuleEntry(
            ctx=ctx, symbols=symbols, facts=facts, digest=digest
        )
    if cache is not None:
        cache.save()
    return ProgramModel(entries)
