"""Name resolution and the project-wide call graph.

Call sites are recorded by the dataflow extractor as *references* — the
callee as written, before any cross-module knowledge is applied:

* ``("local", name)`` — a plain name (``helper(...)``)
* ``("method", class_name, meth)`` — ``self.meth(...)`` or a call on a
  local whose class is known (constructor call or annotation)
* ``("attr", base, attr)`` — ``base.attr(...)`` with a plain-name base
  (an imported module alias, an imported class, a local class)
* ``("opaque", name)`` — anything deeper (``a.b.c(...)``); only the
  terminal name survives, for the heuristic taint hooks

The :class:`Resolver` turns references into :class:`FunctionInfo`
targets, following re-export chains (``from .quorum import X`` in a
package ``__init__`` and onward) up to a fixed depth so import
indirection cannot hide a flow.
"""

from __future__ import annotations

from repro.lint.program.symbols import ClassInfo, FunctionInfo, ModuleSymbols

#: Re-export chains longer than this are cut (cycles, pathological trees).
_MAX_HOPS = 12

Ref = tuple


class Resolver:
    """Resolve written names to program-wide functions and classes."""

    def __init__(self, modules: dict[str, ModuleSymbols]):
        self._modules = modules

    # ------------------------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, _hops: int = 0
    ) -> FunctionInfo | ClassInfo | ModuleSymbols | None:
        """What *name* means inside *module*, across re-exports."""
        if _hops > _MAX_HOPS:
            return None
        symbols = self._modules.get(module)
        if symbols is None:
            return None
        if name in symbols.functions:
            return symbols.functions[name]
        if name in symbols.classes:
            return symbols.classes[name]
        if name in symbols.aliases:
            return self.resolve_symbol(
                module, symbols.aliases[name], _hops + 1
            )
        binding = symbols.imports.get(name)
        if binding is not None:
            if not binding.symbol:
                return self._modules.get(binding.module)
            resolved = self.resolve_symbol(
                binding.module, binding.symbol, _hops + 1
            )
            if resolved is not None:
                return resolved
            # ``from a import b`` where ``b`` is the submodule ``a.b``.
            return self._modules.get(f"{binding.module}.{binding.symbol}")
        return None

    def resolve_ref(self, module: str, ref: Ref) -> FunctionInfo | None:
        """Resolve a call reference to its target function, if knowable."""
        kind = ref[0]
        if kind == "local":
            target = self.resolve_symbol(module, ref[1])
            if isinstance(target, FunctionInfo):
                return target
            if isinstance(target, ClassInfo):
                return target.methods.get("__init__")
            return None
        if kind == "method":
            _, class_name, meth = ref
            target = self.resolve_symbol(module, class_name)
            if isinstance(target, ClassInfo):
                found = target.methods.get(meth)
                if found is not None:
                    return found
                # One level of base-class lookup by written base name.
                for base in target.bases:
                    base_cls = self.resolve_symbol(module, base)
                    if (
                        isinstance(base_cls, ClassInfo)
                        and meth in base_cls.methods
                    ):
                        return base_cls.methods[meth]
            return None
        if kind == "attr":
            _, base, attr = ref
            target = self.resolve_symbol(module, base)
            if isinstance(target, ModuleSymbols):
                found = target.functions.get(attr)
                if found is not None:
                    return found
                cls = target.classes.get(attr)
                if cls is not None:
                    return cls.methods.get("__init__")
                return None
            if isinstance(target, ClassInfo):
                return target.methods.get(attr)
            return None
        return None

    def ref_is_constructor(self, module: str, ref: Ref) -> bool:
        """True when the reference names a known class (instance result)."""
        if ref[0] == "local":
            return isinstance(
                self.resolve_symbol(module, ref[1]), ClassInfo
            )
        if ref[0] == "attr":
            target = self.resolve_symbol(module, ref[1])
            if isinstance(target, ModuleSymbols):
                return ref[2] in target.classes
        return False

    def constructor_class(self, module: str, ref: Ref) -> str:
        """Class name constructed by *ref*, or '' when not a constructor."""
        if ref[0] == "local":
            target = self.resolve_symbol(module, ref[1])
            if isinstance(target, ClassInfo):
                return target.name
        elif ref[0] == "attr":
            target = self.resolve_symbol(module, ref[1])
            if isinstance(target, ModuleSymbols) and ref[2] in target.classes:
                return ref[2]
        return ""


def ref_name(ref: Ref) -> str:
    """Terminal written name of a reference (for messages and hooks)."""
    if ref[0] == "local":
        return ref[1]
    return ref[-1]


def build_call_graph(
    modules: dict[str, ModuleSymbols],
    facts_by_function: dict[str, "object"],
    resolver: Resolver,
) -> dict[str, set[str]]:
    """``caller qualname -> resolved callee qualnames``.

    *facts_by_function* maps qualnames to objects exposing ``module``
    and ``calls`` (each call exposing ``ref``) — the dataflow facts.
    """
    graph: dict[str, set[str]] = {}
    for qualname, facts in facts_by_function.items():
        edges: set[str] = set()
        for call in facts.calls:
            target = resolver.resolve_ref(facts.module, call.ref)
            if target is not None:
                edges.add(target.qualname)
        graph[qualname] = edges
    return graph
