"""R3xx — simulator determinism (DESIGN.md "determinism is sacred").

Every run must be exactly reproducible from its seed: recordings are
verified byte-for-byte (``repro record --verify``), and the adversarial
matrix relies on replayable failures.  Randomness must therefore flow
through :func:`repro.sim.rng.make_rng`, wall clocks stay confined to the
real-network layer (``repro.net``) and offline analysis, and protocol
code must not let the iteration order of unordered collections pick
winners.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

#: The one module allowed to import the stdlib random machinery.
RNG_MODULES = ("sim/rng.py",)

#: Layers exempt from determinism: offline analysis may time itself,
#: and the lint package never runs inside a simulation.
OFFLINE_LAYERS = ("analysis", "lint")

#: Layers additionally allowed to read wall clocks (real networking).
WALL_CLOCK_LAYERS = ("net",)

WALL_CLOCK_ATTRS = {
    "time": frozenset(
        {"time", "monotonic", "perf_counter", "time_ns", "sleep"}
    ),
    "datetime": frozenset({"now", "utcnow", "today"}),
}


def _deterministic_layer(ctx: FileContext) -> bool:
    return not (ctx.in_layer(*OFFLINE_LAYERS) or ctx.is_module(*RNG_MODULES))


class DirectRandomImport(Rule):
    """R301: stdlib ``random`` only enters through ``repro.sim.rng``."""

    code = "R301"
    name = "direct-random-import"
    description = (
        "only repro.sim.rng (and the analysis layer) may import the "
        "stdlib 'random' module; everything else uses make_rng(seed)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _deterministic_layer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(
                    alias.name == "random" or alias.name.startswith("random.")
                    for alias in node.names
                ):
                    yield self._diag(ctx, node)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self._diag(ctx, node)

    def _diag(self, ctx: FileContext, node: ast.AST) -> Diagnostic:
        return ctx.diagnostic(
            node,
            self.code,
            "direct 'random' import bypasses the seeded RNG discipline",
            hint="from repro.sim.rng import make_rng (or Random for types)",
        )


class WallClockCall(Rule):
    """R302: no wall-clock reads outside repro.net / repro.analysis."""

    code = "R302"
    name = "wall-clock-call"
    description = (
        "time.time/monotonic/sleep and datetime.now are confined to "
        "repro.net and repro.analysis; simulations use logical rounds"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _deterministic_layer(ctx) and not ctx.in_layer(
            *WALL_CLOCK_LAYERS
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "importing from 'time' introduces wall-clock "
                    "dependence into a deterministic layer",
                    hint="simulated layers must use logical round/time",
                )
                continue
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            base = node.func.value
            base_name = base.id if isinstance(base, ast.Name) else ""
            forbidden = WALL_CLOCK_ATTRS.get(base_name)
            if forbidden and node.func.attr in forbidden:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'{base_name}.{node.func.attr}()' reads the wall "
                    "clock in a deterministic layer",
                    hint="simulated layers must use logical round/time",
                )


class ModuleRandomCall(Rule):
    """R303: no calls to the unseeded module-level random functions."""

    code = "R303"
    name = "unseeded-random-call"
    description = (
        "random.random()/choice()/shuffle() etc. use the shared unseeded "
        "global generator; draw from a make_rng(seed) instance"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _deterministic_layer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr != "Random"
            ):
                continue
            yield ctx.diagnostic(
                node,
                self.code,
                f"'random.{node.func.attr}()' draws from the global "
                "unseeded generator",
                hint="use a repro.sim.rng.make_rng(seed) instance",
            )


class UnorderedIteration(Rule):
    """R304: protocol choices must not depend on set iteration order.

    Heuristic by design: it flags iterating directly over a freshly
    built ``set(...)``/``frozenset(...)`` and ``max``/``min``/``next``
    over unordered views (``set(...)``, ``.senders()``, ``.keys()``,
    ``.values()``) *without* a ``key=`` that could impose a total
    order.  Tie-breaking via an explicit ``key`` (see
    ``parallel_consensus._best``) is the sanctioned pattern.
    """

    code = "R304"
    name = "unordered-iteration"
    description = (
        "protocol code must not iterate/select over unordered "
        "collections where order can pick the winner; sort first or "
        "supply a total-order key"
    )
    #: R603's escape analysis reports the same hazard with flow
    #: reasoning; when it runs, this syntactic ban stands down.
    superseded_by = "R603"

    UNORDERED_CALLS = frozenset({"set", "frozenset"})
    #: Methods returning genuinely unordered views.  Dict views are
    #: insertion-ordered in Python and therefore deterministic, so
    #: ``.keys()``/``.values()`` are only a hazard under max/min ties.
    UNORDERED_METHODS = frozenset({"senders"})
    TIE_METHODS = frozenset({"senders", "keys", "values", "items"})
    SELECTORS = frozenset({"max", "min", "next"})

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer("core", "baselines")

    def _unordered(
        self, node: ast.AST, methods: frozenset[str]
    ) -> str:
        """Name of the unordered source *node* builds, or ''."""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self.UNORDERED_CALLS
            ):
                return f"{func.id}(...)"
            if isinstance(func, ast.Attribute) and func.attr in methods:
                return f".{func.attr}()"
        elif isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        return ""

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        iters: list[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.SELECTORS
                and node.args
                and not any(kw.arg == "key" for kw in node.keywords)
            ):
                source = self._unordered(node.args[0], self.TIE_METHODS)
                if source:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"'{node.func.id}()' over {source} without a "
                        "key= lets iteration order break ties",
                        hint="supply key= with a total order, or sorted()",
                    )
        for iter_node in iters:
            source = self._unordered(iter_node, self.UNORDERED_METHODS)
            if source:
                yield ctx.diagnostic(
                    iter_node,
                    self.code,
                    f"iterating directly over {source}: set order must "
                    "not influence protocol behaviour",
                    hint="wrap in sorted() when order can matter",
                )
