"""R701 — shared state across ``await`` points in the async runtime.

The ``asyncsim`` engine interleaves coroutines at ``await`` boundaries:
between suspending and resuming, any other task may run and mutate the
same object.  A check-then-act split across an ``await`` is therefore
the async analogue of a data race:

* state read before the ``await`` and written after it, with no
  re-read in between — the write acts on a stale validation;
* a local snapshot of shared state taken before the ``await`` and used
  after it without being refreshed.

Only attributes that are actually *mutated somewhere in the class* are
considered shared state, so immutable configuration reads stay silent.
The check is a lineno-ordered heuristic, not a happens-before proof —
it runs only on ``async def`` functions in the ``asyncsim``/``net``
layers, where the interleaving hazard is real.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ProgramRule

ASYNC_LAYERS = ("asyncsim", "net")


def _self_attr(node: ast.expr) -> str:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _mutated_attrs(cls_methods) -> set[str]:
    """Attributes written by any method of the class (mutable state).

    ``__init__`` is excluded: initialization is not mutation, and
    counting it would make every attribute — including immutable
    configuration — look engine-shared.
    """
    written: set[str] = set()
    for name, info in cls_methods.items():
        if name == "__init__":
            continue
        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr:
                        written.add(attr)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                # self.x.append(...) style in-place mutation.
                attr = _self_attr(node.func.value)
                if attr and node.func.attr in (
                    "append",
                    "extend",
                    "add",
                    "discard",
                    "remove",
                    "update",
                    "pop",
                    "clear",
                    "insert",
                    "setdefault",
                ):
                    written.add(attr)
    return written


class AwaitSharedState(ProgramRule):
    """R701: no stale check-then-act on shared state across ``await``."""

    code = "R701"
    name = "await-shared-state"
    description = (
        "async runtime code must re-validate engine-shared attributes "
        "after an await before acting on them; other tasks run in the "
        "gap"
    )

    def check_program(self, model) -> Iterable[Diagnostic]:
        for entry in model.modules.values():
            symbols = entry.symbols
            if not symbols.layer or symbols.layer[0] not in ASYNC_LAYERS:
                continue
            for cls in symbols.classes.values():
                shared = _mutated_attrs(cls.methods)
                if not shared:
                    continue
                for info in cls.methods.values():
                    if not info.is_async:
                        continue
                    yield from self._check_function(
                        model, entry, info, shared
                    )

    # ------------------------------------------------------------------
    def _check_function(self, model, entry, info, shared):
        awaits: list[int] = []
        reads: dict[str, list[int]] = {}
        writes: dict[str, list[int]] = {}
        snapshots: dict[str, tuple[str, int]] = {}  # local -> (attr, line)
        snapshot_uses: list[tuple[str, str, int]] = []
        rebinds: dict[str, list[int]] = {}

        for node in ast.walk(info.node):
            if isinstance(node, ast.Await):
                awaits.append(node.lineno)
            elif isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr in shared:
                    bucket = (
                        writes
                        if isinstance(node.ctx, (ast.Store, ast.Del))
                        else reads
                    )
                    bucket.setdefault(attr, []).append(node.lineno)
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    rebinds.setdefault(target.id, []).append(node.lineno)
                    attr = _self_attr(node.value)
                    if attr in shared:
                        snapshots[target.id] = (attr, node.lineno)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node.id in snapshots:
                    attr, taken = snapshots[node.id]
                    snapshot_uses.append((node.id, attr, node.lineno))

        if not awaits:
            return

        def diag(lineno: int, message: str, hint: str) -> Diagnostic:
            ctx = entry.ctx
            return Diagnostic(
                path=ctx.display_path,
                line=lineno,
                col=1,
                code=self.code,
                message=message,
                source_line=ctx.source_line(lineno).strip(),
                hint=hint,
            )

        reported: set[int] = set()
        # Pattern A: read -> await -> write, no re-read in the gap.
        for attr, write_lines in writes.items():
            read_lines = reads.get(attr, [])
            for write_line in write_lines:
                gate = [
                    a
                    for a in awaits
                    if a < write_line
                    and any(r < a for r in read_lines)
                ]
                if not gate:
                    continue
                last_await = max(gate)
                if any(
                    last_await < r < write_line for r in read_lines
                ):
                    continue
                if write_line not in reported:
                    reported.add(write_line)
                    yield diag(
                        write_line,
                        f"'self.{attr}' was checked before an await "
                        "(line "
                        f"{max(r for r in read_lines if r < last_await)}) "
                        "and is written here without re-validation",
                        hint=(
                            "re-read the attribute after resuming; "
                            "another task may have changed it"
                        ),
                    )
        # Pattern B: local snapshot of shared state used after an await.
        for local, attr, use_line in snapshot_uses:
            taken_attr, taken_line = snapshots[local]
            crossing = [
                a for a in awaits if taken_line < a < use_line
            ]
            if not crossing:
                continue
            last_await = max(crossing)
            if any(
                last_await < r <= use_line
                for r in rebinds.get(local, [])
                if r != taken_line
            ):
                continue
            if use_line not in reported:
                reported.add(use_line)
                yield diag(
                    use_line,
                    f"snapshot '{local}' of 'self.{attr}' (line "
                    f"{taken_line}) is used after an await without "
                    "being refreshed",
                    hint=(
                        "re-read self."
                        f"{attr} after the await, or act before "
                        "suspending"
                    ),
                )
