"""R5xx — event-plane discipline (docs/observability.md).

The observability refactor has one invariant worth a static check:
protocol code emits semantic events through :meth:`NodeApi.emit` and
*only* through it.  A protocol that imports or constructs the plumbing
(``EventBus``, ``Trace``, ``Metrics``, sinks, recorders) ties itself to
one runtime's observability wiring — breaking the "one plane, three
runtimes" guarantee that the same protocol run is observable under the
simulator, the TCP runners, and the asyncsim engine alike — and could
inject events the engine never produced.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

PROTOCOL_LAYERS = ("core", "baselines")

#: Observability plumbing classes protocol code must never name.
PLUMBING_NAMES = frozenset(
    {"EventBus", "Trace", "Metrics", "JsonlSink", "RecordingNetwork"}
)

#: Modules whose import into protocol code means plumbing access.
PLUMBING_MODULES = (
    "repro.obs",
    "repro.sim.trace",
    "repro.sim.metrics",
    "repro.sim.replay",
)


def _names_plumbing_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in PLUMBING_MODULES
    )


class EventPlaneBypass(Rule):
    """R501: protocols observe only through NodeApi.emit."""

    code = "R501"
    name = "event-plane-bypass"
    description = (
        "protocol code may not import or construct observability "
        "plumbing (EventBus, Trace, Metrics, sinks, recorders); "
        "semantic events go through NodeApi.emit"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if _names_plumbing_module(module):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"protocol code imports from '{module}' — "
                        "observability plumbing is runtime territory",
                        hint="emit via api.emit(event, **detail)",
                    )
                    continue
                for alias in node.names:
                    if alias.name in PLUMBING_NAMES:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"protocol code imports '{alias.name}' — "
                            "observability plumbing is runtime territory",
                            hint="emit via api.emit(event, **detail)",
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if _names_plumbing_module(alias.name):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"protocol code imports '{alias.name}' — "
                            "observability plumbing is runtime territory",
                            hint="emit via api.emit(event, **detail)",
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in PLUMBING_NAMES
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"protocol code constructs {node.func.id} directly",
                    hint="emit via api.emit(event, **detail)",
                )
