"""Rule registry: every enforced invariant, keyed by stable code."""

from __future__ import annotations

from repro.lint.engine import Rule
from repro.lint.rules.determinism import (
    DirectRandomImport,
    ModuleRandomCall,
    UnorderedIteration,
    WallClockCall,
)
from repro.lint.rules.hygiene import (
    InboxInternalsAccess,
    OutboxInProtocol,
    PrivateApiAccess,
    SenderStamping,
)
from repro.lint.rules.id_only import (
    ForbiddenImport,
    GlobalMembershipSurface,
    KnownPopulationParameter,
)
from repro.lint.rules.observability import EventPlaneBypass
from repro.lint.rules.quorum_math import (
    CeilFloorThreshold,
    FloatDivisionThreshold,
    QuorumFractionLiteral,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [
        ForbiddenImport(),
        GlobalMembershipSurface(),
        KnownPopulationParameter(),
        FloatDivisionThreshold(),
        CeilFloorThreshold(),
        QuorumFractionLiteral(),
        DirectRandomImport(),
        WallClockCall(),
        ModuleRandomCall(),
        UnorderedIteration(),
        OutboxInProtocol(),
        PrivateApiAccess(),
        SenderStamping(),
        InboxInternalsAccess(),
        EventPlaneBypass(),
    ]


def rules_by_code() -> dict[str, Rule]:
    return {rule.code: rule for rule in all_rules()}
