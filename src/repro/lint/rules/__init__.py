"""Rule registry: every enforced invariant, keyed by stable code.

File rules (phase one) and program rules (phase two) are registered
separately: :func:`all_rules` keeps returning only per-file rules so
existing callers are unaffected, and :func:`all_program_rules` returns
the whole-program R6xx/R7xx families.
"""

from __future__ import annotations

from repro.lint.engine import ProgramRule, Rule
from repro.lint.rules.determinism import (
    DirectRandomImport,
    ModuleRandomCall,
    UnorderedIteration,
    WallClockCall,
)
from repro.lint.rules.hygiene import (
    ColumnarInternalsAccess,
    CommitteeInternalsAccess,
    InboxInternalsAccess,
    OutboxInProtocol,
    PrivateApiAccess,
    SenderStamping,
)
from repro.lint.rules.id_only import (
    ForbiddenImport,
    GlobalMembershipSurface,
    KnownPopulationParameter,
)
from repro.lint.rules.observability import EventPlaneBypass
from repro.lint.rules.program_async import AwaitSharedState
from repro.lint.rules.program_order import UnorderedEscape
from repro.lint.rules.program_taint import (
    FloatQuorumTaint,
    GlobalKnowledgeTaint,
)
from repro.lint.rules.quorum_math import (
    CeilFloorThreshold,
    FloatDivisionThreshold,
    QuorumFractionLiteral,
)
from repro.lint.rules.scenario_bypass import ScenarioLayerBypass


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [
        ForbiddenImport(),
        GlobalMembershipSurface(),
        KnownPopulationParameter(),
        FloatDivisionThreshold(),
        CeilFloorThreshold(),
        QuorumFractionLiteral(),
        DirectRandomImport(),
        WallClockCall(),
        ModuleRandomCall(),
        UnorderedIteration(),
        OutboxInProtocol(),
        PrivateApiAccess(),
        SenderStamping(),
        InboxInternalsAccess(),
        ColumnarInternalsAccess(),
        CommitteeInternalsAccess(),
        EventPlaneBypass(),
        ScenarioLayerBypass(),
    ]


def all_program_rules() -> list[ProgramRule]:
    """Fresh instances of every whole-program rule, in code order."""
    return [
        GlobalKnowledgeTaint(),
        FloatQuorumTaint(),
        UnorderedEscape(),
        AwaitSharedState(),
    ]


def rules_by_code() -> dict[str, Rule | ProgramRule]:
    out: dict[str, Rule | ProgramRule] = {
        rule.code: rule for rule in all_rules()
    }
    for rule in all_program_rules():
        out[rule.code] = rule
    return out
