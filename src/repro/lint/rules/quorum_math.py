"""R2xx — exact integer quorum arithmetic (paper §4, quorum.py).

Every threshold in the paper has the shape ``count >= n_v/3`` or
``count >= 2 n_v/3`` over *real-valued* inequalities.  The reproduction
realizes them as exact cross-multiplied integer comparisons
(``3 * count >= n_v``) so the boundary cases — ``n_v`` not divisible by
3 — match the paper precisely.  Any float division, ``math.ceil``/
``floor`` rounding, or ``0.66``-style fraction literal inside a
threshold comparison silently changes the resiliency bound, so these
rules flag them wherever they appear inside a comparison in protocol
code.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

PROTOCOL_LAYERS = ("core", "baselines")

QUORUM_HINT = (
    "use quorum.at_least_third / at_least_two_thirds "
    "(3 * count >= n_v integer form)"
)

#: Rounding helpers that truncate the exact inequality.
ROUNDING_FUNCS = frozenset({"ceil", "floor", "trunc", "round"})


def _compares(tree: ast.Module) -> Iterator[ast.Compare]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            yield node


def _within(compare: ast.Compare) -> Iterator[ast.AST]:
    """Every node inside the comparison's operand expressions."""
    for operand in (compare.left, *compare.comparators):
        yield from ast.walk(operand)


class FloatDivisionThreshold(Rule):
    """R201: no true division inside a threshold comparison."""

    code = "R201"
    name = "float-division-threshold"
    description = (
        "threshold comparisons must use cross-multiplied integer "
        "arithmetic, never '/' division"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for compare in _compares(ctx.tree):
            for node in _within(compare):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, ast.Div
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "float division inside a comparison: the quorum "
                        "boundary cases (n_v not divisible by 3) round "
                        "differently than the paper's inequality",
                        hint=QUORUM_HINT,
                    )


class CeilFloorThreshold(Rule):
    """R202: no ceil/floor/round rounding inside a threshold comparison."""

    code = "R202"
    name = "rounding-in-threshold"
    description = (
        "threshold comparisons must not round via math.ceil/floor/"
        "trunc/round"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for compare in _compares(ctx.tree):
            for node in _within(compare):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = ""
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
                if name in ROUNDING_FUNCS:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"'{name}()' inside a comparison rounds the exact "
                        "quorum inequality",
                        hint=QUORUM_HINT,
                    )


class QuorumFractionLiteral(Rule):
    """R203: no float literals standing in for n_v/3 or 2n_v/3."""

    code = "R203"
    name = "quorum-fraction-literal"
    description = (
        "float literals (0.33, 0.66, ...) must not appear in threshold "
        "comparisons"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for compare in _compares(ctx.tree):
            for node in _within(compare):
                if (
                    isinstance(node, ast.Constant)
                    and isinstance(node.value, float)
                    and node.value not in (0.0, 1.0)
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"float literal {node.value!r} in a comparison; "
                        "quorum fractions must be exact integer ratios",
                        hint=QUORUM_HINT,
                    )
