"""R1xx — the id-only model (paper §3, DESIGN.md §1).

No correct-node code may consult global knowledge of the participant
set, ``n``, or ``f``.  The only sanctioned membership surfaces inside
``repro.core``/``repro.baselines`` are the locally observed ones:
:class:`~repro.core.quorum.ViewTracker` (``n_v``, frozen views) and
:class:`~repro.sim.node.NodeApi` (``knows``/``send`` gating).  The
known-``n``/``f`` comparison baselines exist precisely to violate this —
their findings are grandfathered in the committed baseline file, which
keeps the violation visible without letting it spread.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

#: Layers bound to the id-only model.
PROTOCOL_LAYERS = ("core", "baselines")

#: Modules that expose the global population or the engine itself.
FORBIDDEN_MODULES = (
    "repro.sim.network",
    "repro.sim.membership",
    "repro.sim.runner",
    "repro.net",
    "repro.adversary",
    "repro.asyncsim",
)

#: Attribute names that only exist on network-level surfaces.
MEMBERSHIP_ATTRS = frozenset(
    {
        "nodes",
        "node_ids",
        "alive_ids",
        "correct_ids",
        "byzantine_ids",
        "all_nodes",
    }
)

#: Receiver names that smell like a configuration/engine object; reading
#: ``.n`` / ``.f`` / ``.membership`` off one of these is global knowledge.
CONFIG_BASES = frozenset(
    {"config", "cfg", "settings", "params", "options", "opts"}
)
ENGINE_BASES = frozenset(
    {"network", "net", "engine", "sim", "cluster", "runner", "world"}
)

#: Parameter names that smuggle the population size into a protocol.
POPULATION_PARAMS = frozenset({"n", "f", "members"})


def _protocol_layer(ctx: FileContext) -> bool:
    return ctx.in_layer(*PROTOCOL_LAYERS)


class ForbiddenImport(Rule):
    """R101: protocol code must not import network/population modules."""

    code = "R101"
    name = "forbidden-import"
    description = (
        "repro.core / repro.baselines may not import modules that expose "
        "the global participant set (sim.network, sim.membership, net, "
        "adversary, ...)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _protocol_layer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            modules: Iterator[tuple[ast.AST, str]]
            if isinstance(node, ast.Import):
                modules = ((node, alias.name) for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = iter([(node, node.module)])
            else:
                continue
            for stmt, module in modules:
                if any(
                    module == bad or module.startswith(bad + ".")
                    for bad in FORBIDDEN_MODULES
                ):
                    yield ctx.diagnostic(
                        stmt,
                        self.code,
                        f"protocol code imports '{module}', which exposes "
                        "the global participant set",
                        hint="use ViewTracker/NodeApi; see docs/lint.md#R101",
                    )


class GlobalMembershipSurface(Rule):
    """R102: no reads of network-level membership attributes."""

    code = "R102"
    name = "global-membership-surface"
    description = (
        "protocol code may not read global-membership attributes "
        "(.nodes, .node_ids, .all_nodes, config.n/.f, network.membership)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _protocol_layer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value.id if isinstance(node.value, ast.Name) else ""
            if node.attr in MEMBERSHIP_ATTRS:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.{node.attr}' is a global-membership surface; "
                    "correct nodes only know who has messaged them",
                    hint="track senders with ViewTracker.observe / n_v",
                )
            elif node.attr in ("n", "f") and base.lower() in CONFIG_BASES:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'{base}.{node.attr}' injects global knowledge of "
                    f"'{node.attr}' into protocol code",
                    hint="the paper's model forbids knowing n or f",
                )
            elif node.attr == "membership" and base.lower() in ENGINE_BASES:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'{base}.membership' reads the engine's membership "
                    "schedule, not a locally observed view",
                    hint="freeze a local view via ViewTracker.freeze()",
                )


class KnownPopulationParameter(Rule):
    """R103: no ``n``/``f``/``members`` parameters on protocol code."""

    code = "R103"
    name = "known-population-parameter"
    description = (
        "functions in repro.core / repro.baselines may not take the "
        "population (n, f, members) as a parameter"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return _protocol_layer(ctx)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            args = node.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
            ):
                if arg.arg in POPULATION_PARAMS:
                    yield ctx.diagnostic(
                        arg,
                        self.code,
                        f"parameter '{arg.arg}' of '{node.name}' passes "
                        "global population knowledge into protocol code",
                        hint="derive n_v from ViewTracker instead",
                    )
