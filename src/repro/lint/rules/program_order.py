"""R603 — unordered-iteration escape analysis (supersedes R304).

R304 bans iterating a freshly built set in protocol code outright.
That is sound but blunt: commutative folds over a set (counting,
``.discard()``, building another set) are perfectly deterministic, and
the real tree needs inline suppressions to say so.  R603 replaces the
ban with escape reasoning: a loop over an unordered iterable is only a
finding when something *order-sensitive* leaves the loop — an ordered
sequence is built (``.append``), a payload is emitted (``send``/
``broadcast``/``decide``), a value is returned/yielded from inside the
loop, a first-match ``break`` selects a winner, or the loop variable is
handed to a function that provably carries it to such a sink (decided
against the callee's interprocedural sink summary).

Whether the iterable is unordered is itself interprocedural: a
``frozenset`` built three calls away, an annotated ``set`` parameter,
or an ``InboxIndex.senders()`` view all taint the loop.

The selector-tie check (``max``/``min``/``next`` over an unordered view
without ``key=``) is carried over from R304 unchanged, so R603 is
strictly stronger and the engine skips R304 whenever R603 runs.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ProgramRule
from repro.lint.rules.program_taint import _diag

ORDER_LAYERS = ("core", "baselines")

#: Unordered-view producers whose ties a key-less selector may break
#: by iteration order (mirrors R304's ``TIE_METHODS``).
TIE_NAMES = frozenset(
    {
        "set",
        "frozenset",
        "senders",
        "sender_set",
        "distinct_senders",
        "keys",
        "values",
        "items",
    }
)

SELECTORS = frozenset({"max", "min", "next"})


class UnorderedEscape(ProgramRule):
    """R603: set iteration order must not escape into protocol output."""

    code = "R603"
    name = "unordered-iteration-escape"
    description = (
        "iterating an unordered collection in protocol code is only a "
        "defect when the order escapes — into an ordered sequence, an "
        "emitted payload, a returned/selected value, or a callee that "
        "carries it to such a sink"
    )

    def check_program(self, model) -> Iterable[Diagnostic]:
        analysis = model.taint("unordered")
        for facts in model.functions.values():
            if not facts.layer or facts.layer[0] not in ORDER_LAYERS:
                continue
            yield from self._check_loops(model, analysis, facts)
            yield from self._check_selectors(model, analysis, facts)

    # ------------------------------------------------------------------
    def _check_loops(self, model, analysis, facts):
        for loop in facts.loops:
            unordered = loop.intrinsic_unordered or analysis.evaluate(
                facts, loop.iter_terms
            ).intrinsic
            if not unordered:
                continue
            for escape in loop.escapes:
                if escape.kind == "call":
                    diag = self._call_escape(
                        model, analysis, facts, loop, escape
                    )
                    if diag is not None:
                        yield diag
                else:
                    yield _diag(
                        model,
                        facts,
                        escape.lineno,
                        escape.col,
                        self.code,
                        f"iteration over {loop.source_desc} escapes: "
                        f"{escape.detail}",
                        hint=(
                            "wrap the iterable in sorted(), or keep the "
                            "loop body commutative"
                        ),
                    )

    def _call_escape(self, model, analysis, facts, loop, escape):
        call = facts.calls[escape.call_index]
        target = analysis.resolve(facts, call.ref)
        if target is None:
            return None
        summary = analysis.summaries.get(target.qualname)
        if summary is None or not summary.sink_params:
            return None
        offset = (
            1 if target.is_method and target.params[:1] == ("self",) else 0
        )
        for position in escape.derived_args:
            if position + offset in summary.sink_params:
                return _diag(
                    model,
                    facts,
                    escape.lineno,
                    escape.col,
                    self.code,
                    f"iteration over {loop.source_desc} escapes: "
                    f"'{target.local_name}()' carries the loop value to "
                    "an order-sensitive sink",
                    hint=(
                        "sort the iterable before the loop, or make the "
                        "callee order-insensitive"
                    ),
                )
        return None

    # ------------------------------------------------------------------
    def _check_selectors(self, model, analysis, facts):
        for call in facts.calls:
            name = call.ref[1] if call.ref[0] == "local" else ""
            if name not in SELECTORS or call.has_key_kwarg or not call.args:
                continue
            first = call.args[0]
            hazard = any(
                term[0] == "call"
                and self._tie_source(facts, term[1])
                for term in first
            ) or analysis.evaluate(facts, first).intrinsic
            if hazard:
                yield _diag(
                    model,
                    facts,
                    call.lineno,
                    call.col,
                    self.code,
                    f"'{name}()' over an unordered view without a key= "
                    "lets iteration order break ties",
                    hint="supply key= with a total order, or sorted()",
                )

    @staticmethod
    def _tie_source(facts, index: int) -> bool:
        if index >= len(facts.calls):
            return False
        ref = facts.calls[index].ref
        terminal = ref[1] if ref[0] == "local" else ref[-1]
        return terminal in TIE_NAMES
