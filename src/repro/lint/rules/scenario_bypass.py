"""R502 — scenario-layer discipline (docs/scenarios.md).

The scenario refactor has one invariant worth a static check: run
*consumers* — the CLI and the benchmarks — construct runs through
:mod:`repro.scenario` (a declarative ``RunSpec`` materialized by
``run_spec``/``materialize``) and *only* through it.  A benchmark that
assembles a :class:`~repro.sim.network.SyncNetwork` population by hand
describes a configuration nothing else can serialize, replay, or sweep
— breaking the "one RunSpec, every harness" guarantee (DESIGN.md §4)
that any run the toolkit produces can be shipped as a JSON artifact and
re-executed bit-for-bit with ``repro run --scenario``.

The scenario package itself, the engine, and the tests are out of
scope: they *are* the construction path, or they exercise it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

#: Run-construction surface consumers must never name.
CONSTRUCTION_NAMES = frozenset(
    {
        "SyncNetwork",
        "LossyNetwork",
        "RecordingNetwork",
        "Scenario",
        "run_scenario",
    }
)

#: Attribute calls that mean a population is being assembled by hand.
CONSTRUCTION_ATTRS = frozenset({"add_correct", "add_byzantine"})

#: Modules whose import into a run consumer means direct construction.
CONSTRUCTION_MODULES = (
    "repro.sim.runner",
    "repro.sim.network",
    "repro.sim.lossy",
)

_HINT = "describe the run as a repro.scenario.RunSpec and run_spec() it"


def _names_construction_module(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in CONSTRUCTION_MODULES
    )


class ScenarioLayerBypass(Rule):
    """R502: the CLI and benchmarks build runs only via repro.scenario."""

    code = "R502"
    name = "scenario-layer-bypass"
    description = (
        "run consumers (benchmarks/, repro/cli.py) may not construct "
        "SyncNetwork populations or Scenario objects by hand; runs are "
        "declared as repro.scenario.RunSpec and materialized there"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # layer_of() gives benchmarks files bare-filename layers, so
        # scope by path: anything under benchmarks/, plus the CLI.
        return "benchmarks" in ctx.path.parts or ctx.is_module("cli.py")

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if _names_construction_module(module):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"run consumer imports from '{module}' — "
                        "run construction is scenario-layer territory",
                        hint=_HINT,
                    )
                    continue
                for alias in node.names:
                    if alias.name in CONSTRUCTION_NAMES:
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"run consumer imports '{alias.name}' — "
                            "run construction is scenario-layer territory",
                            hint=_HINT,
                        )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if _names_construction_module(alias.name):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"run consumer imports '{alias.name}' — "
                            "run construction is scenario-layer territory",
                            hint=_HINT,
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in CONSTRUCTION_NAMES
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"run consumer calls {node.func.id} directly",
                        hint=_HINT,
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in CONSTRUCTION_ATTRS
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"run consumer assembles a population via "
                        f".{node.func.attr}()",
                        hint=_HINT,
                    )
