"""R6xx (taint) — interprocedural id-only and quorum-math invariants.

These are the whole-program versions of R1xx and R2xx: instead of
spotting a forbidden *expression*, they follow the forbidden *value*
through any chain of calls, aliases, and containers the dataflow
extractor recorded, and report where it crosses into protocol code.

R601 closes the helper-function hole in the id-only model (paper §3):
a membership set or population parameter laundered through
``sim``/``net``/``adversary`` helpers is flagged at the boundary where
it enters ``core/`` — either as a call whose non-core callee returns
global knowledge, or as a tainted argument handed to a core function.

R602 generalizes the integer-quorum rules: any float-producing
expression (division, ``statistics``, float literals, ``float``-typed
parameters) that *flows* into a count-like threshold comparison in
``core/``/``baselines/`` is flagged, even when the float is born
several calls away.  Syntactic floats lexically inside the comparison
are left to R201/R203 so one defect is reported once.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import ProgramRule

PROTOCOL_LAYERS = ("core",)
QUORUM_LAYERS = ("core", "baselines")


def _in_layers(facts, layers: tuple[str, ...]) -> bool:
    return bool(facts.layer) and facts.layer[0] in layers


def _diag(model, facts, lineno: int, col: int, code: str,
          message: str, hint: str = "") -> Diagnostic:
    entry = model.entry_for(facts)
    ctx = entry.ctx
    return Diagnostic(
        path=ctx.display_path,
        line=lineno,
        col=col + 1,
        code=code,
        message=message,
        source_line=ctx.source_line(lineno).strip(),
        hint=hint,
    )


class GlobalKnowledgeTaint(ProgramRule):
    """R601: global membership knowledge must not flow into ``core/``.

    Two boundary crossings are reported: a call *inside* core whose
    resolved non-core callee returns membership taint, and a call
    *outside* core that passes a membership-tainted argument to a core
    function.  Syntactic reads inside core itself stay R102/R103's
    findings.  ``baselines/`` is exempt by design — the classical
    known-``n`` protocols exist to be compared against.
    """

    code = "R601"
    name = "global-knowledge-taint"
    description = (
        "membership sets and population parameters must not reach core/ "
        "through any chain of calls, aliases, or containers (paper §3)"
    )

    def check_program(self, model) -> Iterable[Diagnostic]:
        analysis = model.taint("membership")
        for facts in model.functions.values():
            in_core = _in_layers(facts, PROTOCOL_LAYERS)
            for call in facts.calls:
                target = analysis.resolve(facts, call.ref)
                if target is None:
                    continue
                target_facts = model.functions.get(target.qualname)
                target_in_core = target_facts is not None and _in_layers(
                    target_facts, PROTOCOL_LAYERS
                )
                summary = analysis.summaries.get(target.qualname)
                if (
                    in_core
                    and not target_in_core
                    and summary is not None
                    and summary.ret.intrinsic
                ):
                    yield _diag(
                        model,
                        facts,
                        call.lineno,
                        call.col,
                        self.code,
                        f"'{_callee_name(call)}()' returns global "
                        "membership knowledge into core protocol code",
                        hint=(
                            "core/ is id-only: nodes learn peers from "
                            "received messages, never from the runtime"
                        ),
                    )
                    continue
                if target_in_core and not in_core:
                    for param_index, terms in analysis.arg_param_map(
                        call, target
                    ):
                        value = analysis.evaluate(facts, terms)
                        if value.intrinsic:
                            param = target.params[param_index]
                            yield _diag(
                                model,
                                facts,
                                call.lineno,
                                call.col,
                                self.code,
                                "membership-tainted value passed into "
                                f"core '{target.local_name}()' "
                                f"(parameter '{param}')",
                                hint=(
                                    "hand core code message-derived ids "
                                    "only, not runtime membership"
                                ),
                            )
                            break


class FloatQuorumTaint(ProgramRule):
    """R602: float-tainted values must not reach quorum comparisons.

    Reported at the comparison when the float arrives through dataflow
    (a name, a call chain, a ``float``-typed parameter), and at the
    call site when a caller feeds a float into a parameter that a core
    function compares against a count.  Count-likeness (``len()``,
    ``count``/``tally``/``quorum``-style names) keeps legitimate
    real-valued math — approximate agreement — out of scope.
    """

    code = "R602"
    name = "float-quorum-taint"
    description = (
        "quorum threshold comparisons must stay in exact integer "
        "arithmetic; float taint must not reach them through any call "
        "chain (use 3 * count >= n_v style tests)"
    )

    def check_program(self, model) -> Iterable[Diagnostic]:
        analysis = model.taint("float")
        seen: set[tuple[str, int, int]] = set()
        for facts in model.functions.values():
            if _in_layers(facts, QUORUM_LAYERS):
                for compare in facts.compares:
                    if not compare.countlike:
                        continue
                    value = analysis.evaluate(facts, compare.terms)
                    if not value.intrinsic:
                        continue
                    key = (facts.module, compare.lineno, compare.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield _diag(
                        model,
                        facts,
                        compare.lineno,
                        compare.col,
                        self.code,
                        "count-like comparison receives a float-tainted "
                        "value through dataflow",
                        hint=(
                            "keep quorum tests exact: "
                            "3 * count >= n_v, never count >= n_v / 3"
                        ),
                    )
            for call in facts.calls:
                target = analysis.resolve(facts, call.ref)
                if target is None:
                    continue
                target_facts = model.functions.get(target.qualname)
                if target_facts is None or not _in_layers(
                    target_facts, QUORUM_LAYERS
                ):
                    continue
                summary = analysis.summaries.get(target.qualname)
                if summary is None or not summary.sink_params:
                    continue
                for param_index, terms in analysis.arg_param_map(
                    call, target
                ):
                    if param_index not in summary.sink_params:
                        continue
                    value = analysis.evaluate(facts, terms)
                    if not value.intrinsic:
                        continue
                    key = (facts.module, call.lineno, call.col)
                    if key in seen:
                        continue
                    seen.add(key)
                    param = target.params[param_index]
                    yield _diag(
                        model,
                        facts,
                        call.lineno,
                        call.col,
                        self.code,
                        f"float-tainted argument for '{param}' reaches a "
                        f"quorum comparison inside "
                        f"'{target.local_name}()'",
                        hint=(
                            "pass exact integers; rewrite the threshold "
                            "as 3 * count >= n_v"
                        ),
                    )
                    break


def _callee_name(call) -> str:
    ref = call.ref
    if ref[0] == "local":
        return ref[1]
    if ref[0] == "method":
        return f"{ref[1]}.{ref[2]}"
    if ref[0] == "attr":
        return f"{ref[1]}.{ref[2]}"
    return ref[-1] or "<call>"
