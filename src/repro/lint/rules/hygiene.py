"""R4xx — protocol hygiene (paper §3; src/repro/sim/node.py).

The model's unforgeable-sender guarantee is implemented by a single
choke point: protocols describe sends through
:class:`~repro.sim.node.NodeApi`, and the *network* stamps the sender
id (``Send.stamped``) at delivery.  A protocol that builds an
:class:`~repro.sim.message.Outbox` itself, pokes the api's private
state, or stamps messages directly would bypass the prior-contact check
on direct sends and could forge sender identities — exactly what the
paper assumes impossible.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic
from repro.lint.engine import FileContext, Rule

PROTOCOL_LAYERS = ("core", "baselines")

#: NodeApi / engine internals that protocol code must not reach into.
#: ``_trace_sink`` is the api's handle onto the event plane — grabbing
#: it would let a protocol publish events the engine never produced.
PRIVATE_ATTRS = frozenset(
    {"_outbox", "_known_contacts", "_nodes", "_trace_sink"}
)

#: Inbox / InboxIndex internals.  The engine shares one index across all
#: recipients of a round's broadcasts; protocol code that reaches past
#: the query methods could observe (or worse, mutate) cache state that
#: other nodes alias.  ``_derived`` and ``_restrictions`` are the
#: quorum-tally plane's memo tables — protocols populate them only
#: through ``derive()`` / ``restricted_to()``, never by direct access
#: (a write would leak one node's per-node state into every aliasing
#: recipient).  ``_best`` is deliberately absent: it is also a
#: legitimate protocol-layer method name (EarlyConsensus._best).
INBOX_PRIVATE_ATTRS = frozenset(
    {"_messages", "_index", "_derived", "_restrictions"}
)

#: Columnar round-plane internals (src/repro/sim/columnar.py).  The
#: engine stages every broadcast of a round into one shared
#: struct-of-arrays store; a ColumnarIndex is a lazy view over it.
#: Protocol code that reads the raw columns, the payload/kind/instance
#: intern tables, or the staging dedup state would couple itself to the
#: storage layout (and any write would corrupt every aliasing
#: recipient).  Protocols see messages, never columns.
COLUMNAR_PRIVATE_ATTRS = frozenset(
    {
        "_cols",
        "_columns",
        "_payload_ids",
        "_kind_ids",
        "_instance_ids",
        "_batches",
        "_batch_aliases",
        "_sender_batches",
        "_scalar_ki",
        "_sender_scalar_keys",
        "_materialized",
    }
)

#: Public on the columnar types for the *engine's* sake, but off-limits
#: to protocols when reached through an inbox's index.
COLUMNAR_VIEW_ATTRS = frozenset({"columns", "plane"})

#: Committee-dissemination internals (src/repro/core/implicit_agreement
#: .py).  ``_gossip`` is a protocol's private OutcomeGossip state and
#: the vote tables inside it are cumulative per-node folds; other
#: protocol code that read or wrote them would couple itself to the
#: dissemination bookkeeping (and could fake an adoption quorum).  Only
#: the defining module touches these.
COMMITTEE_PRIVATE_ATTRS = frozenset(
    {
        "_gossip",
        "_size_override",
        "decision_votes",
        "outcome_votes",
        "linger_left",
        "last_query",
    }
)


class OutboxInProtocol(Rule):
    """R401: protocols never import or construct an Outbox."""

    code = "R401"
    name = "outbox-in-protocol"
    description = (
        "protocol code may not import or instantiate Outbox; sends go "
        "through NodeApi.broadcast / NodeApi.send"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == "Outbox" for alias in node.names
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "importing Outbox into protocol code bypasses the "
                    "NodeApi send discipline",
                    hint="use api.broadcast / api.send",
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "Outbox"
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "protocol code constructs an Outbox directly",
                    hint="use api.broadcast / api.send",
                )


class PrivateApiAccess(Rule):
    """R402: no reaching into NodeApi/engine private state."""

    code = "R402"
    name = "private-api-access"
    description = (
        "protocol code may not touch NodeApi/engine internals "
        "(_outbox, _known_contacts, _nodes, _trace_sink)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in PRIVATE_ATTRS
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.{node.attr}' is private engine/api state; the "
                    "prior-contact and stamping guarantees depend on it "
                    "staying untouched",
                    hint="use NodeApi.knows / NodeApi.send",
                )


class SenderStamping(Rule):
    """R403: only the network stamps sender ids onto the wire."""

    code = "R403"
    name = "sender-stamping"
    description = (
        "protocol code may not call .stamped(); sender ids are applied "
        "by the network so they cannot be forged"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "stamped"
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "calling .stamped() in protocol code forges the "
                    "network's sender-stamping step",
                    hint="the engine stamps senders at delivery",
                )


class InboxInternalsAccess(Rule):
    """R404: protocols query inboxes, never their shared internals."""

    code = "R404"
    name = "inbox-internals-access"
    description = (
        "protocol code may not touch Inbox/InboxIndex internals "
        "(_messages, _index, the _derived/_restrictions tally-plane "
        "memos, or index cache attributes); the index is shared across "
        "every recipient of a round's broadcasts"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in INBOX_PRIVATE_ATTRS:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.{node.attr}' is private Inbox/InboxIndex state, "
                    "aliased across nodes by the shared per-round index",
                    hint="use filter/senders/count/best_payload/derive/"
                    "restricted_to/merged_with",
                )
            elif (
                node.attr.startswith("_")
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "index"
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.index.{node.attr}' reaches into the shared "
                    "InboxIndex cache internals",
                    hint="use the Inbox query methods",
                )


class ColumnarInternalsAccess(Rule):
    """R405: protocols see messages, never the columnar round plane."""

    code = "R405"
    name = "columnar-internals-access"
    description = (
        "protocol code may not touch columnar round-plane internals "
        "(_cols/_columns, the payload/kind/instance intern tables, "
        "staging dedup state, or index.columns/index.plane); the "
        "columns are one shared per-round store and protocols must "
        "stay storage-agnostic"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS)

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in COLUMNAR_PRIVATE_ATTRS:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.{node.attr}' is columnar round-plane storage, "
                    "shared by every recipient of the round's broadcasts",
                    hint="use the Inbox query methods; the columnar "
                    "plane is an engine implementation detail",
                )
            elif node.attr in COLUMNAR_VIEW_ATTRS and (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "index"
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.index.{node.attr}' exposes the raw column "
                    "store behind the shared per-round index",
                    hint="use the Inbox query methods",
                )


class CommitteeInternalsAccess(Rule):
    """R406: committee dissemination state stays in its own module."""

    code = "R406"
    name = "committee-internals-access"
    description = (
        "protocol code outside core/implicit_agreement.py may not touch "
        "the sampled variants' dissemination internals (_gossip, "
        "_size_override, or the OutcomeGossip vote tables); adoption "
        "goes through the decision/outcome message quorums, never by "
        "reading another protocol object's bookkeeping"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_layer(*PROTOCOL_LAYERS) and not ctx.is_module(
            "core/implicit_agreement.py"
        )

    def check(self, ctx: FileContext) -> Iterable[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in COMMITTEE_PRIVATE_ATTRS
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"'.{node.attr}' is committee-dissemination state "
                    "private to core/implicit_agreement.py",
                    hint="adopt outcomes via the decision/outcome "
                    "message quorums",
                )
