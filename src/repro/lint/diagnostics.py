"""Diagnostic records and output formatting for the lint pass."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding: a rule violated at a specific source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: The stripped source line, used for baseline fingerprinting and
    #: for human-readable baseline entries.
    source_line: str = ""
    #: Optional pointer at the sanctioned alternative.
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


@dataclass(slots=True)
class Summary:
    """Aggregate counts for one lint run."""

    files: int = 0
    findings: int = 0
    suppressed: int = 0
    baselined: int = 0
    by_code: dict[str, int] = field(default_factory=dict)


def format_text(diagnostics: list[Diagnostic], summary: Summary) -> str:
    """Human-readable report: one ``path:line:col: CODE message`` per line."""
    lines = [d.render() for d in sorted(diagnostics, key=Diagnostic.sort_key)]
    tail = (
        f"{summary.findings} finding(s) in {summary.files} file(s)"
        f" ({summary.suppressed} suppressed, {summary.baselined} baselined)"
    )
    if lines:
        return "\n".join(lines) + "\n" + tail
    return tail


def format_json(diagnostics: list[Diagnostic], summary: Summary) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    payload = {
        "findings": [
            asdict(d) for d in sorted(diagnostics, key=Diagnostic.sort_key)
        ],
        "summary": {
            "files": summary.files,
            "findings": summary.findings,
            "suppressed": summary.suppressed,
            "baselined": summary.baselined,
            "by_code": dict(sorted(summary.by_code.items())),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
