"""SARIF 2.1.0 output — so findings annotate PR diffs in CI.

One run, one ``repro.lint`` tool entry, one rule descriptor per rule
that actually fired (plus every registered rule, so suppressed runs
still document the rule set).  Paths are emitted repo-relative with
forward slashes, which is what the GitHub code-scanning upload expects.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.diagnostics import Diagnostic, Summary

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str) -> str:
    candidate = Path(path)
    if candidate.is_absolute():
        try:
            candidate = candidate.relative_to(Path.cwd())
        except ValueError:
            pass
    return candidate.as_posix()


def format_sarif(
    diagnostics: list[Diagnostic],
    summary: Summary,
    rules: list | None = None,
) -> str:
    """Render one lint run as a SARIF 2.1.0 document."""
    descriptors: dict[str, dict] = {}
    for rule in rules or []:
        descriptors[rule.code] = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
        }
    results = []
    for diag in sorted(diagnostics, key=Diagnostic.sort_key):
        if diag.code not in descriptors:
            descriptors[diag.code] = {
                "id": diag.code,
                "name": diag.code.lower(),
                "shortDescription": {"text": diag.message},
            }
        message = diag.message
        if diag.hint:
            message = f"{message} ({diag.hint})"
        results.append(
            {
                "ruleId": diag.code,
                "level": "error",
                "message": {"text": message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": _relative_uri(diag.path),
                            },
                            "region": {
                                "startLine": diag.line,
                                "startColumn": max(diag.col, 1),
                            },
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/lint.md"
                        ),
                        "rules": [
                            descriptors[code]
                            for code in sorted(descriptors)
                        ],
                    }
                },
                "results": results,
                "properties": {
                    "files": summary.files,
                    "findings": summary.findings,
                    "suppressed": summary.suppressed,
                    "baselined": summary.baselined,
                },
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
