"""Unit tests for the adaptive adversary's classification logic."""

import random

from repro.adversary import AdaptiveStrategy
from repro.sim.inbox import Inbox
from repro.sim.message import Message
from repro.sim.network import AdversaryView


def view(inbox_msgs=(), round_no=3, node_id=50):
    nodes = frozenset({1, 2, 3, 4, node_id})
    return AdversaryView(
        node_id=node_id,
        round=round_no,
        inbox=Inbox(inbox_msgs),
        all_nodes=nodes,
        correct_nodes=nodes - {node_id},
        byzantine_nodes=frozenset({node_id}),
        rng=random.Random(0),
        correct_traffic=(),
    )


class TestAdaptiveStrategy:
    def test_announces_once(self):
        strategy = AdaptiveStrategy()
        first = list(strategy.on_round(view(round_no=1)))
        assert {s.kind for s in first} == {"init", "present"}
        second = list(strategy.on_round(view(round_no=2)))
        assert "init" not in {s.kind for s in second}

    def test_attacks_value_traffic(self):
        strategy = AdaptiveStrategy()
        strategy.on_round(view(round_no=1))
        sends = list(
            strategy.on_round(view([Message(1, "value", 3.0)]))
        )
        payloads = {s.payload for s in sends if s.kind == "value"}
        assert payloads == {-1e9, 1e9}

    def test_mirrors_quorum_kinds_with_split(self):
        strategy = AdaptiveStrategy()
        strategy.on_round(view(round_no=1))
        inbox = [
            Message(1, "prefer", 0),
            Message(2, "prefer", 0),
            Message(3, "prefer", 1),
        ]
        sends = [
            s
            for s in strategy.on_round(view(inbox))
            if s.kind == "prefer"
        ]
        assert {s.payload for s in sends} == {0, 1}
        assert len(sends) == 5  # one per node

    def test_preserves_instance_tags(self):
        strategy = AdaptiveStrategy()
        strategy.on_round(view(round_no=1))
        inbox = [Message(1, "input", 5, instance="id-x")]
        sends = [
            s for s in strategy.on_round(view(inbox)) if s.kind == "input"
        ]
        assert all(s.instance == "id-x" for s in sends)

    def test_forges_echo_for_phantom(self):
        strategy = AdaptiveStrategy(phantom_base=10**8)
        strategy.on_round(view(round_no=1))
        sends = list(strategy.on_round(view([Message(1, "echo", 2)])))
        echoes = [s for s in sends if s.kind == "echo"]
        assert echoes and echoes[0].payload == 10**8 + 50

    def test_quiet_when_nothing_to_mimic(self):
        strategy = AdaptiveStrategy()
        strategy.on_round(view(round_no=1))
        assert list(strategy.on_round(view())) == []
