"""Unit tests for the Byzantine strategy implementations."""

import random

from repro.adversary import (
    CrashStrategy,
    EchoForgerStrategy,
    EquivocatorStrategy,
    MembershipLiarStrategy,
    PresentOnlyStrategy,
    QuorumSplitterStrategy,
    RandomNoiseStrategy,
    SilentStrategy,
    ValueInjectorStrategy,
)
from repro.adversary.simple import HalfCrashStrategy
from repro.sim.inbox import Inbox
from repro.sim.message import BROADCAST
from repro.sim.network import AdversaryView
from repro.sim.node import Protocol


class Beacon(Protocol):
    """Honest protocol that broadcasts a value every round."""

    def __init__(self, value=1):
        super().__init__()
        self.value = value

    def on_round(self, api, inbox):
        api.broadcast("input", self.value)


def view(round_no=1, node_id=50, all_nodes=(1, 2, 3, 4, 50), inbox=()):
    nodes = frozenset(all_nodes)
    return AdversaryView(
        node_id=node_id,
        round=round_no,
        inbox=Inbox(inbox),
        all_nodes=nodes,
        correct_nodes=nodes - {node_id},
        byzantine_nodes=frozenset({node_id}),
        rng=random.Random(0),
        correct_traffic=(),
    )


class TestSilentAndPresent:
    def test_silent_sends_nothing_ever(self):
        strategy = SilentStrategy()
        for round_no in range(1, 5):
            assert list(strategy.on_round(view(round_no))) == []

    def test_present_only_announces_once(self):
        strategy = PresentOnlyStrategy()
        first = list(strategy.on_round(view(1)))
        assert len(first) == 1
        assert first[0].kind == "present"
        assert first[0].dest is BROADCAST
        assert list(strategy.on_round(view(2))) == []


class TestCrash:
    def test_honest_before_crash(self):
        strategy = CrashStrategy(Beacon(), crash_round=3)
        sends = list(strategy.on_round(view(1)))
        assert sends and sends[0].kind == "input"

    def test_silent_from_crash_round(self):
        strategy = CrashStrategy(Beacon(), crash_round=2)
        assert list(strategy.on_round(view(1)))
        assert list(strategy.on_round(view(2))) == []
        assert list(strategy.on_round(view(3))) == []

    def test_half_crash_partial_broadcast(self):
        strategy = HalfCrashStrategy(Beacon(), crash_round=2)
        sends = list(strategy.on_round(view(2)))
        # broadcast exploded to only the lower half of 5 nodes
        assert len(sends) == 2
        assert all(s.dest is not BROADCAST for s in sends)
        assert list(strategy.on_round(view(3))) == []


class TestEquivocator:
    def test_splits_values_between_halves(self):
        strategy = EquivocatorStrategy(Beacon(1))
        sends = list(strategy.on_round(view(1)))
        by_dest = {s.dest: s.payload for s in sends}
        assert len(by_dest) == 5
        payloads = set(by_dest.values())
        assert payloads == {1, 0}  # 1 mutated to 0 for binary

    def test_respects_kind_filter(self):
        strategy = EquivocatorStrategy(
            Beacon(1), kinds=frozenset({"other"})
        )
        sends = list(strategy.on_round(view(1)))
        assert len(sends) == 1
        assert sends[0].dest is BROADCAST  # untouched

    def test_payload_free_messages_untouched(self):
        class InitOnly(Protocol):
            def on_round(self, api, inbox):
                api.broadcast("init")

        strategy = EquivocatorStrategy(InitOnly())
        sends = list(strategy.on_round(view(1)))
        assert len(sends) == 1
        assert sends[0].kind == "init"

    def test_mutations(self):
        from repro.adversary.equivocator import _default_mutate

        assert _default_mutate(0) == 1
        assert _default_mutate(1) == 0
        assert _default_mutate(5) == -5
        assert _default_mutate(2.5) == -2.5
        assert _default_mutate("v") == "v'"
        assert _default_mutate((0, "a")) == (1, "a'")
        assert _default_mutate(None) is None


class TestForgers:
    def test_echo_forger_emits_forged_echo(self):
        strategy = EchoForgerStrategy()
        sends = list(strategy.on_round(view(1)))
        kinds = [s.kind for s in sends]
        assert "present" in kinds
        assert "echo" in kinds
        echo = next(s for s in sends if s.kind == "echo")
        assert echo.payload == ("forged", 1)  # blames smallest correct id

    def test_echo_forger_announces_once(self):
        strategy = EchoForgerStrategy()
        strategy.on_round(view(1))
        sends = list(strategy.on_round(view(2)))
        assert [s.kind for s in sends] == ["echo"]

    def test_membership_liar_phantoms(self):
        strategy = MembershipLiarStrategy(phantoms=3)
        sends = list(strategy.on_round(view(1)))
        echoes = [s for s in sends if s.kind == "echo"]
        assert len(echoes) == 3
        assert all(p.payload >= 10**7 for p in echoes)

    def test_membership_liar_partial_present(self):
        strategy = MembershipLiarStrategy(phantoms=0)
        sends = list(strategy.on_round(view(1)))
        presents = [s for s in sends if s.kind == "present"]
        assert len(presents) == 2  # lower half of 5 nodes
        assert list(strategy.on_round(view(2))) == []  # one-time lie


class TestInjectorAndNoise:
    def test_value_injector_splits_extremes(self):
        strategy = ValueInjectorStrategy(low=-9.0, high=9.0)
        sends = list(strategy.on_round(view(1)))
        payloads = {s.payload for s in sends}
        assert payloads == {-9.0, 9.0}
        assert len(sends) == 5

    def test_noise_respects_rate_and_vocabulary(self):
        strategy = RandomNoiseStrategy(rate=4, vocabulary=("junk",))
        sends = list(strategy.on_round(view(1)))
        assert len(sends) == 4
        assert all(s.kind == "junk" for s in sends)

    def test_noise_deterministic_given_rng(self):
        a = list(RandomNoiseStrategy(rate=5).on_round(view(1)))
        b = list(RandomNoiseStrategy(rate=5).on_round(view(1)))
        assert a == b


class TestSplitter:
    def test_opinion_kinds_split(self):
        strategy = QuorumSplitterStrategy(Beacon(1), value_a="a", value_b="b")
        sends = list(strategy.on_round(view(1)))
        assert {s.payload for s in sends} == {"a", "b"}
        assert len(sends) == 5  # one per node, split across the halves
        by_dest = {s.dest: s.payload for s in sends}
        ordered = sorted(by_dest)
        assert all(by_dest[d] == "a" for d in ordered[:2])
        assert all(by_dest[d] == "b" for d in ordered[2:])

    def test_non_opinion_kinds_pass_through(self):
        class PresentBeacon(Protocol):
            def on_round(self, api, inbox):
                api.broadcast("present", "x")

        strategy = QuorumSplitterStrategy(PresentBeacon())
        sends = list(strategy.on_round(view(1)))
        assert len(sends) == 1
        assert sends[0].payload == "x"
