"""Tests for the strategy registry."""

import pytest

from repro.adversary import STRATEGY_BUILDERS, build_strategy
from repro.adversary.registry import WRAPPING_STRATEGIES
from repro.core.consensus import EarlyConsensus
from repro.errors import ConfigurationError


def honest():
    return EarlyConsensus(0)


class TestBuildStrategy:
    @pytest.mark.parametrize("name", STRATEGY_BUILDERS)
    def test_every_registered_name_builds(self, name):
        factory = build_strategy(name, protocol_factory=honest)
        strategy = factory(42, 0)
        assert hasattr(strategy, "on_round")

    @pytest.mark.parametrize("name", sorted(WRAPPING_STRATEGIES))
    def test_wrapping_strategies_require_protocol_factory(self, name):
        with pytest.raises(ConfigurationError):
            build_strategy(name)

    def test_unknown_name_raises_at_build_time(self):
        factory = build_strategy("no-such-strategy")
        with pytest.raises(ConfigurationError):
            factory(1, 0)

    def test_crash_round_staggered_by_index(self):
        factory = build_strategy("crash", protocol_factory=honest)
        first, second = factory(1, 0), factory(2, 1)
        assert second.crash_round == first.crash_round + 1

    def test_kwargs_forwarded(self):
        factory = build_strategy("noise", rate=7)
        strategy = factory(1, 0)
        assert strategy._rate == 7

    def test_fresh_instances_per_call(self):
        factory = build_strategy("silent")
        assert factory(1, 0) is not factory(2, 1)
