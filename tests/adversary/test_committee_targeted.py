"""Adversaries aimed squarely at the sampled committee (satellite of
the committee-sampling PR).

The sharpest attack on a committee-sampled protocol is not noise at
random nodes — it is equivocation and quorum-splitting delivered to the
*committee members specifically*, since only their opinions move the
decision.  These tests compute the committee with the same seed the
protocol uses (the sampler is public and deterministic, so a real
adversary can too) and point the targeted strategies at it, with
f < n/3 overall and fewer than a third of the committee Byzantine.
Agreement must hold regardless.
"""

import random

import pytest

from repro.adversary import EquivocatorStrategy, QuorumSplitterStrategy
from repro.analysis.monitor import AgreementMonitor
from repro.core.committee import sample_committee
from repro.core.implicit_agreement import CommitteeConsensus
from repro.obs.bus import EventBus
from repro.sim.inbox import Inbox
from repro.sim.network import AdversaryView, SyncNetwork
from repro.sim.node import Protocol
from repro.sim.rng import make_rng, sparse_ids

COMMITTEE = 13
POPULATION = 30


def targeted_network(seed, strategy_builder, byz_in_committee=4):
    """Population of 30, committee of 13, f Byzantine ids *inside* it."""
    ids = sparse_ids(POPULATION, make_rng(seed))
    committee = sample_committee(ids, seed=seed, size=COMMITTEE)
    byzantine = set(sorted(committee)[:byz_in_committee])
    assert 3 * len(byzantine) < COMMITTEE
    assert 3 * len(byzantine) < POPULATION
    bus = EventBus()
    AgreementMonitor().attach(bus)
    net = SyncNetwork(seed=seed, bus=bus)
    for index, node_id in enumerate(ids):
        if node_id in byzantine:
            net.add_byzantine(node_id, strategy_builder(seed, committee))
        else:
            net.add_correct(
                node_id,
                CommitteeConsensus(
                    0 if index % 8 else 1,
                    sampling_seed=seed,
                    committee_size=COMMITTEE,
                ),
            )
    return net, ids, committee, byzantine


def equivocator(seed, committee):
    return EquivocatorStrategy(
        CommitteeConsensus(
            1, sampling_seed=seed, committee_size=COMMITTEE
        ),
        targets=committee,
    )


def splitter(seed, committee):
    return QuorumSplitterStrategy(
        CommitteeConsensus(
            0, sampling_seed=seed, committee_size=COMMITTEE
        ),
        value_a=0,
        value_b=1,
        targets=committee,
    )


class TestCommitteeTargetedAdversaries:
    @pytest.mark.parametrize("seed", range(5))
    def test_equivocator_aimed_at_committee(self, seed):
        net, ids, _committee, byzantine = targeted_network(
            seed, equivocator
        )
        net.run(80)
        outputs = net.outputs()
        assert len(outputs) == len(ids) - len(byzantine)
        assert len(set(outputs.values())) == 1

    @pytest.mark.parametrize("seed", range(5))
    def test_splitter_aimed_at_committee(self, seed):
        net, ids, _committee, byzantine = targeted_network(seed, splitter)
        net.run(80)
        outputs = net.outputs()
        assert len(outputs) == len(ids) - len(byzantine)
        assert len(set(outputs.values())) == 1


class Beacon(Protocol):
    def __init__(self, value=1):
        super().__init__()
        self.value = value

    def on_round(self, api, inbox):
        api.broadcast("input", self.value)


def adversary_view(all_nodes, node_id=99):
    nodes = frozenset(all_nodes) | {node_id}
    return AdversaryView(
        node_id=node_id,
        round=1,
        inbox=Inbox(()),
        all_nodes=nodes,
        correct_nodes=nodes - {node_id},
        byzantine_nodes=frozenset({node_id}),
        rng=random.Random(0),
        correct_traffic=(),
    )


class TestTargetedTransformUnits:
    def test_equivocator_splits_only_targets(self):
        strategy = EquivocatorStrategy(
            Beacon(0), targets=frozenset({1, 2, 3, 4})
        )
        sends = list(strategy.on_round(adversary_view(range(1, 9))))
        by_dest = {s.dest: s.payload for s in sends}
        # Victims 1..4 split between the clean and twisted stories.
        assert [by_dest[d] for d in (1, 2)] == [0, 0]
        assert [by_dest[d] for d in (3, 4)] == [1, 1]
        # Bystanders 5..8 all get the clean payload.
        assert {by_dest[d] for d in (5, 6, 7, 8)} == {0}

    def test_splitter_keeps_one_voice_for_bystanders(self):
        strategy = QuorumSplitterStrategy(
            Beacon(7),
            value_a="a",
            value_b="b",
            targets=frozenset({1, 2, 3, 4}),
        )
        sends = list(strategy.on_round(adversary_view(range(1, 9))))
        by_dest = {s.dest: s.payload for s in sends}
        assert [by_dest[d] for d in (1, 2)] == ["a", "a"]
        assert [by_dest[d] for d in (3, 4)] == ["b", "b"]
        assert {by_dest[d] for d in (5, 6, 7, 8)} == {"a"}

    def test_no_targets_means_everyone_is_split(self):
        strategy = EquivocatorStrategy(Beacon(0))
        sends = list(strategy.on_round(adversary_view(range(1, 5))))
        by_dest = {s.dest: s.payload for s in sends}
        # All-nodes split (self included): lower half clean, upper twisted.
        assert [by_dest[d] for d in (1, 2)] == [0, 0]
        assert [by_dest[d] for d in (3, 4)] == [1, 1]
