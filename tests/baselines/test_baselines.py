"""Tests for the classical known-n,f baselines."""

import pytest

from repro.adversary import QuorumSplitterStrategy, SilentStrategy
from repro.baselines import (
    DolevApproxAgreement,
    KnownFRotatingCoordinator,
    PhaseKingConsensus,
    SrikanthTouegBroadcast,
)
from repro.baselines.dolev_approx import trim_f_and_midpoint
from repro.sim.network import SyncNetwork
from repro.sim.rng import consecutive_ids


def build_network(
    n, f, protocol_builder, strategy_builder=None, seed=0, rushing=False
):
    """Consecutive-id network: the luxury the baselines assume."""
    ids = consecutive_ids(n)
    members = list(ids)
    net = SyncNetwork(seed=seed, rushing=rushing)
    for node_id in ids[: n - f]:
        net.add_correct(node_id, protocol_builder(node_id, members))
    for node_id in ids[n - f:]:
        strategy = (
            strategy_builder(node_id) if strategy_builder else SilentStrategy()
        )
        net.add_byzantine(node_id, strategy)
    return net, members


class TestSrikanthToueg:
    def test_correct_sender_accepted_by_all(self):
        net, _ = build_network(
            9,
            2,
            lambda nid, members: SrikanthTouegBroadcast(
                0, 9, 2, "m" if nid == 0 else None
            ),
        )
        net.run(8, until_all_halted=False)
        assert all(
            p.has_accepted("m") for p in net.protocols().values()
        )

    def test_rejects_bad_resiliency(self):
        with pytest.raises(ValueError):
            SrikanthTouegBroadcast(0, 6, 2)

    def test_acceptance_by_round_three(self):
        net, _ = build_network(
            7,
            1,
            lambda nid, members: SrikanthTouegBroadcast(
                0, 7, 1, "m" if nid == 0 else None
            ),
        )
        net.run(6, until_all_halted=False)
        for protocol in net.protocols().values():
            assert protocol.accepted[("m", 0)] <= 3


class TestPhaseKing:
    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_mixed_inputs(self, seed):
        net, members = build_network(
            10,
            3,
            lambda nid, members: PhaseKingConsensus(nid % 2, members, 3),
            strategy_builder=lambda nid: QuorumSplitterStrategy(
                PhaseKingConsensus(0, consecutive_ids(10), 3)
            ),
            seed=seed,
            rushing=True,
        )
        net.run(60)
        outputs = set(net.outputs().values())
        assert len(outputs) == 1, net.outputs()

    @pytest.mark.parametrize("value", [0, 1])
    def test_validity(self, value):
        net, members = build_network(
            7,
            2,
            lambda nid, members: PhaseKingConsensus(value, members, 2),
        )
        net.run(40)
        assert set(net.outputs().values()) == {value}

    def test_runs_exactly_f_plus_one_phases(self):
        net, members = build_network(
            7, 2, lambda nid, members: PhaseKingConsensus(0, members, 2)
        )
        rounds = net.run(40)
        assert rounds == 4 * 3  # (f+1) phases of 4 rounds

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            PhaseKingConsensus(7, [1, 2, 3, 4], 1)

    def test_rejects_bad_resiliency(self):
        with pytest.raises(ValueError):
            PhaseKingConsensus(0, [1, 2, 3], 1)


class TestDolevApprox:
    def test_trim_requires_enough_values(self):
        with pytest.raises(ValueError):
            trim_f_and_midpoint([1.0, 2.0], 1)

    def test_trim_removes_exactly_f(self):
        assert trim_f_and_midpoint([-100, 1.0, 3.0, 5.0, 100], 1) == 3.0

    def test_convergence_matches_unknown_f_version(self):
        from repro.adversary import ValueInjectorStrategy

        inputs = [0.0, 8.0, 4.0, 2.0, 6.0, 1.0, 7.0]
        net, _ = build_network(
            9,
            2,
            lambda nid, members: DolevApproxAgreement(
                inputs[nid], f=2, iterations=6
            ),
            strategy_builder=lambda nid: ValueInjectorStrategy(
                low=-50, high=50
            ),
        )
        net.run(10)
        outputs = list(net.outputs().values())
        assert max(outputs) - min(outputs) <= 8 / 2**5
        assert all(0.0 <= o <= 8.0 for o in outputs)


class TestKnownFRotating:
    def test_selects_f_plus_one_coordinators(self):
        net, members = build_network(
            7,
            2,
            lambda nid, members: KnownFRotatingCoordinator(
                nid * 10, members, 2
            ),
        )
        net.run(10)
        protocol = net.protocols()[3]
        coordinators = [c for _r, c, _o in protocol.accepted_opinions]
        assert coordinators == members[:3]

    def test_terminates_in_f_plus_two_rounds(self):
        net, members = build_network(
            7, 2, lambda nid, members: KnownFRotatingCoordinator(0, members, 2)
        )
        assert net.run(10) == 4  # f + 2

    def test_message_complexity_is_minimal(self):
        net, members = build_network(
            7, 0, lambda nid, members: KnownFRotatingCoordinator(0, members, 0)
        )
        net.run(10)
        # only the single coordinator's opinion broadcast
        assert net.metrics.sends_total == 1
