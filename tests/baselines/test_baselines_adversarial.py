"""Adversarial depth for the known-n,f baselines.

The baselines are comparison instruments, but they still claim their
classical guarantees — which deserve the same adversarial scrutiny as
the id-only versions (and give the benchmarks a fair fight)."""

import pytest

from repro.adversary.base import ByzantineStrategy
from repro.baselines import PhaseKingConsensus, SrikanthTouegBroadcast
from repro.sim.network import SyncNetwork
from repro.sim.rng import consecutive_ids


class EquivocatingKing(ByzantineStrategy):
    """Plays phase king honestly except: when it is the king, it sends
    value 0 to half the nodes and 1 to the other half."""

    def __init__(self, members, f):
        self._protocol = PhaseKingConsensus(0, members, f)
        from repro.sim.message import Outbox

        self._outbox_cls = Outbox

    def on_round(self, view):
        from repro.sim.node import NodeApi

        outbox = self._outbox_cls()
        if not self._protocol.halted:
            api = NodeApi(
                node_id=view.node_id,
                round_no=view.round,
                known_contacts=frozenset(view.all_nodes),
                outbox=outbox,
            )
            self._protocol.on_round(api, view.inbox)
        sends = []
        ordered = sorted(view.all_nodes)
        half = len(ordered) // 2
        for send in outbox:
            if send.kind == "king":
                sends.extend(
                    self.to(d, "king", 0) for d in ordered[:half]
                )
                sends.extend(
                    self.to(d, "king", 1) for d in ordered[half:]
                )
            else:
                sends.append(send)
        return sends


def phase_king_network(n, f, strategy_builder, seed=0, inputs=None):
    ids = consecutive_ids(n)
    net = SyncNetwork(seed=seed, rushing=True)
    for node_id in ids[: n - f]:
        value = (inputs or {}).get(node_id, node_id % 2)
        net.add_correct(node_id, PhaseKingConsensus(value, ids, f))
    for node_id in ids[n - f:]:
        net.add_byzantine(node_id, strategy_builder(ids, f))
    return net


class TestPhaseKingAdversarial:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivocating_king_cannot_break_agreement(self, seed):
        # Byzantine nodes own the smallest ids here?  No: consecutive
        # ids place them at the top, so they king the *later* phases —
        # the correct kings of earlier phases already lock agreement.
        net = phase_king_network(10, 3, EquivocatingKing, seed=seed)
        net.run(60)
        assert len(set(net.outputs().values())) == 1

    def test_byzantine_first_kings(self):
        # Give the Byzantine nodes the smallest ids (they king phases
        # 1..f); the f+1-th phase's correct king must still settle it.
        ids = consecutive_ids(10)
        net = SyncNetwork(seed=1, rushing=True)
        for node_id in ids[3:]:
            net.add_correct(
                node_id, PhaseKingConsensus(node_id % 2, ids, 3)
            )
        for node_id in ids[:3]:
            net.add_byzantine(node_id, EquivocatingKing(ids, 3))
        net.run(60)
        assert len(set(net.outputs().values())) == 1


class HalfSender(ByzantineStrategy):
    """A Byzantine ST-broadcast sender revealing its message to half."""

    def on_round(self, view):
        if view.round != 1:
            return ()
        ordered = sorted(view.correct_nodes)
        half = len(ordered) // 2
        return [self.to(d, "msg", "w") for d in ordered[:half]]


class TestSrikanthTouegAdversarial:
    def test_byzantine_sender_all_or_nothing(self):
        ids = consecutive_ids(10)
        sender = ids[-1]  # a Byzantine node is the designated sender
        net = SyncNetwork(seed=2, rushing=True)
        for node_id in ids[:7]:
            net.add_correct(
                node_id, SrikanthTouegBroadcast(sender, 10, 3, None)
            )
        net.add_byzantine(sender, HalfSender())
        for node_id in ids[7:9]:
            net.add_byzantine(node_id, HalfSender())
        net.run(10, until_all_halted=False)
        acceptors = [
            nid
            for nid, p in net.protocols().items()
            if ("w", sender) in p.accepted
        ]
        assert acceptors == [] or len(acceptors) == 7
