"""Tests for repro.types."""

import pickle

from repro.types import BOTTOM, _Bottom, is_bottom


class TestBottom:
    def test_singleton(self):
        assert _Bottom() is BOTTOM

    def test_is_bottom_true(self):
        assert is_bottom(BOTTOM)

    def test_is_bottom_false_for_none(self):
        assert not is_bottom(None)

    def test_is_bottom_false_for_zero(self):
        assert not is_bottom(0)

    def test_is_bottom_false_for_empty_string(self):
        assert not is_bottom("")

    def test_repr(self):
        assert repr(BOTTOM) == "⊥"

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM

    def test_distinct_from_every_common_value(self):
        for value in (None, 0, 1, "", "⊥", False, (), frozenset()):
            assert BOTTOM != value or value is BOTTOM
            assert not is_bottom(value)
