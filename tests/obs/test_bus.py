"""EventBus semantics: routing, the zero-cost contract, versioning."""

from __future__ import annotations

import pytest

from repro.obs import EventBus, ProtocolEvent, RoundStarted


def ev(round_no=1):
    return RoundStarted(round_no)


class TestRouting:
    def test_topic_subscriber_sees_only_its_topic(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, "round-start")
        bus.publish(ev())
        bus.publish(ProtocolEvent(1, 7, "decide", {}))
        assert got == [RoundStarted(1)]

    def test_catch_all_sees_everything(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append)
        bus.publish(ev())
        bus.publish(ProtocolEvent(1, 7, "decide", {}))
        assert len(got) == 2

    def test_multi_topic_subscription(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, ["round-start", "protocol"])
        bus.publish(ev())
        bus.publish(ProtocolEvent(1, 7, "x", {}))
        assert len(got) == 2

    def test_dispatch_in_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("a"), "round-start")
        bus.subscribe(lambda e: order.append("b"), "round-start")
        bus.publish(ev())
        assert order == ["a", "b"]

    def test_subscriber_exception_propagates(self):
        # Monitors rely on this: a raise lands inside the offending
        # round, not in a post-mortem.
        bus = EventBus()

        def boom(event):
            raise RuntimeError("invariant broken")

        bus.subscribe(boom, "round-start")
        with pytest.raises(RuntimeError):
            bus.publish(ev())


class TestZeroCost:
    def test_sink_none_when_nobody_listens(self):
        bus = EventBus()
        assert bus.sink("round-start") is None
        assert not bus.wants("round-start")

    def test_sink_single_handler_is_the_handler(self):
        bus = EventBus()

        def handler(event):
            pass

        bus.subscribe(handler, "round-start")
        assert bus.sink("round-start") is handler

    def test_sink_fans_out(self):
        bus = EventBus()
        a, b = [], []
        bus.subscribe(a.append, "round-start")
        bus.subscribe(b.append)
        sink = bus.sink("round-start")
        sink(ev())
        assert a == b == [RoundStarted(1)]

    def test_unsubscribe_restores_none_sink(self):
        bus = EventBus()
        got = []
        bus.subscribe(got.append, "round-start")
        assert bus.unsubscribe(got.append)
        assert bus.sink("round-start") is None
        assert not bus.unsubscribe(got.append)

    def test_bound_methods_unsubscribe_by_equality(self):
        class Counter:
            def __init__(self):
                self.n = 0

            def on_event(self, event):
                self.n += 1

        bus = EventBus()
        counter = Counter()
        bus.subscribe(counter.on_event, "round-start")
        # a *fresh* bound-method object must still match
        assert bus.unsubscribe(counter.on_event)
        bus.publish(ev())
        assert counter.n == 0


class TestVersioning:
    def test_version_bumps_on_subscription_changes(self):
        bus = EventBus()
        v0 = bus.version
        handler = bus.subscribe(lambda e: None, "send")
        v1 = bus.version
        bus.unsubscribe(handler)
        v2 = bus.version
        assert v0 < v1 < v2

    def test_publish_does_not_bump_version(self):
        bus = EventBus()
        bus.subscribe(lambda e: None, "round-start")
        version = bus.version
        bus.publish(ev())
        assert bus.version == version
