"""JSONL sink: schema header, rendering, rehydration."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    SCHEMA_VERSION,
    EventBus,
    InboxDelivered,
    MessageSent,
    ProtocolEvent,
    RoundStarted,
    event_to_json,
    load_protocol_events,
    read_jsonl,
)
from repro.sim.message import Message


class TestJsonlSink:
    def test_schema_header_written_at_attach(self):
        bus = EventBus()
        buf = io.StringIO()
        sink = bus.to_jsonl(buf)
        sink.close()
        header = json.loads(buf.getvalue().splitlines()[0])
        assert header == {
            "topic": "schema",
            "v": SCHEMA_VERSION,
            "format": "repro.obs",
        }

    def test_streams_all_topics_and_counts(self):
        bus = EventBus()
        buf = io.StringIO()
        with bus.to_jsonl(buf) as sink:
            bus.publish(RoundStarted(1))
            bus.publish(ProtocolEvent(1, 42, "decide", {"value": 0}))
        assert sink.count == 2
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert [doc["topic"] for doc in lines] == [
            "schema", "round-start", "protocol",
        ]
        assert lines[2]["detail"] == {"value": 0}

    def test_close_detaches_from_bus(self):
        bus = EventBus()
        buf = io.StringIO()
        sink = bus.to_jsonl(buf)
        sink.close()
        bus.publish(RoundStarted(1))
        assert sink.count == 0
        assert bus.sink("round-start") is None

    def test_path_target_owns_file(self, tmp_path):
        bus = EventBus()
        path = tmp_path / "events.jsonl"
        sink = bus.to_jsonl(path)
        bus.publish(RoundStarted(3))
        sink.close()
        docs = [json.loads(line) for line in path.read_text().splitlines()]
        assert docs[1] == {"topic": "round-start", "round": 3}


class TestRendering:
    def test_non_json_payloads_degrade_to_repr(self):
        event = MessageSent(1, 5, "echo", payload=frozenset({1}))
        doc = event_to_json(event)
        assert doc["payload"] == repr(frozenset({1}))

    def test_deliver_renders_message_batch(self):
        message = Message(sender=9, kind="echo", payload=(1, 2))
        doc = event_to_json(InboxDelivered(4, 7, (message,)))
        assert doc["count"] == 1
        assert doc["messages"] == [
            {
                "from": 9,
                "kind": "echo",
                "payload": [1, 2],  # sequences recurse into JSON arrays
                "instance": None,
            }
        ]

    def test_broadcast_dest_omitted(self):
        doc = event_to_json(MessageSent(1, 5, "echo"))
        assert "dest" not in doc  # None = broadcast
        assert doc["payload"] is None  # payload always present


class TestReaders:
    def roundtrip(self, *events):
        bus = EventBus()
        buf = io.StringIO()
        with bus.to_jsonl(buf):
            for event in events:
                bus.publish(event)
        return buf.getvalue()

    def test_read_jsonl_yields_all_docs(self):
        text = self.roundtrip(RoundStarted(1), RoundStarted(2))
        docs = list(read_jsonl(text.splitlines()))
        assert len(docs) == 3  # header + 2

    def test_load_protocol_events_filters_and_rehydrates(self):
        text = self.roundtrip(
            RoundStarted(1),
            ProtocolEvent(1, 42, "accept", {"tag": "t"}),
        )
        events = load_protocol_events(text.splitlines())
        assert events == [ProtocolEvent(1, 42, "accept", {"tag": "t"})]

    def test_future_schema_version_rejected(self):
        line = json.dumps({"topic": "schema", "v": SCHEMA_VERSION + 1})
        with pytest.raises(ValueError):
            list(read_jsonl([line]))
