"""The runtimes publish onto the bus, and pay nothing when detached."""

from __future__ import annotations

from collections import Counter

from repro.asyncsim.engine import AsyncEngine, AsyncNode
from repro.asyncsim.schedulers import UniformScheduler
from repro.core.consensus import EarlyConsensus
from repro.obs import EventBus
from repro.sim.network import SyncNetwork

NODE_IDS = (11, 23, 37, 41)


def build_network(**kwargs):
    net = SyncNetwork(seed=1, **kwargs)
    for index, node_id in enumerate(NODE_IDS):
        net.add_correct(node_id, EarlyConsensus(index % 2))
    return net


class TestSimWiring:
    def test_event_counts_match_metrics(self):
        collected = Counter()
        batched_sends = []
        bus = EventBus()
        bus.subscribe(lambda e: collected.update([e.topic]))
        bus.subscribe(
            lambda e: batched_sends.append(len(e.payloads)), "send-batch"
        )
        net = build_network(bus=bus)
        net.run(40)
        metrics = net.metrics
        assert collected["run-start"] == 1
        assert collected["round-start"] == metrics.rounds
        assert collected["round-end"] == metrics.rounds
        # A batched fan-out is one "send-batch" event carrying k logical
        # sends; scalar sends still arrive one "send" event each.
        assert collected["send"] + sum(batched_sends) == metrics.sends_total
        assert collected["send-batch"] == len(batched_sends)
        assert collected["protocol"] == len(net.trace)
        # deliveries_total counts messages; "deliver" counts inboxes
        assert 0 < collected["deliver"] <= metrics.deliveries_total

    def test_shared_bus_feeds_default_subscribers_too(self):
        # metrics/trace attach to the *given* bus, not a private one
        bus = EventBus()
        net = build_network(bus=bus)
        assert net.bus is bus
        net.run(40)
        assert net.metrics.sends_total > 0
        assert len(net.trace) > 0

    def test_deliver_events_alias_shared_broadcast_tuple(self):
        batches = []
        bus = EventBus()
        bus.subscribe(lambda e: batches.append(e.messages), "deliver")
        net = build_network(bus=bus)
        net.run(40)
        # all-broadcast rounds: every recipient's event carries the
        # round's *same* tuple object (the zero-copy contract)
        identical = [
            batch
            for batch in batches
            if sum(1 for other in batches if other is batch) > 1
        ]
        assert identical, "expected shared per-round delivery tuples"

    def test_detached_bus_yields_none_sinks(self):
        net = build_network()
        net.metrics.detach(net.bus)
        net.trace.detach(net.bus)
        net.run(40)
        assert net._emit_send is None
        assert net._emit_deliver is None
        assert net._emit_round_start is None
        assert net._protocol_sink is None
        assert net.metrics.sends_total == 0
        assert len(net.trace) == 0

    def test_detached_run_behaves_identically(self):
        observed = build_network()
        observed.run(40)
        dark = build_network()
        dark.metrics.detach(dark.bus)
        dark.trace.detach(dark.bus)
        dark.run(40)
        assert dark.outputs() == observed.outputs()
        assert dark.round == observed.round

    def test_mid_run_subscription_takes_effect(self):
        # sinks are cached against bus.version; a later subscribe must
        # be picked up on the next round
        net = build_network()
        net.step()
        rounds = []
        net.bus.subscribe(lambda e: rounds.append(e.round), "round-start")
        net.step()
        net.step()
        assert rounds == [2, 3]


class Pinger(AsyncNode):
    def on_start(self, ctx):
        ctx.broadcast("ping", ctx.node_id)

    def on_message(self, ctx, message):
        if not self.decided:
            self.decide(ctx, message.payload)


class TestAsyncsimWiring:
    def run_engine(self, bus=None):
        engine = AsyncEngine(UniformScheduler(1.0), bus=bus)
        for node_id in (1, 2, 3):
            engine.add_node(node_id, Pinger())
        engine.run()
        return engine

    def test_send_deliver_decide_events(self):
        collected = Counter()
        times = []
        bus = EventBus()
        bus.subscribe(lambda e: collected.update([e.topic]))
        bus.subscribe(lambda e: times.append(e.time), "deliver")
        engine = self.run_engine(bus=bus)
        assert collected["run-start"] == 1
        assert collected["send"] == 9  # 3 nodes broadcast to 3
        assert collected["deliver"] == engine.delivered
        assert collected["protocol"] == 3  # one decide per node
        # round-less runtime: simulated time rides the events
        assert all(t is not None for t in times)

    def test_detached_engine_runs_clean(self):
        engine = self.run_engine()
        assert engine.delivered == 9
        assert len(engine.outputs()) == 3
