"""RunSpec: validation, freezing, and the JSON round-trip."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    ChurnSpec,
    PROTOCOLS,
    RunSpec,
    materialize,
    predict_population,
    resolve_inputs,
    run_spec,
)


class TestValidation:
    def test_resiliency_enforced(self):
        with pytest.raises(ConfigurationError, match="n > 3f"):
            RunSpec(protocol="consensus", n=9, f=3).validate()

    def test_force_overrides_resiliency(self):
        RunSpec(
            protocol="consensus", n=9, f=3, enforce_resiliency=False
        ).validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"n": 4, "f": -1},
            {"n": 4, "f": 4, "enforce_resiliency": False},
            {"n": 4, "max_rounds": 0},
            {"n": 4, "runtime": "teleport"},
        ],
    )
    def test_bad_arithmetic_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RunSpec(protocol="consensus", **kwargs).validate()

    def test_unknown_protocol_rejected_at_materialization(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            materialize(RunSpec(protocol="teleportation", n=4))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError, match="variant"):
            materialize(RunSpec(protocol="rotor", n=4, variant="sampled"))

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ConfigurationError, match="input assignment"):
            resolve_inputs("telepathy")

    def test_constant_inputs(self):
        fn = resolve_inputs("constant:7")
        assert fn(123, 0) == 7 and fn(456, 3) == 7


class TestFrozen:
    def test_spec_is_immutable(self):
        spec = RunSpec(protocol="consensus", n=4)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.max_rounds = 1

    def test_replace_builds_variants(self):
        base = RunSpec(protocol="consensus", n=7, f=2)
        sampled = dataclasses.replace(base, variant="sampled")
        assert base.variant == "full" and sampled.variant == "sampled"
        assert sampled.n == 7


class TestJsonRoundTrip:
    def spec(self):
        return RunSpec(
            protocol="total-order",
            n=9,
            f=2,
            protocol_params={"event_first": 2, "leavers": 1},
            churn=ChurnSpec("rate", {"join_rate": 0.1}),
            seed=42,
            rushing=True,
            max_rounds=60,
        )

    def test_dict_round_trip(self):
        spec = self.spec()
        assert RunSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = self.spec()
        path = spec.save(tmp_path / "spec.json")
        assert RunSpec.load(path) == spec

    def test_unknown_field_rejected(self):
        doc = self.spec().to_json_dict()
        doc["warp_factor"] = 9
        with pytest.raises(ConfigurationError, match="warp_factor"):
            RunSpec.from_json_dict(doc)

    def test_unknown_churn_field_rejected(self):
        doc = self.spec().to_json_dict()
        doc["churn"]["color"] = "red"
        with pytest.raises(ConfigurationError, match="color"):
            RunSpec.from_json_dict(doc)

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="'protocol' and 'n'"):
            RunSpec.from_json_dict({"n": 4})


class TestMaterialize:
    def test_population_prediction_matches_run(self):
        spec = RunSpec(protocol="consensus", n=7, f=2, seed=3)
        correct, byz = predict_population(spec)
        result = run_spec(spec)
        assert sorted(result.correct_ids) == sorted(correct)
        assert sorted(result.byzantine_ids) == sorted(byz)

    def test_every_protocol_materializes(self):
        for protocol in PROTOCOLS:
            spec = RunSpec(protocol=protocol, n=5, f=1, max_rounds=30)
            scenario = materialize(spec)
            assert scenario.correct == 4
            assert scenario.byzantine == 1

    def test_consensus_run_agrees(self):
        result = run_spec(
            RunSpec(protocol="consensus", n=7, f=2, adversary="splitter",
                    rushing=True, seed=1)
        )
        assert len(set(result.outputs.values())) == 1

    def test_label_mentions_the_essentials(self):
        label = self.sampled_label()
        assert "consensus" in label
        assert "(sampled)" in label
        assert "n=13 f=2" in label
        assert "seed=5" in label

    @staticmethod
    def sampled_label():
        return RunSpec(
            protocol="consensus", n=13, f=2, variant="sampled", seed=5
        ).label()
