"""Membership edge cases, end to end through the scenario layer.

Three corners the dynamic model has to survive (satellites of the
scenario-layer refactor):

* a node forcibly removed and later rejoining under the *same id*
  (crash-recover) — the engine must re-admit it as a fresh joiner;
* a join whose arrival would violate ``n > 3f`` — refused up front;
* a forced leave of a node that already departed — a no-op, mirroring
  an adversary wasting a removal.
"""

import pytest

from repro.analysis.checkers import check_chain_prefix
from repro.errors import ConfigurationError
from repro.scenario import (
    ChurnSpec,
    RunSpec,
    materialize,
    predict_population,
    run_spec,
)
from repro.sim.runner import run_scenario


def chains_of(result):
    return {
        nid: (list(p.output) if p.halted else p.chain)
        for nid, p in result.network.protocols().items()
    }


class TestLeaveThenRejoinSameId:
    def spec(self):
        return RunSpec(
            protocol="total-order",
            n=9,
            f=2,
            churn=ChurnSpec(
                "crash-recover", {"pairs": 1, "first": 16, "gap": 8}
            ),
            seed=3,
            max_rounds=80,
        )

    def test_rejoined_node_is_alive_with_a_consistent_chain(self):
        spec = self.spec()
        scenario = materialize(spec)
        victim = scenario.membership.leaves[0].node_id
        assert scenario.membership.joins[0].node_id == victim

        result = run_spec(spec)
        assert victim in result.network.alive_ids
        # The rejoined node is a *fresh* protocol instance: it came back
        # through the join handshake, not with its pre-crash state.
        rejoined = result.network.protocols()[victim]
        assert rejoined.joined
        report = check_chain_prefix(chains_of(result))
        assert report.ok, report.violations

    def test_rejoin_round_is_fresh_registration(self):
        # Materializing twice yields identical schedules — determinism
        # of the rejoin round matters for replay artifacts.
        first = materialize(self.spec()).membership
        second = materialize(self.spec()).membership
        assert [(j.round, j.node_id) for j in first.joins] == [
            (j.round, j.node_id) for j in second.joins
        ]


class TestJoinViolatingResiliency:
    def test_byzantine_join_breaking_n_gt_3f_is_refused(self):
        # Every schedule reaches the engine through the scenario
        # layer's validation: a join that makes a round start with
        # n <= 3f is refused before anything runs.
        spec = RunSpec(
            protocol="total-order", n=4, f=1, seed=2, max_rounds=40
        )
        correct, byz = predict_population(spec)
        assert len(correct) == 3 and len(byz) == 1
        # A second Byzantine joiner at round 10 makes n=5, f=2.
        from repro.scenario import validate_schedule
        from repro.sim.membership import MembershipSchedule

        schedule = MembershipSchedule()
        schedule.join(10, 999_983, lambda: None, byzantine=True)
        with pytest.raises(ConfigurationError, match="n > 3f"):
            validate_schedule(schedule, correct, byz)


class TestLeaveOfDepartedNode:
    def test_double_leave_is_a_noop(self):
        spec = RunSpec(
            protocol="total-order",
            n=9,
            f=2,
            protocol_params={"leavers": 1, "leave_base": 30},
            seed=5,
            max_rounds=70,
        )
        scenario = materialize(spec)
        correct, _ = predict_population(spec)
        # The registry's leave plan makes founder 0 depart voluntarily
        # at round 30; force-removing it again later must change nothing.
        from repro.sim.membership import MembershipSchedule

        schedule = MembershipSchedule()
        schedule.leave(45, correct[0])
        schedule.leave(50, 999_979)  # never a member at all
        scenario.membership = schedule
        result = run_scenario(scenario)
        assert correct[0] not in result.network.alive_ids
        report = check_chain_prefix(chains_of(result))
        assert report.ok, report.violations
