"""Churn generators: determinism, parameter validation, schedule shape."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    ChurnSpec,
    RunSpec,
    build_membership,
    get_protocol,
    predict_population,
    validate_schedule,
)
from repro.sim.membership import MembershipSchedule


def spec_with(churn: ChurnSpec, **overrides) -> RunSpec:
    kwargs = dict(
        protocol="total-order", n=9, f=2, seed=7, max_rounds=80,
        churn=churn,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


def schedule_for(spec: RunSpec) -> MembershipSchedule:
    correct, byz = predict_population(spec)
    return build_membership(spec, get_protocol(spec.protocol), correct, byz)


def shape(schedule: MembershipSchedule):
    """The comparable part of a schedule (factories are callables)."""
    return (
        [(j.round, j.node_id, j.byzantine) for j in schedule.joins],
        [(leave.round, leave.node_id) for leave in schedule.leaves],
    )


class TestDeterminism:
    @pytest.mark.parametrize(
        "churn",
        [
            ChurnSpec("rate", {"join_rate": 0.2, "leave_rate": 0.1}),
            ChurnSpec("crash-recover", {"pairs": 2}),
            ChurnSpec("bursts", {"count": 3, "joins": 2, "leaves": 1}),
        ],
    )
    def test_same_spec_same_schedule(self, churn):
        spec = spec_with(churn)
        assert shape(schedule_for(spec)) == shape(schedule_for(spec))

    def test_different_seed_different_schedule(self):
        churn = ChurnSpec("rate", {"join_rate": 0.3, "leave_rate": 0.15})
        first = schedule_for(spec_with(churn, seed=1))
        second = schedule_for(spec_with(churn, seed=2))
        assert shape(first) != shape(second)

    def test_churn_stream_independent_of_engine_randomness(self):
        # Same seed, different rushing flag: the schedule is a function
        # of the spec seed alone, not of anything the engine draws.
        churn = ChurnSpec("rate", {"join_rate": 0.3})
        base = spec_with(churn, seed=5)
        assert shape(schedule_for(base)) == shape(
            schedule_for(dataclasses.replace(base, rushing=True))
        )


class TestRate:
    def test_caps_respected(self):
        churn = ChurnSpec(
            "rate",
            {"join_rate": 1.0, "leave_rate": 1.0, "start": 10,
             "stop": 40, "max_joins": 3, "max_leaves": 2},
        )
        schedule = schedule_for(spec_with(churn))
        assert len(schedule.joins) == 3
        assert len(schedule.leaves) == 2

    def test_leaves_never_break_resiliency(self):
        churn = ChurnSpec(
            "rate", {"join_rate": 0.0, "leave_rate": 1.0, "start": 10,
                     "stop": 60},
        )
        spec = spec_with(churn)
        schedule = schedule_for(spec)
        # n=9 f=2: resiliency holds down to 7 alive, so at most two of
        # the seven correct founders may ever be removed.
        assert len(schedule.leaves) == 2

    def test_unknown_param_rejected(self):
        churn = ChurnSpec("rate", {"jion_rate": 0.5})
        with pytest.raises(ConfigurationError, match="jion_rate"):
            schedule_for(spec_with(churn))


class TestCrashRecover:
    def test_same_id_leaves_then_rejoins(self):
        spec = spec_with(
            ChurnSpec("crash-recover", {"pairs": 1, "first": 16, "gap": 8})
        )
        schedule = schedule_for(spec)
        joins, leaves = shape(schedule)
        assert len(joins) == len(leaves) == 1
        assert joins[0][1] == leaves[0][1]  # same node id
        assert joins[0][0] == leaves[0][0] + 8
        correct, _ = predict_population(spec)
        assert leaves[0][1] in correct

    def test_gap_below_two_rejected(self):
        churn = ChurnSpec("crash-recover", {"gap": 1})
        with pytest.raises(ConfigurationError, match="gap"):
            schedule_for(spec_with(churn))

    def test_more_pairs_than_founders_rejected(self):
        churn = ChurnSpec("crash-recover", {"pairs": 99})
        with pytest.raises(ConfigurationError, match="pairs"):
            schedule_for(spec_with(churn))


class TestBursts:
    def test_yank_lands_at_admission_round(self):
        spec = spec_with(
            ChurnSpec(
                "bursts",
                {"first": 14, "period": 7, "count": 2, "joins": 2,
                 "leaves": 1},
            )
        )
        joins, leaves = shape(schedule_for(spec))
        assert len(joins) == 4 and len(leaves) == 2
        for burst, round_no in enumerate((14, 21)):
            burst_joiners = [j[1] for j in joins if j[0] == round_no]
            yanked = [lv[1] for lv in leaves if lv[0] == round_no + 3]
            assert len(yanked) == 1
            assert yanked[0] in burst_joiners

    def test_cannot_yank_more_than_joined(self):
        churn = ChurnSpec("bursts", {"joins": 1, "leaves": 2})
        with pytest.raises(ConfigurationError, match="yank"):
            schedule_for(spec_with(churn))


class TestGuards:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown churn kind"):
            schedule_for(spec_with(ChurnSpec("meteor", {})))

    def test_protocol_without_joiner_rejected(self):
        spec = spec_with(
            ChurnSpec("rate", {"join_rate": 1.0}), protocol="consensus"
        )
        with pytest.raises(ConfigurationError, match="join handshake"):
            schedule_for(spec)


class TestValidateSchedule:
    def test_join_of_alive_id_rejected(self):
        schedule = MembershipSchedule()
        schedule.join(5, 1, lambda: None)
        with pytest.raises(ConfigurationError, match="still alive"):
            validate_schedule(schedule, [1, 2, 3, 4], [])

    def test_byzantine_join_breaking_resiliency_rejected(self):
        # 4 correct, 1 byz is fine (4+1 > 3); admitting a second
        # Byzantine node makes n=6, f=2 — a violating round start.
        schedule = MembershipSchedule()
        schedule.join(5, 99, lambda: None, byzantine=True)
        with pytest.raises(ConfigurationError, match="n > 3f"):
            validate_schedule(schedule, [1, 2, 3, 4], [50])

    def test_leave_of_departed_id_is_allowed_noop(self):
        schedule = MembershipSchedule()
        schedule.leave(5, 1)
        schedule.leave(9, 1)  # already gone — adversary wastes a removal
        schedule.leave(9, 424242)  # never existed
        validate_schedule(schedule, [1, 2, 3, 4, 5], [])

    def test_leaves_breaking_resiliency_rejected(self):
        schedule = MembershipSchedule()
        schedule.leave(5, 1)
        with pytest.raises(ConfigurationError, match="n > 3f"):
            validate_schedule(schedule, [1, 2, 3], [4])

    def test_enforcement_can_be_waived(self):
        schedule = MembershipSchedule()
        schedule.leave(5, 1)
        validate_schedule(
            schedule, [1, 2, 3], [4], enforce_resiliency=False
        )
