"""Committee-sampled consensus: implicit adoption, economy, gossip.

The sampled variants' contract: same decisions as the classical
protocols, a polylog committee doing the quorum work, everyone else
adopting on the implicit-agreement quorum — at a fraction of the
message cost.
"""

from repro.core.committee import sample_committee
from repro.core.consensus import EarlyConsensus
from repro.core.implicit_agreement import (
    CommitteeConsensus,
    CommitteeParallelConsensus,
)
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def build_sampled(
    n,
    seed=0,
    committee_size=None,
    inputs=lambda index: 0 if index % 8 else 1,
    **kwargs,
):
    rng = make_rng(seed)
    ids = sparse_ids(n, rng)
    net = SyncNetwork(seed=seed)
    for index, node_id in enumerate(ids):
        net.add_correct(
            node_id,
            CommitteeConsensus(
                inputs(index),
                sampling_seed=seed,
                committee_size=committee_size,
                **kwargs,
            ),
        )
    return net, ids


class TestCommitteeConsensus:
    def test_all_adopt_the_committee_decision(self):
        net, ids = build_sampled(40, seed=3, committee_size=13)
        net.run(60)
        outputs = net.outputs()
        assert len(outputs) == len(ids)
        assert set(outputs.values()) == {0}
        committee = sample_committee(ids, seed=3, size=13)
        # Non-members never ran a phase: implicit adoption events only.
        adopters = {e.node for e in net.trace.of("adopt-implicit")}
        assert set(ids) - committee <= adopters

    def test_non_members_send_only_hello(self):
        net, ids = build_sampled(40, seed=3, committee_size=13)
        net.run(60)
        committee = sample_committee(ids, seed=3, size=13)
        for node_id in set(ids) - committee:
            assert net.metrics.sends_by_node[node_id] == 1

    def test_matches_full_broadcast_outcome_and_costs_less(self):
        net, ids = build_sampled(40, seed=5, committee_size=13)
        net.run(60)
        full = SyncNetwork(seed=5)
        for index, node_id in enumerate(ids):
            full.add_correct(
                node_id, EarlyConsensus(0 if index % 8 else 1)
            )
        full.run(60)
        assert set(net.outputs().values()) == set(full.outputs().values())
        assert net.metrics.sends_total < full.metrics.sends_total / 2

    def test_decision_economy_metrics(self):
        net, ids = build_sampled(40, seed=1, committee_size=13)
        net.run(60)
        metrics = net.metrics
        assert metrics.decisions == len(ids)
        assert metrics.messages_per_decision > 0
        assert (
            metrics.messages_per_decision
            == metrics.sends_total / metrics.decisions
        )
        summary = metrics.summary()
        assert summary["decisions"] == len(ids)
        assert summary["messages_per_decision"] == round(
            metrics.messages_per_decision, 2
        )
        # The sampled path never materializes Message objects off the
        # columnar plane: non-members answer every query they make
        # through the shared index.
        assert summary["materialized_messages"] == 0
        assert summary["columnar_active"] is True

    def test_unanimous_inputs_decide_that_value(self):
        net, _ids = build_sampled(
            30, seed=2, committee_size=9, inputs=lambda index: 1
        )
        net.run(60)
        assert set(net.outputs().values()) == {1}

    def test_full_committee_degenerates_to_classical(self):
        # Tiny population: the committee is everyone, and the variant
        # must still terminate and agree (pure overhead of one hello
        # round plus the decision broadcasts).
        net, ids = build_sampled(10, seed=4)
        net.run(60)
        assert len(net.outputs()) == len(ids)
        assert len(set(net.outputs().values())) == 1


class TestJoinerGossip:
    def test_late_joiner_adopts_via_query(self):
        seed = 3
        rng = make_rng(seed)
        ids = sparse_ids(21, rng)
        joiner_id, resident_ids = ids[0], ids[1:]
        schedule = MembershipSchedule()
        joiner = CommitteeConsensus(
            0, sampling_seed=seed, committee_size=9
        )
        schedule.join(4, joiner_id, lambda: joiner)
        net = SyncNetwork(seed=seed, membership=schedule)
        for index, node_id in enumerate(resident_ids):
            net.add_correct(
                node_id,
                CommitteeConsensus(
                    0 if index % 8 else 1,
                    sampling_seed=seed,
                    committee_size=9,
                    linger=6,
                ),
            )
        net.run(80)
        outputs = net.outputs()
        assert outputs[joiner_id] == 0
        assert set(outputs.values()) == {0}
        assert net.trace.of("adopt-gossip", joiner_id)


class TestCommitteeParallelConsensus:
    def test_all_adopt_the_pair_set(self):
        seed = 7
        rng = make_rng(seed)
        ids = sparse_ids(30, rng)
        net = SyncNetwork(seed=seed)
        inputs = {"a": 1, "b": 2, "c": 3}
        for node_id in ids:
            net.add_correct(
                node_id,
                CommitteeParallelConsensus(
                    inputs, sampling_seed=seed, committee_size=9
                ),
            )
        net.run(80)
        outputs = net.outputs()
        assert len(outputs) == len(ids)
        expected = (("a", 1), ("b", 2), ("c", 3))
        assert set(outputs.values()) == {expected}
        committee = sample_committee(ids, seed=seed, size=9)
        for protocol in net.protocols().values():
            assert protocol.output_pairs() == expected
        for node_id in set(ids) - committee:
            assert net.metrics.sends_by_node[node_id] == 1
