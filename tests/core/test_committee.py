"""Units for the deterministic committee sampler (repro.core.committee)."""

from repro.core.committee import (
    MIN_COMMITTEE,
    ceil_log2,
    committee_size,
    rank_key,
    sample_committee,
)
from repro.sim.rng import make_rng, sparse_ids


def ids(count, seed=0):
    return sparse_ids(count, make_rng(seed))


class TestCommitteeSize:
    def test_polylog_values(self):
        # 2 * ceil(log2 n)^2, floored at 16, capped at n.
        assert committee_size(120) == 98
        assert committee_size(200) == 128
        assert committee_size(1000) == 200
        assert committee_size(5000) == 338
        assert committee_size(10000) == 392

    def test_small_views_degenerate_to_full(self):
        for n_v in (1, 2, 10, 16, 50):
            assert committee_size(n_v) == n_v

    def test_floor_and_empty(self):
        assert committee_size(0) == 0
        assert committee_size(-3) == 0
        assert committee_size(17, floor=MIN_COMMITTEE) >= MIN_COMMITTEE

    def test_sublinear_at_scale(self):
        # The whole point: c grows polylog while n grows linearly.
        assert committee_size(10000) < 10000 // 10

    def test_ceil_log2(self):
        assert ceil_log2(0) == 0
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(1000) == 10
        assert ceil_log2(1024) == 10
        assert ceil_log2(1025) == 11


class TestSampleCommittee:
    def test_deterministic_across_callers(self):
        view = ids(300)
        a = sample_committee(view, seed=7)
        b = sample_committee(list(reversed(view)), seed=7)
        c = sample_committee(set(view), seed=7)
        assert a == b == c
        assert len(a) == committee_size(300)
        assert a <= frozenset(view)

    def test_seed_changes_committee(self):
        view = ids(300)
        assert sample_committee(view, seed=1) != sample_committee(
            view, seed=2
        )
        assert rank_key(1) != rank_key(2)

    def test_size_override(self):
        view = ids(100)
        assert len(sample_committee(view, seed=0, size=10)) == 10
        # Oversized override degenerates to the full view.
        assert sample_committee(view, seed=0, size=500) == frozenset(view)

    def test_small_view_is_full_committee(self):
        view = ids(40)
        assert sample_committee(view, seed=3) == frozenset(view)

    def test_empty_view(self):
        assert sample_committee([], seed=0) == frozenset()

    def test_one_id_perturbation_changes_at_most_one_member(self):
        # Rank-based selection: adding one id displaces at most the
        # current highest-ranked member.
        view = ids(400)
        base = sample_committee(view[:-1], seed=5)
        grown = sample_committee(view, seed=5)
        assert len(base - grown) <= 1
        assert len(grown - base) <= 1

    def test_uniformity_smoke(self):
        # Across seeds, membership should not be positionally biased:
        # every id gets picked sometimes.
        view = ids(64)
        picked = set()
        for seed in range(40):
            picked |= sample_committee(view, seed=seed, size=16)
        assert picked == set(view)
