"""Parallel consensus (Algorithm 5): validity, agreement, joining, ⊥."""

import pytest

from repro.adversary import (
    QuorumSplitterStrategy,
    RandomNoiseStrategy,
    SilentStrategy,
)
from repro.adversary.base import ByzantineStrategy
from repro.core.consensus import EarlyConsensus
from repro.core.parallel_consensus import ParallelConsensus

from tests.conftest import run_quick


class TestValidity:
    def test_common_input_pairs_are_output(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=0,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"a": 10, "b": 20}
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed
        assert result.distinct_outputs == {(("a", 10), ("b", 20))}

    def test_many_instances_in_parallel(self):
        inputs = {f"id{k}": k for k in range(8)}
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: ParallelConsensus(inputs),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed
        (output,) = result.distinct_outputs
        assert dict(output) == inputs

    def test_parallel_instances_share_rounds(self):
        # 8 instances must not take 8x the rounds of one.
        single = run_quick(
            correct=7,
            protocol_factory=lambda nid, i: ParallelConsensus({"only": 1}),
        )
        many = run_quick(
            correct=7,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {f"id{k}": k for k in range(8)}
            ),
        )
        assert many.rounds <= single.rounds + 5


class TestPartialAwareness:
    @pytest.mark.parametrize("seed", range(5))
    def test_id_known_to_subset_still_agrees(self, seed):
        # Only 3 of 7 correct nodes input the pair; the others must join
        # and everyone must output the same set.
        def factory(nid, i):
            inputs = {"shared": 7} if i < 3 else {}
            return ParallelConsensus(inputs)

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed, result.outputs

    def test_conflicting_values_for_same_id_resolved(self):
        # Correct nodes disagree on the value for one id; agreement still
        # requires a single common output (which may be either value or
        # nothing).
        def factory(nid, i):
            return ParallelConsensus({"k": i % 2})

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            rushing=True,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: QuorumSplitterStrategy(
                EarlyConsensus(0)
            ),
        )
        assert result.agreed, result.outputs

    def test_single_node_input_converges(self):
        # A pair input at exactly one correct node: validity does not
        # force an output, but agreement must hold either way.
        def factory(nid, i):
            return ParallelConsensus({"solo": 5} if i == 0 else {})

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=4,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed, result.outputs


class TestByzantineInitiated:
    class GhostInitiator(ByzantineStrategy):
        """Initiates an instance no correct node has input."""

        def __init__(self, kind: str, round_no: int):
            self._kind = kind
            self._round = round_no
            self._announced = False

        def on_round(self, view):
            sends = []
            if not self._announced:
                self._announced = True
                sends.append(self.broadcast("init"))
            if view.round == self._round:
                targets = sorted(view.correct_nodes)[:2]
                sends.extend(
                    self.to(t, self._kind, 99, instance="ghost")
                    for t in targets
                )
            return sends

    @pytest.mark.parametrize(
        "kind,round_no",
        [("input", 3), ("prefer", 4), ("strongprefer", 5)],
        ids=["via-input", "via-prefer", "via-strongprefer"],
    )
    def test_ghost_instance_produces_no_output(self, kind, round_no):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=5,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"real": 1}, linger_rounds=15
            ),
            strategy_factory=lambda nid, i: self.GhostInitiator(
                kind, round_no
            ),
            max_rounds=300,
        )
        assert result.agreed, result.outputs
        (output,) = result.distinct_outputs
        assert dict(output) == {"real": 1}

    def test_ghost_heard_in_second_phase_is_discarded(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=6,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"real": 1}, linger_rounds=15
            ),
            strategy_factory=lambda nid, i: self.GhostInitiator(
                "input", 11
            ),
            max_rounds=300,
        )
        assert result.agreed
        (output,) = result.distinct_outputs
        assert dict(output) == {"real": 1}


class TestNoise:
    @pytest.mark.parametrize("seed", range(3))
    def test_agreement_under_noise(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"a": 1, "b": 2}
            ),
            strategy_factory=lambda nid, i: RandomNoiseStrategy(rate=4),
            max_rounds=400,
        )
        assert result.agreed, result.outputs


class TestMachineInternals:
    def test_results_track_bottom_outcomes(self):
        def factory(nid, i):
            return ParallelConsensus({"solo": 5} if i == 0 else {})

        result = run_quick(
            correct=7,
            byzantine=2,
            seed=7,
            protocol_factory=factory,
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        # Every node records a terminal result for 'solo', with or
        # without an output.
        for node in result.correct_ids:
            protocol = result.protocols[node]
            assert "solo" in protocol.results

    def test_output_pairs_sorted(self):
        result = run_quick(
            correct=4,
            protocol_factory=lambda nid, i: ParallelConsensus(
                {"z": 1, "a": 2, "m": 3}
            ),
        )
        (output,) = result.distinct_outputs
        ids = [pair[0] for pair in output]
        assert ids == sorted(ids, key=repr)
