"""Approximate agreement (Algorithm 4): containment and halving."""

import pytest

from repro.adversary import SilentStrategy, ValueInjectorStrategy
from repro.analysis.checkers import check_approx_agreement
from repro.core.approx_agreement import (
    ApproximateAgreement,
    IteratedApproximateAgreement,
    trim_and_midpoint,
)

from tests.conftest import run_quick


class TestTrimAndMidpoint:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            trim_and_midpoint([])

    def test_single_value(self):
        assert trim_and_midpoint([4.0]) == 4.0

    def test_no_trim_below_three(self):
        assert trim_and_midpoint([0.0, 10.0]) == 5.0

    def test_trims_one_per_side_at_three(self):
        assert trim_and_midpoint([0.0, 4.0, 100.0]) == 4.0

    def test_trim_count_is_floor_n_over_3(self):
        values = [0, 1, 2, 3, 4, 5, 6, 7, 8]  # n=9, trim 3 each side
        assert trim_and_midpoint(values) == (3 + 5) / 2

    def test_outliers_removed(self):
        values = [-1e9, 1.0, 2.0, 3.0, 1e9]  # n=5, trim 1 each side
        assert trim_and_midpoint(values) == 2.0

    def test_unsorted_input(self):
        assert trim_and_midpoint([5.0, 1.0, 3.0]) == 3.0


class TestSingleShot:
    def test_all_outputs_equal_without_byzantine(self):
        result = run_quick(
            correct=7,
            protocol_factory=lambda nid, i: ApproximateAgreement(float(i)),
            max_rounds=3,
        )
        outputs = list(result.outputs.values())
        assert max(outputs) - min(outputs) <= 3.0  # halved from range 6

    @pytest.mark.parametrize("seed", range(5))
    def test_containment_and_halving_under_injection(self, seed):
        inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: ApproximateAgreement(inputs[i]),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(
                low=-1e9, high=1e9
            ),
            max_rounds=3,
        )
        report = check_approx_agreement(result, inputs)
        assert report.ok, report.violations

    def test_decides_in_two_rounds(self):
        result = run_quick(
            correct=4,
            protocol_factory=lambda nid, i: ApproximateAgreement(1.0),
            max_rounds=3,
        )
        assert result.rounds == 2

    def test_garbage_payloads_ignored(self):
        from repro.adversary.base import ByzantineStrategy

        class GarbageInjector(ByzantineStrategy):
            def on_round(self, view):
                return [
                    self.broadcast("value", "not-a-number"),
                    self.broadcast("value", True),
                ]

        inputs = [1.0, 2.0, 3.0, 4.0]
        result = run_quick(
            correct=4,
            byzantine=1,
            seed=1,
            protocol_factory=lambda nid, i: ApproximateAgreement(inputs[i]),
            strategy_factory=lambda nid, i: GarbageInjector(),
            max_rounds=3,
        )
        report = check_approx_agreement(result, inputs)
        assert report.ok, report.violations


class TestIterated:
    def test_estimates_converge_geometrically(self):
        inputs = [0.0, 0.0, 0.0, 8.0, 8.0, 8.0, 4.0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=2,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                inputs[i], iterations=6
            ),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(
                low=-100.0, high=100.0
            ),
            max_rounds=10,
        )
        # per-iteration ranges must at least halve
        history = [
            result.protocols[n].estimates for n in result.correct_ids
        ]
        for step in range(1, 6):
            previous = [h[step - 1] for h in history]
            current = [h[step] for h in history]
            prev_range = max(previous) - min(previous)
            curr_range = max(current) - min(current)
            assert curr_range <= prev_range / 2 + 1e-9

    def test_final_outputs_within_inputs(self):
        inputs = [0.0, 1.0, 5.0, 9.0, 10.0, 2.0, 7.0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=3,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                inputs[i], iterations=8
            ),
            strategy_factory=lambda nid, i: SilentStrategy(),
            max_rounds=12,
        )
        for output in result.outputs.values():
            assert min(inputs) <= output <= max(inputs)

    def test_epsilon_agreement_reached(self):
        inputs = [0.0, 16.0, 8.0, 4.0, 12.0, 2.0, 14.0]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=4,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                inputs[i], iterations=12
            ),
            strategy_factory=lambda nid, i: ValueInjectorStrategy(),
            max_rounds=16,
        )
        outputs = list(result.outputs.values())
        assert max(outputs) - min(outputs) <= 16 / 2**11

    def test_iterations_validation(self):
        with pytest.raises(ValueError):
            IteratedApproximateAgreement(0.0, iterations=0)

    def test_all_decide_same_round(self):
        result = run_quick(
            correct=5,
            protocol_factory=lambda nid, i: IteratedApproximateAgreement(
                float(i), iterations=4
            ),
            max_rounds=8,
        )
        rounds = {
            result.protocols[n].decided_round for n in result.correct_ids
        }
        assert len(rounds) == 1
