"""The §12 remark: approximate agreement with only a subset of nodes.

"Consider a set of nodes that are in approximate agreement with each
other already and a new node joins.  Then, the new node can execute
[Algorithm 4] only with a subset of nodes to get closer to the value of
most of the nodes."  Because the algorithm is already parameter-free,
'with a subset' just means counting values from fewer peers — n_v is
whatever you heard, so nothing needs reconfiguration.
"""

from repro.core.approx_agreement import trim_and_midpoint


class TestSubsetConvergence:
    def test_newcomer_converges_using_any_subset(self):
        cluster_value = 10.0
        cluster = [cluster_value + d for d in (-0.1, 0.0, 0.1, -0.05, 0.05,
                                               0.02, -0.02)]
        newcomer = 500.0
        for subset_size in (3, 4, 5, 7):
            subset = cluster[:subset_size]
            # the newcomer computes Algorithm 4's round over just the
            # subset's values plus its own
            moved = trim_and_midpoint(subset + [newcomer])
            assert abs(moved - cluster_value) < abs(
                newcomer - cluster_value
            ) / 2, (subset_size, moved)

    def test_subset_with_a_byzantine_member_still_converges(self):
        cluster = [10.0, 10.1, 9.9, 10.05]
        byzantine_value = -1e9
        moved = trim_and_midpoint(cluster + [byzantine_value, 500.0])
        # floor(6/3) = 2 trimmed per side: both outliers gone
        assert 9.9 <= moved <= 10.1

    def test_iterating_on_subsets_reaches_the_cluster(self):
        cluster = [10.0] * 5
        estimate = 800.0
        for _ in range(12):
            estimate = trim_and_midpoint(cluster[:3] + [estimate])
        assert abs(estimate - 10.0) < 0.5
