"""Tests for the threshold arithmetic and echo voting."""

import pytest

from repro.core.quorum import (
    EchoVoting,
    ViewTracker,
    at_least_third,
    at_least_two_thirds,
    less_than_third,
)
from repro.sim.inbox import Inbox
from repro.sim.message import Message


class TestThresholds:
    def test_exact_third_counts(self):
        assert at_least_third(3, 9)
        assert not at_least_third(2, 9)

    def test_non_divisible_population(self):
        # n=10: n/3 = 3.33..., so 4 is needed... no: "at least 10/3"
        # means count >= 3.34 -> 4?  The paper's inequality is real-
        # valued: count >= n/3, so count=4 passes and count=3 fails.
        assert not at_least_third(3, 10)
        assert at_least_third(4, 10)

    def test_two_thirds(self):
        assert at_least_two_thirds(6, 9)
        assert not at_least_two_thirds(5, 9)
        assert at_least_two_thirds(7, 10)
        assert not at_least_two_thirds(6, 10)

    def test_zero_messages_never_satisfy(self):
        assert not at_least_third(0, 0)
        assert not at_least_two_thirds(0, 0)

    def test_less_than_third_is_negation_off_origin(self):
        # Everywhere with a real message or a non-empty view the two
        # predicates partition the plane ...
        for count in range(0, 12):
            for n in range(0, 12):
                if count == 0 and n == 0:
                    continue
                assert less_than_third(count, n) != at_least_third(count, n)

    def test_origin_satisfies_neither_predicate(self):
        # ... but at count = n_v = 0 the paper's inequality 0 < 0/3 is
        # false, so "less than a third" must NOT hold (and "at least a
        # third" already fails for lack of a real message).
        assert not at_least_third(0, 0)
        assert not less_than_third(0, 0)

    def test_integer_arithmetic_no_float_edge(self):
        # 2*(3k+1)/3 boundary: count = 2k+1 must fail, 2k+2 no...
        # exhaustive mini-check against exact rational comparison
        from fractions import Fraction

        for n in range(1, 40):
            for count in range(0, n + 1):
                expected = count > 0 and Fraction(count) >= Fraction(n, 3)
                assert at_least_third(count, n) == expected
                expected2 = count > 0 and Fraction(count) >= Fraction(
                    2 * n, 3
                )
                assert at_least_two_thirds(count, n) == expected2


class TestThresholdBoundaries:
    """The exact boundary cases the integer form must get right."""

    def test_n_v_not_divisible_by_three(self):
        # Real-valued inequality count >= n_v/3 at n_v = 3k+1 / 3k+2:
        # the first satisfying integer is ceil(n_v/3), with no float
        # rounding allowed to blur the crossover.
        assert not at_least_third(1, 4) and at_least_third(2, 4)
        assert not at_least_third(1, 5) and at_least_third(2, 5)
        assert not at_least_third(2, 7) and at_least_third(3, 7)
        assert not at_least_third(3, 10) and at_least_third(4, 10)
        # count >= 2 n_v / 3 likewise: first satisfying integer is
        # ceil(2 n_v / 3).
        assert not at_least_two_thirds(2, 4) and at_least_two_thirds(3, 4)
        assert not at_least_two_thirds(3, 5) and at_least_two_thirds(4, 5)
        assert not at_least_two_thirds(4, 7) and at_least_two_thirds(5, 7)

    def test_zero_view_with_positive_count(self):
        # n_v = 0 with count > 0: a message from a sender the tracker
        # has not yet observed.  The real inequalities count >= 0/3 and
        # count >= 0 hold trivially, and the count > 0 clause is already
        # satisfied, so both thresholds pass.
        assert at_least_third(1, 0)
        assert at_least_two_thirds(1, 0)
        assert not less_than_third(1, 0)

    @pytest.mark.parametrize("k", [1, 2, 3, 7, 100])
    def test_complementarity_at_exact_threshold(self, k):
        # At n_v = 3k the threshold is met by exactly k echoes; the
        # coordinator-switch predicate must flip at precisely that
        # count, with no value of (count, n_v) in both or neither set.
        n_v = 3 * k
        assert at_least_third(k, n_v)
        assert not less_than_third(k, n_v)
        assert less_than_third(k - 1, n_v)
        assert not at_least_third(k - 1, n_v)


class TestCoordinatorSwitchCallSites:
    """Audit of the coordinator-switch call sites for the (0, 0) fix.

    ``EarlyConsensus._resolve`` and the parallel-consensus phase-round-5
    branch are the only users of the switch condition (``core/rotor.py``
    never evaluates it — the rotor only selects, it has no switch).
    Both run against a frozen membership view that contains the node
    itself, so ``n_v >= 1`` always holds there, and on that domain the
    fixed strict predicate coincides with the old
    ``not at_least_third`` formulation — the fix cannot change any
    consensus schedule.
    """

    def test_predicates_coincide_on_the_reachable_domain(self):
        for n_v in range(1, 40):
            for count in range(0, n_v + 2):
                assert less_than_third(count, n_v) == (
                    not at_least_third(count, n_v)
                )

    def test_switch_boundary(self):
        # n_v = 9: two strongprefers switch to the coordinator's
        # opinion, three keep the own value.
        assert less_than_third(2, 9)
        assert not less_than_third(3, 9)
        # Zero strongprefers always switch (for any non-empty view).
        assert less_than_third(0, 1)
        assert less_than_third(0, 9)


class TestViewTracker:
    def test_observe_accumulates(self):
        tracker = ViewTracker()
        tracker.observe(Inbox([Message(1, "a"), Message(2, "b")]))
        tracker.observe(Inbox([Message(2, "c"), Message(3, "d")]))
        assert tracker.n_v == 3
        assert tracker.senders == {1, 2, 3}

    def test_knows(self):
        tracker = ViewTracker()
        tracker.observe_ids([5])
        assert tracker.knows(5)
        assert not tracker.knows(6)

    def test_freeze_snapshot_is_immutable_copy(self):
        tracker = ViewTracker()
        tracker.observe_ids([1, 2])
        snapshot = tracker.freeze()
        tracker.observe_ids([3])
        assert snapshot == frozenset({1, 2})
        assert tracker.n_v == 3


class TestEchoVoting:
    def test_accept_at_two_thirds(self):
        voting = EchoVoting()
        voting.absorb((s, "tag") for s in range(6))
        decision = voting.evaluate(n_v=9, round_no=3)
        assert decision.newly_accepted == ["tag"]
        assert voting.is_accepted("tag")

    def test_echo_at_third_without_accept(self):
        voting = EchoVoting()
        voting.absorb((s, "tag") for s in range(3))
        decision = voting.evaluate(n_v=9, round_no=3)
        assert decision.echo == ["tag"]
        assert decision.newly_accepted == []

    def test_accepting_tag_also_echoed(self):
        # Alg 1 line order: the echo condition is evaluated before the
        # accept in the same round, so an accepting node also re-echoes.
        voting = EchoVoting()
        voting.absorb((s, "tag") for s in range(9))
        decision = voting.evaluate(n_v=9, round_no=3)
        assert decision.echo == ["tag"]
        assert decision.newly_accepted == ["tag"]

    def test_accepted_tags_ignored_afterwards(self):
        voting = EchoVoting()
        voting.absorb((s, "tag") for s in range(9))
        voting.evaluate(9, 3)
        voting.absorb((s, "tag") for s in range(9))
        decision = voting.evaluate(9, 4)
        assert decision.echo == []
        assert decision.newly_accepted == []

    def test_pending_cleared_between_evaluations(self):
        voting = EchoVoting()
        voting.absorb([(1, "tag"), (2, "tag")])
        voting.evaluate(9, 3)  # 2 < 3: nothing
        voting.absorb([(3, "tag")])
        decision = voting.evaluate(9, 4)
        # counts did NOT accumulate: 1 < 3
        assert decision.echo == []

    def test_accumulation_within_one_evaluation_window(self):
        # The embedded rotor absorbs several rounds before one evaluate.
        voting = EchoVoting()
        voting.absorb([(1, "t"), (2, "t")])
        voting.absorb([(3, "t"), (1, "t")])  # sender 1 repeated: one vote
        decision = voting.evaluate(9, 5)
        assert decision.echo == ["t"]

    def test_absorb_inbox(self):
        voting = EchoVoting()
        inbox = Inbox(
            [Message(1, "echo", "p"), Message(2, "echo", "p"),
             Message(3, "other", "p")]
        )
        voting.absorb_inbox(inbox, "echo")
        decision = voting.evaluate(6, 3)
        assert decision.echo == ["p"]

    def test_acceptance_round_recorded(self):
        voting = EchoVoting()
        voting.absorb((s, "x") for s in range(9))
        voting.evaluate(9, 7)
        assert voting.accepted["x"] == 7
        assert voting.accepted_tags() == ["x"]

    def test_multiple_tags_independent(self):
        voting = EchoVoting()
        voting.absorb([(s, "a") for s in range(6)] + [(s, "b") for s in range(3)])
        decision = voting.evaluate(9, 3)
        assert set(decision.echo) == {"a", "b"}
        assert decision.newly_accepted == ["a"]
