"""Unit tests for total-order helpers and lifecycle flags."""

from repro.core.total_order import TotalOrderNode, events_from_dict
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


class TestEventsFromDict:
    def test_lookup(self):
        source = events_from_dict({3: "a", 7: "b"})
        assert source(3) == "a"
        assert source(7) == "b"
        assert source(4) is None

    def test_empty_plan(self):
        source = events_from_dict({})
        assert source(1) is None


class TestLifecycle:
    def build(self, count=5, seed=0):
        rng = make_rng(seed)
        ids = sparse_ids(count, rng)
        net = SyncNetwork(seed=seed)
        nodes = {}
        for node_id in ids:
            node = TotalOrderNode()
            nodes[node_id] = node
            net.add_correct(node_id, node)
        return net, nodes

    def test_request_leave_flag_triggers_departure(self):
        net, nodes = self.build()
        net.run(10, until_all_halted=False)
        leaver_id, leaver = next(iter(nodes.items()))
        leaver.request_leave()
        net.run(25, until_all_halted=False)
        assert leaver.halted
        survivors = [n for nid, n in nodes.items() if nid != leaver_id]
        assert all(leaver_id not in s.participants for s in survivors)

    def test_seed_bootstrap_counts_everyone(self):
        net, nodes = self.build(count=6)
        net.run(4, until_all_halted=False)
        for node in nodes.values():
            assert node.joined
            assert len(node.participants) == 6

    def test_local_rounds_aligned(self):
        net, nodes = self.build()
        net.run(12, until_all_halted=False)
        locals_ = {node.local_round for node in nodes.values()}
        assert len(locals_) == 1

    def test_default_event_source_is_silent(self):
        net, nodes = self.build()
        net.run(30, until_all_halted=False)
        for node in nodes.values():
            assert node.chain == []

    def test_events_stamped_with_local_round(self):
        rng = make_rng(3)
        ids = sparse_ids(4, rng)
        net = SyncNetwork(seed=3)
        nodes = {}
        for node_id in ids:
            node = TotalOrderNode(
                event_source=events_from_dict({4: "only-event"})
            )
            nodes[node_id] = node
            net.add_correct(node_id, node)
        net.run(45, until_all_halted=False)
        chain = next(iter(nodes.values())).chain
        # events witnessed at local round 4 are collected at round 5
        assert chain and all(entry[0] == 5 for entry in chain)
        assert len(chain) == 4
