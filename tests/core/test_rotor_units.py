"""Unit tests for the rotor's building blocks (CandidateSet/RotorCursor)."""

from repro.core.rotor import CandidateSet, RotorCore, RotorCursor
from repro.sim.inbox import Inbox
from repro.sim.message import Message, Outbox
from repro.sim.node import NodeApi


def api_for(node_id=1, round_no=3):
    return NodeApi(
        node_id=node_id,
        round_no=round_no,
        known_contacts=frozenset(range(100)),
        outbox=Outbox(),
    )


class TestCandidateSet:
    def test_announce_and_echo(self):
        candidates = CandidateSet()
        api = api_for()
        candidates.announce(api)
        sends = list(api._outbox)
        assert sends[0].kind == "init"

        api = api_for(round_no=2)
        inbox = Inbox([Message(5, "init"), Message(9, "init")])
        candidates.echo_inits(api, inbox)
        echoed = [s.payload for s in api._outbox]
        assert echoed == [5, 9]

    def test_acceptance_keeps_sorted_order(self):
        candidates = CandidateSet()
        api = api_for()
        candidates.absorb(
            Inbox(
                [Message(s, "echo", p) for p in (30, 10, 20) for s in range(6)]
            )
        )
        candidates.evaluate(api, n_v=6)
        assert candidates.candidates == [10, 20, 30]

    def test_contains_and_len(self):
        candidates = CandidateSet()
        api = api_for()
        candidates.absorb(
            Inbox([Message(s, "echo", 7) for s in range(6)])
        )
        candidates.evaluate(api, n_v=6)
        assert 7 in candidates
        assert len(candidates) == 1

    def test_instance_tagging(self):
        candidates = CandidateSet(instance=("to", 3))
        api = api_for()
        candidates.announce(api)
        assert list(api._outbox)[0].instance == ("to", 3)
        # foreign-instance echoes ignored
        candidates.absorb(
            Inbox([Message(s, "echo", 9, instance=None) for s in range(6)])
        )
        candidates.evaluate(api, n_v=6)
        assert candidates.candidates == []


class TestRotorCursor:
    def run_select(self, cursor, candidates, round_no=3, node_id=1,
                   allow_repeat=False):
        api = api_for(node_id=node_id, round_no=round_no)
        step = cursor.select(
            api, candidates, opinion="op", allow_repeat=allow_repeat
        )
        return step, api

    def test_cycles_in_id_order(self):
        cursor = RotorCursor()
        selections = [
            self.run_select(cursor, [10, 20, 30])[0].coordinator
            for _ in range(3)
        ]
        assert selections == [10, 20, 30]

    def test_repeat_detection(self):
        cursor = RotorCursor()
        for _ in range(3):
            self.run_select(cursor, [10, 20, 30])
        step, _api = self.run_select(cursor, [10, 20, 30])
        assert step.repeat and step.coordinator == 10

    def test_repeat_without_allow_suppresses_opinion(self):
        cursor = RotorCursor()
        self.run_select(cursor, [10], node_id=10)
        step, api = self.run_select(cursor, [10], node_id=10)
        assert step.repeat
        assert not list(api._outbox)  # no opinion re-broadcast

    def test_repeat_with_allow_rebroadcasts_opinion(self):
        cursor = RotorCursor()
        self.run_select(cursor, [10], node_id=10)
        step, api = self.run_select(
            cursor, [10], node_id=10, allow_repeat=True
        )
        assert step.repeat
        assert [s.kind for s in api._outbox] == ["opinion"]

    def test_growing_candidate_set_shifts_modulus(self):
        cursor = RotorCursor()
        first, _ = self.run_select(cursor, [10, 30])
        second, _ = self.run_select(cursor, [10, 20, 30])
        # r=1 over a 3-element set picks index 1
        assert (first.coordinator, second.coordinator) == (10, 20)

    def test_empty_candidates_guard(self):
        cursor = RotorCursor()
        step, _ = self.run_select(cursor, [])
        assert step.coordinator is None and not step.repeat
        assert cursor.rotor_round == 1  # the round counter still ticks

    def test_selection_order_excludes_repeats(self):
        cursor = RotorCursor()
        for _ in range(5):
            self.run_select(cursor, [10, 20], allow_repeat=True)
        assert cursor.selection_order == [10, 20]


class TestOpinionFrom:
    def test_reads_first_opinion_of_coordinator(self):
        inbox = Inbox(
            [
                Message(5, "opinion", "a"),
                Message(6, "opinion", "b"),
            ]
        )
        assert RotorCore.opinion_from(inbox, 5) == "a"
        assert RotorCore.opinion_from(inbox, 6) == "b"
        assert RotorCore.opinion_from(inbox, 7) is None
        assert RotorCore.opinion_from(inbox, None) is None

    def test_instance_scoped(self):
        inbox = Inbox([Message(5, "opinion", "a", instance="x")])
        assert RotorCore.opinion_from(inbox, 5, instance="x") == "a"
        assert RotorCore.opinion_from(inbox, 5, instance="y") is None
