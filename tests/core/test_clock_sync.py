"""Clock synchronization on approximate agreement."""

import pytest

from repro.adversary import ValueInjectorStrategy
from repro.core.clock_sync import ClockSyncNode, max_skew
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def build_cluster(
    drifts,
    byzantine=0,
    resync_every=5,
    seed=0,
    rushing=False,
    strategy=None,
):
    rng = make_rng(seed)
    ids = sparse_ids(len(drifts) + byzantine, rng)
    net = SyncNetwork(seed=seed, rushing=rushing)
    nodes = []
    for index, node_id in enumerate(ids[: len(drifts)]):
        node = ClockSyncNode(drift=drifts[index], resync_every=resync_every)
        nodes.append(node)
        net.add_correct(node_id, node)
    for node_id in ids[len(drifts):]:
        net.add_byzantine(
            node_id, strategy() if strategy else ValueInjectorStrategy(
                low=-1e6, high=1e6
            )
        )
    return net, nodes


DRIFTS = [0.02, -0.02, 0.01, -0.01, 0.015, -0.015, 0.0]


class TestWithoutSync:
    def test_unsynchronized_clocks_diverge_linearly(self):
        # resync far beyond the horizon = no syncs at all
        net, nodes = build_cluster(DRIFTS, resync_every=1000)
        net.run(50, until_all_halted=False)
        early = max_skew(nodes, 9)
        late = max_skew(nodes, 49)
        assert late > 4 * early  # linear growth


class TestWithSync:
    def test_skew_plateaus(self):
        net, nodes = build_cluster(DRIFTS, resync_every=5)
        net.run(60, until_all_halted=False)
        plateau = [max_skew(nodes, step) for step in range(20, 60)]
        unsync_equiv = max(abs(d) for d in DRIFTS) * 2 * 60
        assert max(plateau) < unsync_equiv / 4
        # bounded by drift * resync interval, with slack
        assert max(plateau) <= 0.04 * 5 * 3

    def test_byzantine_clocks_cannot_drag_the_cluster(self):
        net, nodes = build_cluster(
            DRIFTS, byzantine=2, resync_every=5, rushing=True
        )
        net.run(60, until_all_halted=False)
        # despite ±1e6 injected readings every round, the cluster's
        # clocks stay near true time (round count)
        finals = [node.clock for node in nodes]
        assert all(abs(clock - 60) < 5 for clock in finals)
        assert max(finals) - min(finals) < 1.0

    def test_adjustments_recorded(self):
        net, nodes = build_cluster(DRIFTS, resync_every=5)
        net.run(30, until_all_halted=False)
        assert all(node.adjustments for node in nodes)

    def test_tighter_resync_means_tighter_skew(self):
        net_loose, loose = build_cluster(DRIFTS, resync_every=15, seed=1)
        net_loose.run(60, until_all_halted=False)
        net_tight, tight = build_cluster(DRIFTS, resync_every=4, seed=1)
        net_tight.run(60, until_all_halted=False)
        loose_skew = max(max_skew(loose, s) for s in range(30, 60))
        tight_skew = max(max_skew(tight, s) for s in range(30, 60))
        assert tight_skew < loose_skew

    def test_resync_validation(self):
        with pytest.raises(ValueError):
            ClockSyncNode(resync_every=1)
