"""The everyone-to-everyone reliable broadcast channel."""

import pytest

from repro.adversary import EchoForgerStrategy, SilentStrategy
from repro.adversary.base import ByzantineStrategy
from repro.core.reliable_channel import ReliableChannel

from tests.conftest import predict_ids, run_quick


def channel_run(
    correct=7,
    byzantine=2,
    seed=0,
    messages_per_node=2,
    rounds=12,
    strategy_factory=None,
    rushing=False,
):
    def factory(nid, i):
        return ReliableChannel(
            [f"m{i}-{k}" for k in range(messages_per_node)]
        )

    return run_quick(
        correct=correct,
        byzantine=byzantine,
        seed=seed,
        rushing=rushing,
        protocol_factory=factory,
        strategy_factory=strategy_factory
        or (lambda nid, i: SilentStrategy()),
        max_rounds=rounds,
        until_all_halted=False,
    )


class TestDelivery:
    def test_every_slot_delivered_everywhere(self):
        result = channel_run()
        for node in result.correct_ids:
            channel = result.protocols[node]
            for index, origin in enumerate(result.correct_ids):
                assert channel.stream_from(origin) == [
                    f"m{index}-0",
                    f"m{index}-1",
                ]

    def test_streams_identical_across_nodes(self):
        result = channel_run(seed=1)
        reference = result.protocols[result.correct_ids[0]]
        for node in result.correct_ids[1:]:
            channel = result.protocols[node]
            for origin in result.correct_ids:
                assert channel.stream_from(origin) == (
                    reference.stream_from(origin)
                )

    def test_acceptance_latency_two_rounds(self):
        result = channel_run(seed=2, messages_per_node=1)
        for node in result.correct_ids:
            channel = result.protocols[node]
            for origin in result.correct_ids:
                _payload, accepted_at = channel.delivered[(origin, 0)]
                # slot broadcast in round 1 -> accepted in round 3
                assert accepted_at == 3

    def test_late_sends_also_delivered(self):
        result = channel_run(seed=3, messages_per_node=0, rounds=4)
        network = result.network
        sender = result.correct_ids[0]
        result.protocols[sender].send("late-news")
        network.run(6, until_all_halted=False)
        for node in result.correct_ids:
            assert result.protocols[node].stream_from(sender) == [
                "late-news"
            ]

    def test_stream_stops_at_gap(self):
        channel = ReliableChannel()
        channel.delivered[(9, 0)] = ("a", 3)
        channel.delivered[(9, 2)] = ("c", 5)  # seq 1 missing
        assert channel.stream_from(9) == ["a"]


class TestByzantineSenders:
    class SplitSlotSender(ByzantineStrategy):
        """Sends slot 0 with payload 'L' to half, 'R' to the rest."""

        def __init__(self):
            self._done = False

        def on_round(self, view):
            sends = []
            if view.round == 1:
                sends.append(self.broadcast("present"))
            if view.round == 2 and not self._done:
                self._done = True
                ordered = sorted(view.correct_nodes)
                half = len(ordered) // 2
                sends.extend(
                    self.to(d, "slot", (0, "L")) for d in ordered[:half]
                )
                sends.extend(
                    self.to(d, "slot", (0, "R")) for d in ordered[half:]
                )
            return sends

    @pytest.mark.parametrize("seed", range(4))
    def test_equivocated_slot_all_or_nothing(self, seed):
        result = channel_run(
            seed=seed,
            strategy_factory=lambda nid, i: self.SplitSlotSender(),
            rushing=True,
        )
        byz = result.byzantine_ids[0]
        for payload in ("L", "R"):
            acceptors = [
                n
                for n in result.correct_ids
                if any(
                    key[0] == byz and value[0] == payload
                    for key, value in result.protocols[n].delivered.items()
                )
            ]
            assert acceptors == [] or len(acceptors) == len(
                result.correct_ids
            ), (payload, acceptors)

    @pytest.mark.parametrize("seed", range(3))
    def test_forged_echoes_ineffective(self, seed):
        correct_ids, _ = predict_ids(seed, 7, 2)
        victim = correct_ids[0]
        result = channel_run(
            seed=seed,
            strategy_factory=lambda nid, i: EchoForgerStrategy(
                forged_payload=(victim, 99, "forged")
            ),
            rushing=True,
        )
        for node in result.correct_ids:
            assert (victim, 99) not in result.protocols[node].delivered
