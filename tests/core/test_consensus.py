"""Early-terminating consensus (Algorithm 3): agreement, validity, O(f)."""

import pytest

from repro.adversary import (
    CrashStrategy,
    EquivocatorStrategy,
    QuorumSplitterStrategy,
    RandomNoiseStrategy,
    SilentStrategy,
)
from repro.analysis.checkers import check_agreement, check_validity
from repro.core.consensus import EarlyConsensus

from tests.conftest import run_quick


def splitter_factory(nid, i):
    return QuorumSplitterStrategy(EarlyConsensus(0))


class TestValidity:
    @pytest.mark.parametrize("value", [0, 1, 3.5, "label"])
    def test_unanimous_input_is_decided(self, value):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=1,
            protocol_factory=lambda nid, i: EarlyConsensus(value),
            strategy_factory=splitter_factory,
            rushing=True,
        )
        assert result.agreed
        assert result.distinct_outputs == {value}

    def test_unanimous_decides_in_first_phase(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=0,
            protocol_factory=lambda nid, i: EarlyConsensus(1),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        # 2 init rounds + one 5-round phase
        assert result.rounds == 7

    @pytest.mark.parametrize("seed", range(5))
    def test_output_is_some_correct_input(self, seed):
        inputs = {}

        def factory(nid, i):
            inputs[nid] = i % 3
            return EarlyConsensus(i % 3)

        result = run_quick(
            correct=10,
            byzantine=3,
            seed=seed,
            rushing=True,
            protocol_factory=factory,
            strategy_factory=splitter_factory,
        )
        check_agreement(result).raise_if_failed()
        check_validity(result, inputs.values()).raise_if_failed()


class TestAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_inputs_silent_adversary(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed, result.outputs

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_inputs_quorum_splitter_rushing(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=splitter_factory,
        )
        assert result.agreed, result.outputs

    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_inputs_equivocator(self, seed):
        result = run_quick(
            correct=10,
            byzantine=3,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: EquivocatorStrategy(
                EarlyConsensus(i % 2)
            ),
        )
        assert result.agreed, result.outputs

    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_inputs_noise(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: RandomNoiseStrategy(rate=5),
        )
        assert result.agreed, result.outputs

    @pytest.mark.parametrize("seed", range(5))
    def test_crash_mid_protocol(self, seed):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=seed,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=lambda nid, i: CrashStrategy(
                EarlyConsensus(i % 2), crash_round=5 + i
            ),
        )
        assert result.agreed, result.outputs

    def test_exact_resiliency_bound(self):
        # n = 13, f = 4: n > 3f tight.
        result = run_quick(
            correct=9,
            byzantine=4,
            seed=3,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=splitter_factory,
        )
        assert result.agreed, result.outputs

    def test_real_valued_inputs(self):
        values = [1.25, 2.5, 2.5, 2.5, -7.0, 1.25, 2.5]
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=6,
            protocol_factory=lambda nid, i: EarlyConsensus(values[i]),
            strategy_factory=lambda nid, i: SilentStrategy(),
        )
        assert result.agreed
        assert result.distinct_outputs <= set(values)


class TestRoundComplexity:
    def test_rounds_grow_with_f_not_n(self):
        # For fixed small f, rounds stay flat as n grows (O(f) claim).
        rounds_by_n = {}
        for correct in (6, 12, 24):
            result = run_quick(
                correct=correct,
                byzantine=1,
                seed=2,
                protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
                strategy_factory=lambda nid, i: SilentStrategy(),
            )
            rounds_by_n[correct] = result.rounds
        spread = max(rounds_by_n.values()) - min(rounds_by_n.values())
        assert spread <= 10, rounds_by_n

    def test_terminates_within_linear_phase_budget(self):
        for f in (1, 2, 3, 4):
            result = run_quick(
                correct=3 * f + 1,
                byzantine=f,
                seed=0,
                rushing=True,
                protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
                strategy_factory=splitter_factory,
                max_rounds=2 + 5 * (2 * f + 4),
            )
            assert result.agreed


class TestEarlyTermination:
    def test_stragglers_decide_at_most_one_phase_later(self):
        result = run_quick(
            correct=7,
            byzantine=2,
            seed=9,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(i % 2),
            strategy_factory=splitter_factory,
        )
        rounds = [
            result.protocols[n].decided_round for n in result.correct_ids
        ]
        assert max(rounds) - min(rounds) <= 5

    def test_internal_state_exposed(self):
        result = run_quick(
            correct=4,
            protocol_factory=lambda nid, i: EarlyConsensus(1),
        )
        protocol = result.protocols[result.correct_ids[0]]
        assert protocol.n_v == 4
        assert protocol.membership == frozenset(result.correct_ids)
        assert protocol.phase >= 1


class TippingStrategy:
    """Pushes exactly one correct node into early termination, then goes
    silent — the precise scenario the substitution rule exists for.

    Requires rushing mode (it reads the current round's correct traffic
    to learn who holds the majority input) and the 3-vs-2 input split the
    tests below set up: it completes the input and prefer quorums for the
    majority holders only, then completes the strongprefer quorum for a
    single target.
    """

    def __init__(self):
        self._value = None
        self._holders = ()

    def on_round(self, view):
        from repro.sim.message import BROADCAST, Send

        if view.round == 1:
            return [Send(BROADCAST, "init")]
        if view.round == 3:
            by_value = {}
            for sender, send in view.correct_traffic:
                if send.kind == "input":
                    by_value.setdefault(send.payload, set()).add(sender)
            if not by_value:
                return ()
            self._value, holders = max(
                by_value.items(), key=lambda kv: len(kv[1])
            )
            self._holders = sorted(holders)
            return [Send(h, "input", self._value) for h in self._holders]
        if view.round == 4 and self._holders:
            return [Send(h, "prefer", self._value) for h in self._holders]
        if view.round == 5 and self._holders:
            return [Send(self._holders[0], "strongprefer", self._value)]
        return ()


class TestSubstitutionRule:
    """The Algorithm-3 caption rule, exercised both ways."""

    def _run(self, substitution: bool, max_rounds: int = 60):
        # 3 correct hold 1, 2 correct hold 0; 2 Byzantine tip the scales.
        inputs = [1, 1, 1, 0, 0]
        return run_quick(
            correct=5,
            byzantine=2,
            seed=4,
            rushing=True,
            protocol_factory=lambda nid, i: EarlyConsensus(
                inputs[i], substitution=substitution
            ),
            strategy_factory=lambda nid, i: TippingStrategy(),
            max_rounds=max_rounds,
        )

    def test_tipping_creates_early_terminator(self):
        result = self._run(substitution=True)
        rounds = sorted(
            result.protocols[n].decided_round for n in result.correct_ids
        )
        assert rounds[0] == 7  # one node decided at the end of phase 1
        assert rounds[-1] > rounds[0]  # the rest genuinely lagged

    def test_with_substitution_everyone_decides_and_agrees(self):
        result = self._run(substitution=True)
        assert result.agreed
        assert result.distinct_outputs == {1}

    def test_without_substitution_stragglers_starve(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            self._run(substitution=False, max_rounds=80)
