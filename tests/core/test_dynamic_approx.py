"""Continuous approximate agreement under churn (§11 first part)."""

from repro.adversary import ValueInjectorStrategy
from repro.core.approx_agreement import ContinuousApproximateAgreement
from repro.sim.membership import MembershipSchedule
from repro.sim.network import SyncNetwork
from repro.sim.rng import make_rng, sparse_ids


def estimates_at(network, node_ids, step):
    return [
        network.protocols()[n].history[step]
        for n in node_ids
        if len(network.protocols()[n].history) > step
    ]


class TestStaticBehaviour:
    def test_halves_per_round(self):
        net = SyncNetwork(seed=0)
        rng = make_rng(0)
        ids = sparse_ids(7, rng)
        for index, node_id in enumerate(ids):
            net.add_correct(
                node_id, ContinuousApproximateAgreement(float(index))
            )
        net.run(10, until_all_halted=False)
        for step in range(1, 9):
            prev = estimates_at(net, ids, step - 1)
            curr = estimates_at(net, ids, step)
            prev_range = max(prev) - min(prev)
            curr_range = max(curr) - min(curr)
            assert curr_range <= prev_range / 2 + 1e-12

    def test_never_halts(self):
        net = SyncNetwork(seed=1)
        net.add_correct(1, ContinuousApproximateAgreement(0.0))
        net.add_correct(2, ContinuousApproximateAgreement(1.0))
        net.add_correct(3, ContinuousApproximateAgreement(2.0))
        net.run(6, until_all_halted=False)
        assert all(not p.halted for p in net.protocols().values())

    def test_byzantine_injection_contained(self):
        net = SyncNetwork(seed=2, rushing=True)
        rng = make_rng(2)
        ids = sparse_ids(9, rng)
        inputs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
        for index, node_id in enumerate(ids[:7]):
            net.add_correct(
                node_id, ContinuousApproximateAgreement(inputs[index])
            )
        for node_id in ids[7:]:
            net.add_byzantine(node_id, ValueInjectorStrategy(-1e9, 1e9))
        net.run(8, until_all_halted=False)
        finals = [p.estimate for p in net.protocols().values()]
        assert all(1.0 <= v <= 7.0 for v in finals)


class TestChurn:
    def build(self, joiner_value, join_round, seed=3):
        rng = make_rng(seed)
        ids = sparse_ids(8, rng)
        veterans, joiner = ids[:7], ids[7]
        schedule = MembershipSchedule()
        schedule.join(
            join_round,
            joiner,
            lambda: ContinuousApproximateAgreement(joiner_value),
        )
        net = SyncNetwork(seed=seed, membership=schedule)
        for index, node_id in enumerate(veterans):
            net.add_correct(
                node_id, ContinuousApproximateAgreement(float(index))
            )
        return net, veterans, joiner

    def test_joiner_converges_to_the_group(self):
        net, veterans, joiner = self.build(
            joiner_value=3.0, join_round=6
        )
        net.run(16, until_all_halted=False)
        group = [net.protocols()[n].estimate for n in veterans]
        joined = net.protocols()[joiner].estimate
        assert abs(joined - group[0]) < 0.05
        assert max(group) - min(group) < 0.01

    def test_outlier_joiner_widens_then_is_absorbed(self):
        """The paper's caveat: a new input may increase the range — but
        only until the next trimming round, because ``⌊n_v/3⌋`` per-side
        trimming eats a lone outlier in one step."""
        net, veterans, joiner = self.build(
            joiner_value=1000.0, join_round=8
        )
        net.run(8, until_all_halted=False)
        # at the join round the population's estimate range includes the
        # newcomer's outlier:
        group = [net.protocols()[n].estimate for n in veterans]
        outlier = net.protocols()[joiner].estimate
        assert outlier == 1000.0
        assert abs(outlier - group[0]) > 900
        # one mixing round later the outlier was trimmed on both sides:
        net.run(2, until_all_halted=False)
        finals = [
            net.protocols()[n].estimate for n in [*veterans, joiner]
        ]
        assert max(finals) - min(finals) < 0.01

    def test_enough_simultaneous_outliers_do_widen_veteran_estimates(self):
        """With more simultaneous outlier joiners than the trim can
        absorb, the veterans' own estimates move — the 'range may
        increase' direction of the paper's remark."""
        rng = make_rng(9)
        ids = sparse_ids(11, rng)
        veterans, joiners = ids[:7], ids[7:]
        schedule = MembershipSchedule()
        for joiner in joiners:
            schedule.join(
                6,
                joiner,
                lambda: ContinuousApproximateAgreement(1000.0),
            )
        net = SyncNetwork(seed=9, membership=schedule)
        for index, node_id in enumerate(veterans):
            net.add_correct(
                node_id, ContinuousApproximateAgreement(float(index))
            )
        net.run(8, until_all_halted=False)
        # n_v = 11, trim ⌊11/3⌋ = 3 per side < 4 joiners: one outlier
        # survives trimming and drags the midpoint up.
        moved = [net.protocols()[n].estimate for n in veterans]
        assert max(moved) > 100.0

    def test_leaver_does_not_disrupt(self):
        rng = make_rng(4)
        ids = sparse_ids(7, rng)
        schedule = MembershipSchedule()
        schedule.leave(5, ids[0])
        net = SyncNetwork(seed=4, membership=schedule)
        for index, node_id in enumerate(ids):
            net.add_correct(
                node_id, ContinuousApproximateAgreement(float(index))
            )
        net.run(14, until_all_halted=False)
        survivors = [net.protocols()[n].estimate for n in ids[1:]]
        assert max(survivors) - min(survivors) < 0.01
        assert 0.0 <= min(survivors) <= max(survivors) <= 6.0
